//! Terminal plots of figure tables.
//!
//! The paper presents its evaluation as log-log line charts; this module
//! renders a [`Table`] the same way, as ASCII art — `figures --plot`
//! shows each figure in the shape readers of the paper will recognize
//! (straight, parallel lines for the content-match figures; converging
//! fans for the dirty-fraction ones).

use crate::scenarios::Table;
use std::fmt::Write as _;

/// Plot glyphs, one per series.
const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&'];

/// Render `table` as a log-log ASCII chart of `width`×`height` cells.
///
/// Each data point lands on one cell; when several series collide on a
/// cell the earliest series' glyph wins (mirroring overlapping lines in
/// the paper's plots). Rows and sizes with non-positive values are
/// skipped (log scale).
pub fn render_loglog(table: &Table, width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(8);

    // Collect positive (x, y) points per series.
    let mut xs: Vec<f64> = Vec::new();
    let mut pts: Vec<Vec<(f64, f64)>> = vec![Vec::new(); table.series.len()];
    for (n, cells) in &table.rows {
        if *n == 0 {
            continue;
        }
        let x = *n as f64;
        xs.push(x);
        for (s, &ms) in cells.iter().enumerate() {
            if ms > 0.0 {
                pts[s].push((x, ms));
            }
        }
    }
    let all_y: Vec<f64> = pts.iter().flatten().map(|&(_, y)| y).collect();
    if xs.is_empty() || all_y.is_empty() {
        return format!("{} — {} (no plottable points)\n", table.id, table.title);
    }
    let (x_min, x_max) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(0.0f64, f64::max),
    );
    let (y_min, y_max) = (
        all_y.iter().cloned().fold(f64::INFINITY, f64::min),
        all_y.iter().cloned().fold(0.0f64, f64::max),
    );
    let lx = |x: f64| x.log10();
    let span = |lo: f64, hi: f64| if hi > lo { hi - lo } else { 1.0 };
    let x_span = span(lx(x_min), lx(x_max));
    let y_span = span(lx(y_min), lx(y_max));

    let mut grid = vec![vec![' '; width]; height];
    for (s, series_pts) in pts.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for &(x, y) in series_pts {
            let cx = ((lx(x) - lx(x_min)) / x_span * (width - 1) as f64).round() as usize;
            let cy = ((lx(y) - lx(y_min)) / y_span * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            if grid[row][col] == ' ' {
                grid[row][col] = glyph;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{} — {}  [log-log]", table.id, table.title);
    let y_label_top = format!("{y_max:>9.3}");
    let y_label_bot = format!("{y_min:>9.3}");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            &y_label_top
        } else if i == height - 1 {
            &y_label_bot
        } else {
            ""
        };
        let _ = writeln!(out, "{label:>9} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>9} +{}", "ms", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}{:<w$}{:>8}  (n, log scale)",
        "",
        format!("{x_min}"),
        format!("{x_max}"),
        w = width - 7
    );
    for (s, name) in table.series.iter().enumerate() {
        let _ = writeln!(out, "{:>11} {}", GLYPHS[s % GLYPHS.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table {
            id: "Figure T".into(),
            title: "test".into(),
            series: vec!["a".into(), "b".into()],
            rows: vec![
                (1, vec![0.001, 0.002]),
                (100, vec![0.1, 0.25]),
                (10_000, vec![10.0, 30.0]),
            ],
        }
    }

    #[test]
    fn renders_all_series_glyphs() {
        let plot = render_loglog(&sample_table(), 60, 16);
        assert!(plot.contains('o'), "{plot}");
        assert!(plot.contains('+'), "{plot}");
        assert!(plot.contains("Figure T"));
        assert!(plot.contains("[log-log]"));
    }

    #[test]
    fn monotone_series_descends_down_the_grid() {
        // Larger n → larger ms → higher on the chart; the glyph column for
        // n=1 must sit below the one for n=10000.
        let plot = render_loglog(&sample_table(), 60, 16);
        let lines: Vec<&str> = plot.lines().collect();
        let first_o = lines.iter().position(|l| l.contains('o')).unwrap();
        let last_o = lines.iter().rposition(|l| l.contains('o')).unwrap();
        assert!(last_o > first_o, "points should span rows\n{plot}");
    }

    #[test]
    fn empty_table_degrades_gracefully() {
        let t = Table {
            id: "X".into(),
            title: "t".into(),
            series: vec!["a".into()],
            rows: vec![],
        };
        let plot = render_loglog(&t, 40, 10);
        assert!(plot.contains("no plottable points"));
    }

    #[test]
    fn zero_and_negative_cells_skipped() {
        let t = Table {
            id: "X".into(),
            title: "t".into(),
            series: vec!["a".into()],
            rows: vec![(0, vec![1.0]), (10, vec![0.0]), (100, vec![5.0])],
        };
        let plot = render_loglog(&t, 40, 10);
        assert!(plot.matches('o').count() >= 1);
    }

    #[test]
    fn tiny_dimensions_clamped() {
        let plot = render_loglog(&sample_table(), 1, 1);
        assert!(plot.lines().count() >= 8);
    }
}
