//! Minimal measurement harness for the `figures` binary.
//!
//! The paper reports "the average of 100 measurements for each reported
//! data point" of Send Time. [`measure`] reproduces that protocol:
//! warm-up iterations, then `reps` timed iterations, reporting mean and
//! min. (The Criterion benches in `benches/` provide the statistically
//! rigorous variant; this harness exists so one binary can print every
//! figure in seconds.)

use std::time::{Duration, Instant};

/// Aggregate of repeated timings.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Fastest observation.
    pub min: Duration,
    /// Slowest observation.
    pub max: Duration,
    /// Number of timed repetitions.
    pub reps: usize,
}

impl Timing {
    /// Mean in milliseconds (the paper's unit).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

/// Time `reps` runs of `timed`, preceded by `warmup` untimed runs.
pub fn measure(warmup: usize, reps: usize, mut timed: impl FnMut()) -> Timing {
    for _ in 0..warmup {
        timed();
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..reps {
        let t = Instant::now();
        timed();
        let d = t.elapsed();
        total += d;
        min = min.min(d);
        max = max.max(d);
    }
    Timing {
        mean: total / reps as u32,
        min,
        max,
        reps,
    }
}

/// Time `reps` runs of `timed`, with an untimed `setup` before every run
/// (for scenarios that consume fresh state, e.g. worst-case shifting,
/// which needs a pristine minimum-width template per iteration).
pub fn measure_batched<S>(
    warmup: usize,
    reps: usize,
    mut setup: impl FnMut() -> S,
    mut timed: impl FnMut(S),
) -> Timing {
    for _ in 0..warmup {
        let s = setup();
        timed(s);
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..reps {
        let s = setup();
        let t = Instant::now();
        timed(s);
        let d = t.elapsed();
        total += d;
        min = min.min(d);
        max = max.max(d);
    }
    Timing {
        mean: total / reps as u32,
        min,
        max,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_reps() {
        let mut calls = 0usize;
        let t = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(t.reps, 5);
        assert!(t.min <= t.mean && t.mean <= t.max);
    }

    #[test]
    fn measure_batched_runs_setup_per_rep() {
        let mut setups = 0usize;
        let mut timed_calls = 0usize;
        measure_batched(1, 4, || setups += 1, |_| timed_calls += 1);
        assert_eq!(setups, 5);
        assert_eq!(timed_calls, 5);
    }

    #[test]
    fn mean_ms_scales() {
        let t = Timing {
            mean: Duration::from_micros(1500),
            min: Duration::ZERO,
            max: Duration::ZERO,
            reps: 1,
        };
        assert!((t.mean_ms() - 1.5).abs() < 1e-9);
    }
}
