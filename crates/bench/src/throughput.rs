//! Concurrent throughput benchmark: pooled keep-alive vs connection-per-call.
//!
//! The paper's figures measure one client's Send Time against a discard
//! server. This scenario measures the *system* under concurrency: N client
//! threads, each with its own differential-serialization engine, POST
//! width-stable workloads at an [`Ack`](ServerMode::Ack) server running on
//! the bounded worker pool. Two transport modes are compared at each
//! dirty-fraction level:
//!
//! * **pooled** — all threads share one [`HttpPoolClient`]: persistent
//!   keep-alive connections, health-checked checkout, zero-copy vectored
//!   POSTs.
//! * **per_call** — every request opens a fresh TCP connection (the
//!   HTTP/1.0-era baseline), same vectored send path, so the delta
//!   isolates connection setup/teardown.
//!
//! Dirty fractions toggle the first `d%` of array elements between two
//! 18-character doubles, so every resend is a Perfect Structural Match
//! rewriting exactly that fraction in place — serialization cost scales
//! with `d` while message bytes stay constant.
//!
//! Results (requests/sec, p50/p99 latency) serialize to JSON for
//! `BENCH_throughput.json`; see `EXPERIMENTS.md`.

use crate::workload::{Kind, DOUBLE_MID_W};
use bsoap_convert::format_f64;
use bsoap_core::{Client, EngineConfig, Value};
use bsoap_obs::{parse_value, HistId, Metrics, Tier};
use bsoap_transport::http::{
    post_gather, post_gather_vectored, read_response, render_get_request, HttpVersion,
    RequestConfig,
};
use bsoap_transport::pool::{HttpPoolClient, PoolConfig};
use bsoap_transport::server::{ServerCore, ServerMode, ServerOptions, TestServer};
use bsoap_transport::PostScratch;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Benchmark knobs.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues per scenario.
    pub requests_per_client: usize,
    /// Array elements per message (doubles).
    pub elems: usize,
    /// Client pool size (`PoolConfig::max_idle`), from
    /// `EngineConfig::pool_size` by default.
    pub pool_size: usize,
    /// Server worker threads, from `EngineConfig::server_workers` by
    /// default.
    pub workers: usize,
    /// Dirty-fraction levels (percent of elements rewritten per resend).
    pub dirty_percents: Vec<usize>,
    /// Concurrent-connection scaling sweep run after the matrix.
    pub sweep: SweepConfig,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        let e = EngineConfig::default();
        ThroughputConfig {
            clients: 4,
            requests_per_client: 250,
            elems: 100,
            pool_size: e.pool_size,
            workers: e.server_workers,
            dirty_percents: vec![0, 50, 100],
            sweep: SweepConfig::default(),
        }
    }
}

impl ThroughputConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        ThroughputConfig {
            clients: 2,
            requests_per_client: 40,
            dirty_percents: vec![50],
            sweep: SweepConfig::smoke(),
            ..Self::default()
        }
    }
}

/// Knobs for the concurrent-connection scaling sweep: how many idle
/// keep-alive clients each core can keep *responsive* at once.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Connection counts probed on the worker-pool core. The pool pins
    /// one thread per live connection, so responsiveness stalls at
    /// `workers` — small points suffice to show the ceiling.
    pub worker_pool_points: Vec<usize>,
    /// Connection counts probed on the event-loop core, which must keep
    /// every connection responsive.
    pub event_loop_points: Vec<usize>,
    /// Loop threads for the event-loop points (the paper-scale claim is
    /// ≥5k connections with ≤4 loop threads).
    pub event_loop_threads: usize,
    /// How long unanswered probes are polled before a point settles.
    pub settle: Duration,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            worker_pool_points: vec![100, 1000],
            event_loop_points: vec![100, 1000, 2500, 5000],
            event_loop_threads: 2,
            settle: Duration::from_secs(5),
        }
    }
}

impl SweepConfig {
    /// A sub-second sweep for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        SweepConfig {
            worker_pool_points: vec![50],
            event_loop_points: vec![200],
            settle: Duration::from_secs(2),
            ..Self::default()
        }
    }
}

/// One point of the connection sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// `"worker_pool"` or `"event_loop"`.
    pub core: &'static str,
    /// Keep-alive connections opened, each sending one probe request.
    pub connections: usize,
    /// Connections whose probe got a complete HTTP response before the
    /// settle deadline.
    pub responsive: usize,
    /// Serving threads: `workers` (worker pool) or loop threads (event
    /// loop).
    pub threads: usize,
    /// Seconds from the first probe byte until the point settled.
    pub elapsed_s: f64,
}

/// One (mode, dirty-fraction) measurement.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// `"pooled"` or `"per_call"`.
    pub mode: &'static str,
    /// Percent of elements rewritten per resend.
    pub dirty_pct: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Wall-clock seconds for the whole scenario.
    pub elapsed_s: f64,
    /// Requests per second across all clients.
    pub rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Request bytes written to the wire.
    pub wire_bytes: u64,
    /// TCP connections the server accepted.
    pub connections: u64,
    /// Server-side queue high-water mark.
    pub peak_queue_depth: usize,
    /// Pooled mode: connections opened / checkouts served from the pool /
    /// mid-exchange retries. Zero for per_call.
    pub pool_created: u64,
    /// See [`ScenarioResult::pool_created`].
    pub pool_reused: u64,
    /// See [`ScenarioResult::pool_created`].
    pub pool_retries: u64,
    /// Requests per send tier ([`Tier::ALL`] order) from the shared
    /// metrics registry.
    pub tier_requests: [u64; 4],
    /// Per-tier p50 send latency (µs) from the latency histograms.
    pub tier_p50_us: [f64; 4],
    /// Per-tier p99 send latency (µs).
    pub tier_p99_us: [f64; 4],
    /// The `GET /metrics` scrape taken before the server stopped (not
    /// embedded in the JSON report; the bench front-end writes it to
    /// `BENCH_metrics.prom`).
    pub metrics_prom: String,
}

/// Full report: config echo plus one result per (mode, dirty) pair and
/// the connection-sweep scaling curve.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// The knobs the run used.
    pub config: ThroughputConfig,
    /// One entry per (mode, dirty-fraction) pair.
    pub results: Vec<ScenarioResult>,
    /// Concurrent-connection scaling points, both cores.
    pub sweep: Vec<SweepPoint>,
}

impl ThroughputReport {
    /// Pooled-over-per-call requests/sec ratio at `dirty_pct`.
    pub fn speedup(&self, dirty_pct: usize) -> Option<f64> {
        let rps = |mode: &str| {
            self.results
                .iter()
                .find(|r| r.mode == mode && r.dirty_pct == dirty_pct)
                .map(|r| r.rps)
        };
        match (rps("pooled"), rps("per_call")) {
            (Some(p), Some(c)) if c > 0.0 => Some(p / c),
            _ => None,
        }
    }

    /// Hand-rolled JSON (no serde in the dependency tree).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"benchmark\": \"throughput\",\n");
        s.push_str(&format!("  \"clients\": {},\n", self.config.clients));
        s.push_str(&format!(
            "  \"requests_per_client\": {},\n",
            self.config.requests_per_client
        ));
        s.push_str(&format!("  \"elems\": {},\n", self.config.elems));
        s.push_str(&format!("  \"pool_size\": {},\n", self.config.pool_size));
        s.push_str(&format!("  \"server_workers\": {},\n", self.config.workers));
        s.push_str("  \"scenarios\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"mode\": \"{}\", \"dirty_pct\": {}, \"requests\": {}, \
                 \"elapsed_s\": {:.4}, \"rps\": {:.1}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"wire_bytes\": {}, \"connections\": {}, \
                 \"peak_queue_depth\": {}, \"pool_created\": {}, \
                 \"pool_reused\": {}, \"pool_retries\": {}, \"tiers\": {}}}{}\n",
                r.mode,
                r.dirty_pct,
                r.requests,
                r.elapsed_s,
                r.rps,
                r.p50_us,
                r.p99_us,
                r.wire_bytes,
                r.connections,
                r.peak_queue_depth,
                r.pool_created,
                r.pool_reused,
                r.pool_retries,
                tiers_json(r),
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"connection_sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"core\": \"{}\", \"connections\": {}, \"responsive\": {}, \
                 \"threads\": {}, \"elapsed_s\": {:.4}}}{}\n",
                p.core,
                p.connections,
                p.responsive,
                p.threads,
                p.elapsed_s,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"speedup_pooled_over_per_call\": {");
        let mut first = true;
        for &d in &self.config.dirty_percents {
            if let Some(x) = self.speedup(d) {
                if !first {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{d}\": {x:.2}"));
                first = false;
            }
        }
        s.push_str("}\n}\n");
        s
    }
}

/// The per-tier block of one scenario's JSON entry: request count and
/// latency percentiles for every tier that actually saw traffic.
fn tiers_json(r: &ScenarioResult) -> String {
    let mut s = String::from("{");
    let mut first = true;
    for (i, tier) in Tier::ALL.iter().enumerate() {
        if r.tier_requests[i] == 0 {
            continue;
        }
        if !first {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{}\": {{\"requests\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            tier.label(),
            r.tier_requests[i],
            r.tier_p50_us[i],
            r.tier_p99_us[i],
        ));
        first = false;
    }
    s.push('}');
    s
}

/// An 18-character double distinct from [`DOUBLE_MID_W`], found by search
/// so the dirty-toggle rewrites are guaranteed width-stable (pure in-place
/// PSM, no shifting).
fn alt_mid_double() -> f64 {
    for b in 13..99 {
        let v = b as f64 + 0.345_678_901_234_567;
        if v != DOUBLE_MID_W && format_f64(v).len() == 18 {
            return v;
        }
    }
    unreachable!("some 2-digit integer part yields an 18-char double");
}

/// The two argument sets a client alternates between: all-mid, and
/// first-`dirty_pct`% swapped to the alternate 18-char value.
fn arg_pair(elems: usize, dirty_pct: usize) -> (Value, Value) {
    let base = vec![DOUBLE_MID_W; elems];
    let mut dirty = base.clone();
    let k = elems * dirty_pct / 100;
    let alt = alt_mid_double();
    for x in dirty.iter_mut().take(k) {
        *x = alt;
    }
    (Value::DoubleArray(base), Value::DoubleArray(dirty))
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

struct ThreadOutcome {
    latencies_us: Vec<u64>,
    wire_bytes: u64,
}

/// Run one scenario: `clients` threads issue `requests_per_client`
/// requests each through `mode`'s transport against a fresh Ack server.
fn run_scenario(
    cfg: &ThroughputConfig,
    mode: &'static str,
    dirty_pct: usize,
) -> io::Result<ScenarioResult> {
    // One registry shared by every client engine, the pooled transport and
    // the server: tier counters and latency histograms aggregate the whole
    // scenario, and `GET /metrics` exposes them mid-run.
    let metrics = Metrics::shared();
    let server = TestServer::spawn_with_metrics(
        ServerMode::Ack,
        ServerOptions {
            workers: cfg.workers,
            drain_deadline: Duration::from_secs(5),
            ..ServerOptions::default()
        },
        Arc::clone(&metrics),
    )?;
    let addr = server.addr();
    let req_cfg = RequestConfig::loopback(HttpVersion::Http11Length);
    let pooled: Option<Arc<HttpPoolClient>> = (mode == "pooled").then(|| {
        let mut client = HttpPoolClient::new(
            addr,
            req_cfg.clone(),
            PoolConfig {
                max_idle: cfg.pool_size,
                ..PoolConfig::default()
            },
        );
        client.set_metrics(Arc::clone(&metrics));
        Arc::new(client)
    });

    let barrier = Arc::new(Barrier::new(cfg.clients + 1));
    let mut handles = Vec::with_capacity(cfg.clients);
    for _ in 0..cfg.clients {
        let barrier = Arc::clone(&barrier);
        let pooled = pooled.clone();
        let req_cfg = req_cfg.clone();
        let thread_metrics = Arc::clone(&metrics);
        let (elems, requests) = (cfg.elems, cfg.requests_per_client);
        handles.push(std::thread::spawn(move || -> io::Result<ThreadOutcome> {
            let mut engine = Client::new(EngineConfig::default());
            engine.set_metrics(thread_metrics);
            let op = Kind::Doubles.op();
            let endpoint = format!("http://{addr}/service");
            let (base, dirty) = arg_pair(elems, dirty_pct);
            let mut latencies_us = Vec::with_capacity(requests);
            let mut wire_bytes = 0u64;
            let mut scratch = PostScratch::default();
            barrier.wait();
            for r in 0..requests {
                let args = if r % 2 == 0 { &base } else { &dirty };
                let args = std::slice::from_ref(args);
                let t0 = Instant::now();
                let report = match &pooled {
                    Some(pool) => engine
                        .call_via(&endpoint, &op, args, |slices| {
                            let reply = pool.call(slices)?;
                            if reply.status != 200 {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("HTTP {}", reply.status),
                                ));
                            }
                            Ok(reply.wire_bytes)
                        })
                        .map_err(|e| io::Error::other(e.to_string()))?,
                    None => engine
                        .call_via(&endpoint, &op, args, |slices| {
                            let mut stream = TcpStream::connect(addr)?;
                            stream.set_nodelay(true)?;
                            let n =
                                post_gather_vectored(&mut stream, &req_cfg, slices, &mut scratch)?;
                            let (status, _) = read_response(&mut stream)?;
                            if status != 200 {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("HTTP {status}"),
                                ));
                            }
                            Ok(n)
                        })
                        .map_err(|e| io::Error::other(e.to_string()))?,
                };
                latencies_us.push(t0.elapsed().as_micros() as u64);
                wire_bytes += report.bytes as u64;
            }
            Ok(ThreadOutcome {
                latencies_us,
                wire_bytes,
            })
        }));
    }

    barrier.wait();
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(cfg.clients * cfg.requests_per_client);
    let mut wire_bytes = 0u64;
    for h in handles {
        let outcome = h.join().expect("client thread panicked")?;
        latencies.extend(outcome.latencies_us);
        wire_bytes += outcome.wire_bytes;
    }
    let elapsed = start.elapsed();

    let (pool_created, pool_reused, pool_retries) = match &pooled {
        Some(p) => {
            let st = p.pool().stats();
            (st.created, st.reused, st.retries)
        }
        None => (0, 0, 0),
    };

    // Scrape /metrics while the server is still up — through the pool's
    // keep-alive path when there is one, else a one-shot GET.
    let metrics_prom = match &pooled {
        Some(p) => {
            let reply = p.get("/metrics")?;
            if reply.status != 200 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("metrics scrape returned HTTP {}", reply.status),
                ));
            }
            String::from_utf8_lossy(&reply.body).into_owned()
        }
        None => scrape_metrics(addr)?,
    };
    drop(pooled);
    let stats = server.stop();
    let total = latencies.len() as u64;
    assert_eq!(
        stats.requests, total,
        "server must have answered every request ({mode}, {dirty_pct}% dirty)"
    );

    // The registry must agree exactly with what the bench issued: one tier
    // counter tick and one latency observation per request, visible both in
    // the snapshot and in the scraped Prometheus text.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.total_sends(),
        total,
        "tier counters must sum to requests issued"
    );
    let hist_counts: u64 = Tier::ALL
        .iter()
        .map(|t| snap.hist(HistId::send(*t)).count())
        .sum();
    assert_eq!(
        hist_counts, total,
        "latency histogram counts must equal requests issued"
    );
    assert_eq!(
        parse_value(&metrics_prom, "bsoap_server_requests_total"),
        Some(total as f64),
        "scraped text must report every request"
    );
    let tier_requests = snap.tier_counts();
    let tier_p50_us = std::array::from_fn(|i| {
        snap.hist(HistId::send(Tier::ALL[i])).percentile(50.0) as f64 / 1e3
    });
    let tier_p99_us = std::array::from_fn(|i| {
        snap.hist(HistId::send(Tier::ALL[i])).percentile(99.0) as f64 / 1e3
    });

    latencies.sort_unstable();
    let elapsed_s = elapsed.as_secs_f64();
    Ok(ScenarioResult {
        mode,
        dirty_pct,
        requests: total,
        elapsed_s,
        rps: total as f64 / elapsed_s.max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
        wire_bytes,
        connections: stats.connections,
        peak_queue_depth: stats.peak_queue_depth,
        pool_created,
        pool_reused,
        pool_retries,
        tier_requests,
        tier_p50_us,
        tier_p99_us,
        metrics_prom,
    })
}

/// One-shot `GET /metrics` against `addr` on a fresh connection.
fn scrape_metrics(addr: std::net::SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = Vec::new();
    render_get_request(&mut head, "/metrics", "localhost");
    stream.write_all(&head)?;
    stream.flush()?;
    let (status, body) = read_response(&mut stream)?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metrics scrape returned HTTP {status}"),
        ));
    }
    Ok(String::from_utf8_lossy(&body).into_owned())
}

/// One sweep point: open `n` keep-alive connections against a fresh Ack
/// server on `core`, send one probe POST on each, then poll nonblocking
/// until every connection answered or the settle deadline passes.
fn sweep_point(sweep: &SweepConfig, core: ServerCore, n: usize) -> io::Result<SweepPoint> {
    let (core_name, threads) = match core {
        ServerCore::WorkerPool => ("worker_pool", EngineConfig::default().server_workers),
        ServerCore::EventLoop => ("event_loop", sweep.event_loop_threads),
    };
    let server = TestServer::spawn_with(
        ServerMode::Ack,
        ServerOptions {
            core,
            workers: threads,
            event_loop_threads: sweep.event_loop_threads,
            max_connections: n.max(1) * 2,
            drain_deadline: Duration::from_secs(1),
            ..ServerOptions::default()
        },
    )?;
    let addr = server.addr();

    // One probe request, framed once, written to every connection.
    let mut probe = Vec::new();
    let mut scratch = Vec::new();
    let req_cfg = RequestConfig::loopback(HttpVersion::Http11Length);
    post_gather(
        &mut probe,
        &req_cfg,
        &[IoSlice::new(b"<probe/>")],
        &mut scratch,
    )?;

    let mut socks = Vec::with_capacity(n);
    for i in 0..n {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        socks.push(s);
        // Pace the connect storm so the accept side (sharing one machine,
        // possibly one core) keeps the listen backlog drained.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    let start = Instant::now();
    for s in &mut socks {
        s.write_all(&probe)?;
        s.flush()?;
    }
    for s in &socks {
        s.set_nonblocking(true)?;
    }

    // Poll for responses: a connection is responsive once its buffered
    // reply contains a complete head (the Ack reply is head-only).
    let deadline = start + sweep.settle;
    // A point also settles once no byte has arrived for a while: the
    // worker pool's stalled majority should not burn the whole budget.
    let quiesce = Duration::from_millis(750).min(sweep.settle / 2);
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut done = vec![false; n];
    let mut responsive = 0usize;
    let mut remaining = n;
    let mut last_answer = start;
    let mut last_progress = Instant::now();
    while remaining > 0 && Instant::now() < deadline && last_progress.elapsed() < quiesce {
        let mut progress = false;
        for i in 0..n {
            if done[i] {
                continue;
            }
            let mut chunk = [0u8; 256];
            match (&socks[i]).read(&mut chunk) {
                Ok(0) => {
                    done[i] = true;
                    remaining -= 1;
                }
                Ok(k) => {
                    progress = true;
                    bufs[i].extend_from_slice(&chunk[..k]);
                    if bufs[i].windows(4).any(|w| w == b"\r\n\r\n") {
                        done[i] = true;
                        remaining -= 1;
                        responsive += 1;
                        last_answer = Instant::now();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => progress = true,
                Err(_) => {
                    done[i] = true;
                    remaining -= 1;
                }
            }
        }
        if progress {
            last_progress = Instant::now();
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    drop(socks);
    server.stop();

    Ok(SweepPoint {
        core: core_name,
        connections: n,
        responsive,
        threads,
        elapsed_s: (last_answer - start).as_secs_f64(),
    })
}

/// Run the scaling sweep on both cores, with the self-checks the curves
/// exist to prove: the worker pool stalls at `workers` responsive
/// connections, while the event loop keeps *every* keep-alive client
/// responsive (≥5k with ≤4 loop threads at the default points).
pub fn run_sweep(sweep: &SweepConfig) -> io::Result<Vec<SweepPoint>> {
    let mut points = Vec::new();
    for &n in &sweep.worker_pool_points {
        let p = sweep_point(sweep, ServerCore::WorkerPool, n)?;
        assert_eq!(
            p.responsive,
            n.min(p.threads),
            "worker pool must serve exactly its {} workers out of {} connections",
            p.threads,
            n
        );
        points.push(p);
    }
    if bsoap_transport::poller::supported() {
        for &n in &sweep.event_loop_points {
            let p = sweep_point(sweep, ServerCore::EventLoop, n)?;
            assert_eq!(
                p.responsive, n,
                "event loop must keep all {} connections responsive on {} loop threads",
                n, p.threads
            );
            points.push(p);
        }
    }
    Ok(points)
}

/// Run the full matrix — both modes at every dirty-fraction level — then
/// the connection sweep on both cores.
pub fn run(cfg: &ThroughputConfig) -> io::Result<ThroughputReport> {
    let mut results = Vec::new();
    for &dirty in &cfg.dirty_percents {
        for mode in ["pooled", "per_call"] {
            results.push(run_scenario(cfg, mode, dirty)?);
        }
    }
    let sweep = run_sweep(&cfg.sweep)?;
    Ok(ThroughputReport {
        config: cfg.clone(),
        results,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alt_double_is_18_chars_and_distinct() {
        let alt = alt_mid_double();
        assert_eq!(format_f64(alt).len(), 18);
        assert_ne!(alt, DOUBLE_MID_W);
        assert_eq!(format_f64(DOUBLE_MID_W).len(), 18);
    }

    #[test]
    fn percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 51.0);
        assert_eq!(percentile_us(&v, 99.0), 99.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
    }

    #[test]
    fn connection_sweep_scales_on_the_event_loop_only() {
        let sweep = SweepConfig {
            worker_pool_points: vec![12],
            event_loop_points: vec![24],
            event_loop_threads: 1,
            settle: Duration::from_secs(2),
        };
        let points = run_sweep(&sweep).unwrap();
        let wp = points.iter().find(|p| p.core == "worker_pool").unwrap();
        // run_sweep's own self-checks already asserted exact counts; pin
        // the shape here so the JSON curve stays meaningful.
        assert_eq!(wp.connections, 12);
        assert_eq!(wp.responsive, wp.threads.min(12));
        if bsoap_transport::poller::supported() {
            let el = points.iter().find(|p| p.core == "event_loop").unwrap();
            assert_eq!((el.connections, el.responsive), (24, 24));
            assert_eq!(el.threads, 1);
        }
    }

    #[test]
    fn smoke_run_both_modes() {
        let cfg = ThroughputConfig {
            clients: 2,
            requests_per_client: 8,
            elems: 10,
            dirty_percents: vec![50],
            sweep: SweepConfig {
                worker_pool_points: vec![8],
                event_loop_points: vec![16],
                settle: Duration::from_secs(2),
                ..SweepConfig::smoke()
            },
            ..ThroughputConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert_eq!(r.requests, 16);
            assert!(r.rps > 0.0);
            assert!(r.p50_us > 0.0);
            assert!(r.p99_us >= r.p50_us);
            // Tier accounting: counters sum to requests issued, and the
            // scraped exposition text agrees.
            assert_eq!(r.tier_requests.iter().sum::<u64>(), r.requests);
            assert_eq!(
                r.tier_requests[bsoap_obs::Tier::FirstTime.index()],
                cfg.clients as u64,
                "each client's first call serializes from scratch"
            );
            assert_eq!(
                parse_value(&r.metrics_prom, "bsoap_server_requests_total"),
                Some(r.requests as f64)
            );
            for (i, _) in bsoap_obs::Tier::ALL.iter().enumerate() {
                if r.tier_requests[i] > 0 {
                    assert!(r.tier_p99_us[i] >= r.tier_p50_us[i]);
                }
            }
        }
        let pooled = &report.results[0];
        let per_call = &report.results[1];
        assert_eq!(pooled.mode, "pooled");
        // Keep-alive: connections bounded by client count (+1 for the
        // metrics scrape); per-call pays one TCP connection per request
        // plus the scrape's.
        assert!(pooled.connections <= cfg.clients as u64 + 1 + pooled.pool_retries);
        assert_eq!(per_call.connections, 17);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"throughput\""));
        assert!(json.contains("\"mode\": \"pooled\""));
        assert!(json.contains("speedup_pooled_over_per_call"));
        assert!(json.contains("\"connection_sweep\""));
        assert!(json.contains("\"core\": \"worker_pool\""));
        if bsoap_transport::poller::supported() {
            assert!(json.contains("\"core\": \"event_loop\""));
        }
    }
}
