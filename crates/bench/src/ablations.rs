//! Design-space ablations beyond the paper's figures.
//!
//! Section 3.2 lists the knobs ("configurable parameters determine the
//! default initial chunk size, the threshold at which chunks are split,
//! and the space that is initially left empty at the end of a chunk")
//! and the alternatives (stealing vs shifting, stuffed widths vs wire
//! size); §6 proposes differential deserialization. Each function here
//! isolates one of those choices.

use crate::scenarios::{touch_percent, Table};
use crate::timing::{measure, measure_batched};
use crate::workload::{pinned, values, Kind, WidthClass};
use bsoap_chunks::ChunkConfig;
use bsoap_core::{EngineConfig, GrowthPolicy, MessageTemplate, WidthPolicy};
use bsoap_deser::{parse_envelope, DiffDeserializer};
use bsoap_transport::SinkTransport;

const WARMUP: usize = 2;

/// Chunk-size sweep under worst-case shifting (§3.2: "selecting the
/// appropriate chunk size to reduce the cost of shifting").
pub fn ablation_chunk_size(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let chunk_sizes: &[(usize, &str)] = &[
        (2 * 1024, "2K chunks"),
        (8 * 1024, "8K chunks"),
        (32 * 1024, "32K chunks"),
        (128 * 1024, "128K chunks"),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        let mut cells = Vec::new();
        for &(cs, _) in chunk_sizes {
            let chunk = ChunkConfig {
                initial_size: cs,
                split_threshold: cs * 2,
                reserve: cs / 16,
            };
            let config = EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_chunk(chunk);
            let mut sink = SinkTransport::new();
            let t = measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &min_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&max_args).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            );
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: chunk size".to_owned(),
        title: format!("Worst-case shifting vs chunk size: {}", kind.name()),
        series: chunk_sizes.iter().map(|&(_, l)| l.to_owned()).collect(),
        rows,
    }
}

/// Stealing on/off under moderate growth (§3.2 / the "dynamic resizing"
/// companion paper).
///
/// Fields start stuffed to the intermediate width holding minimum-width
/// values (17 characters of pad each); every *even* element then grows to
/// the maximum width, needing 6 characters more than its field. Its odd
/// right neighbor never grows, so its pad is always available — the exact
/// case stealing is built for (a handful of tag bytes move instead of the
/// whole chunk tail).
pub fn ablation_stealing(sizes: &[usize], reps: usize) -> Table {
    use bsoap_core::Value;
    let kind = Kind::Doubles;
    let op = kind.op();
    let mut rows = Vec::new();
    for &n in sizes {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let grown = {
            let Value::DoubleArray(v) = &min_args[0] else {
                unreachable!()
            };
            let mut v = v.clone();
            for x in v.iter_mut().step_by(2) {
                *x = crate::workload::DOUBLE_MAX_W;
            }
            vec![Value::DoubleArray(v)]
        };
        let mut cells = Vec::new();
        for steal in [true, false] {
            let config = EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_width(WidthPolicy::Fixed {
                    double: 18,
                    int: 9,
                    long: 20,
                })
                .with_steal(steal);
            let mut sink = SinkTransport::new();
            let mut steals_seen = 0usize;
            let mut shifts_seen = 0usize;
            let t = measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &min_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&grown).unwrap();
                    let report = tpl.flush();
                    steals_seen += report.steals;
                    shifts_seen += report.shifts;
                    tpl.send(&mut sink).unwrap();
                },
            );
            // The scenario must exercise what it claims to.
            if n >= 2 {
                if steal {
                    assert!(steals_seen > 0, "steal config produced no steals");
                } else {
                    assert!(shifts_seen > 0, "no-steal config produced no shifts");
                }
            }
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: stealing".to_owned(),
        title: "Alternating growth: stealing enabled vs shifting only (doubles)".to_owned(),
        series: vec!["steal enabled".to_owned(), "shift only".to_owned()],
        rows,
    }
}

/// Trailing-reserve sweep (§3.2: "the space that is initially left empty
/// at the end of a chunk (to allow for shifting without reallocation)").
pub fn ablation_reserve(sizes: &[usize], reps: usize) -> Table {
    let kind = Kind::Doubles;
    let op = kind.op();
    let reserves: &[(usize, &str)] = &[
        (0, "reserve 0"),
        (512, "reserve 512"),
        (4096, "reserve 4K"),
        (16384, "reserve 16K"),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let mid_args = vec![pinned(kind, n, WidthClass::Mid)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        let mut cells = Vec::new();
        for &(reserve, _) in reserves {
            let chunk = ChunkConfig {
                initial_size: 32 * 1024,
                split_threshold: 64 * 1024,
                reserve,
            };
            let config = EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_chunk(chunk);
            let mut sink = SinkTransport::new();
            let t = measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &mid_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&max_args).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            );
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: reserve".to_owned(),
        title: "Full growth vs trailing chunk reserve (doubles, 32K chunks)".to_owned(),
        series: reserves.iter().map(|&(_, l)| l.to_owned()).collect(),
        rows,
    }
}

/// Post-shift growth policy: grow to exact size vs straight to maximum
/// width (never shift the same field twice).
pub fn ablation_growth_policy(sizes: &[usize], reps: usize) -> Table {
    let kind = Kind::Doubles;
    let op = kind.op();
    let mut rows = Vec::new();
    for &n in sizes {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let mid_args = vec![pinned(kind, n, WidthClass::Mid)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        let mut cells = Vec::new();
        for growth in [GrowthPolicy::Exact, GrowthPolicy::ToMax] {
            let config = EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_growth(growth);
            let mut sink = SinkTransport::new();
            // Two-step growth: min → mid (shifts), then mid → max. Under
            // ToMax the first shift already widened to 24 chars, so the
            // second step never shifts.
            let t = measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &min_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&mid_args).unwrap();
                    tpl.flush();
                    tpl.update_args(&max_args).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            );
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: growth policy".to_owned(),
        title: "Two-step growth: exact regrow vs grow-to-max (doubles)".to_owned(),
        series: vec!["grow exact".to_owned(), "grow to max".to_owned()],
        rows,
    }
}

/// Pipelined send (companion paper: chunk-overlaying + pipelined-send):
/// overlap serialization of window *i+1* with the transmission of window
/// *i*. The win scales with how expensive the sink is, so the slow sink
/// models a wire whose bandwidth is comparable to serialization speed.
///
/// Caveat: overlap needs a second core. On a single-CPU host the
/// pipelined rows show only the pipeline's copy/synchronization overhead
/// (a few percent) — the `max_in_flight` counter in
/// [`bsoap_core::pipeline::PipelineReport`] still proves the pipeline
/// fills, it just cannot run both stages at once.
pub fn ablation_pipelined(sizes: &[usize], reps: usize) -> Table {
    use bsoap_core::overlay::OverlaySender;
    use bsoap_core::pipeline::PipelinedSender;
    use std::io::Write;

    /// Sink with per-byte work (several checksum passes), standing in for
    /// a wire that cannot absorb bytes instantly.
    struct SlowSink(u64);
    impl Write for SlowSink {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            let mut h = self.0;
            for _ in 0..16 {
                for &x in b {
                    h = h.wrapping_mul(0x100000001b3) ^ x as u64;
                }
            }
            self.0 = h;
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let kind = Kind::Doubles;
    let op = kind.op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let mut rows = Vec::new();
    for &n in sizes {
        let args = values(kind, n);
        let mut cells = Vec::new();
        {
            let mut overlay = OverlaySender::new(config, &op, 256).unwrap();
            let mut sink = SlowSink(1);
            let t = measure(WARMUP, reps, || {
                overlay.send(&args, &mut sink).unwrap();
            });
            cells.push(t.mean_ms());
        }
        for depth in [2usize, 4] {
            let mut pipelined = PipelinedSender::new(config, &op, 256, depth).unwrap();
            pipelined.set_buffer_target(16 * 1024);
            let mut sink = SlowSink(1);
            let t = measure(WARMUP, reps, || {
                pipelined.send(&args, &mut sink).unwrap();
            });
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: pipelined send".to_owned(),
        title: "Overlay vs pipelined send against a slow sink (doubles)".to_owned(),
        series: vec![
            "overlay, sequential".to_owned(),
            "pipelined, depth 2".to_owned(),
            "pipelined, depth 4".to_owned(),
        ],
        rows,
    }
}

/// Differential deserialization (§6): server-side cost of full parsing vs
/// the skeleton-compare + leaf-reparse path, at 1% and 100% changed
/// leaves.
pub fn ablation_diff_deser(sizes: &[usize], reps: usize) -> Table {
    let kind = Kind::Doubles;
    let op = kind.op();
    // Stuffed widths keep messages byte-stable under value changes so the
    // differential path stays live (the §6 interplay with stuffing).
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_width(WidthPolicy::Max);
    let mut rows = Vec::new();
    for &n in sizes {
        let args = vec![values(kind, n)];
        let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
        let base = tpl.to_bytes();
        // Variant messages: 1% and 100% of leaves changed.
        let variant = |percent: usize| -> Vec<u8> {
            let mut t = MessageTemplate::build(config, &op, &args).unwrap();
            touch_percent(&mut t, kind, percent);
            // touch keeps values identical; actually change them.
            for e in 0..(n * percent / 100).max(usize::from(percent > 0 && n > 0)) {
                let leaf = t.array_leaf(0, e, 0);
                t.set_double(leaf, 0.123456789 + e as f64).unwrap();
            }
            t.flush();
            t.to_bytes()
        };
        let msg_1 = variant(1);
        let msg_100 = variant(100);

        let mut cells = Vec::new();
        {
            // Full parse of the 1%-changed message.
            let t = measure(WARMUP, reps, || {
                parse_envelope(&msg_1, &op).unwrap();
            });
            cells.push(t.mean_ms());
        }
        for msg in [&msg_1, &msg_100] {
            let mut d = DiffDeserializer::new(op.clone());
            d.deserialize(&base).unwrap();
            // Alternate so every iteration has changed leaf bytes.
            let mut flip = false;
            let t = measure(WARMUP, reps, || {
                let m = if flip { &base } else { msg };
                flip = !flip;
                d.deserialize(m).unwrap();
            });
            cells.push(t.mean_ms());
        }
        let _ = tpl.flush();
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: differential deserialization (§6)".to_owned(),
        title: "Server-side parse cost (doubles, stuffed widths)".to_owned(),
        series: vec![
            "full parse".to_owned(),
            "differential, 1% changed".to_owned(),
            "differential, 100% changed".to_owned(),
        ],
        rows,
    }
}

/// HTTP framing overhead: raw bytes vs HTTP/1.1 content-length vs
/// HTTP/1.1 chunked, into the sink (framing cost only, no kernel).
pub fn ablation_http_framing(sizes: &[usize], reps: usize) -> Table {
    use bsoap_transport::http::{post_gather, HttpVersion, RequestConfig};
    let kind = Kind::Doubles;
    let op = kind.op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let mut rows = Vec::new();
    for &n in sizes {
        let args = vec![values(kind, n)];
        let tpl = MessageTemplate::build(config, &op, &args).unwrap();
        let mut cells = Vec::new();
        {
            let mut sink = SinkTransport::new();
            let t = measure(WARMUP, reps, || {
                bsoap_transport::write_gather(&mut sink, &tpl.io_slices()).unwrap();
            });
            cells.push(t.mean_ms());
        }
        for version in [HttpVersion::Http11Length, HttpVersion::Http11Chunked] {
            let cfg = RequestConfig::loopback(version);
            let mut sink = SinkTransport::new();
            let mut scratch = Vec::new();
            let t = measure(WARMUP, reps, || {
                post_gather(&mut sink, &cfg, &tpl.io_slices(), &mut scratch).unwrap();
            });
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: HTTP framing".to_owned(),
        title: "Send cost by framing (doubles, sink transport)".to_owned(),
        series: vec![
            "raw".to_owned(),
            "HTTP/1.1 content-length".to_owned(),
            "HTTP/1.1 chunked".to_owned(),
        ],
        rows,
    }
}

/// Server dispatch (§3 "a server sending identical (or similar)
/// responses"): requests/second through the full dispatch pipeline with
/// both differential engines, vs a naive host that full-parses every
/// request and full-serializes every response.
pub fn ablation_server_dispatch(sizes: &[usize], reps: usize) -> Table {
    use bsoap_baseline::GSoapLike;
    use bsoap_convert::ScalarKind;
    use bsoap_core::{OpDesc, ParamDesc, TypeDesc, Value};
    use bsoap_server::Service;

    let op = || {
        OpDesc::single(
            "lookup",
            "urn:bench",
            "key",
            TypeDesc::Scalar(ScalarKind::Int),
        )
    };
    let response_params = || {
        vec![ParamDesc {
            name: "page".into(),
            desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        }]
    };
    // `sizes` is the response page size; a stream of queries cycles
    // through 4 hot keys, so responses repeat (the heavily-used-server
    // pattern).
    let mut rows = Vec::new();
    for &n in sizes {
        let handler = move |args: &[Value]| -> Result<Vec<Value>, String> {
            let Value::Int(k) = args[0] else {
                return Err("type".into());
            };
            // Result pages share almost all content across queries (the
            // §3.4 observation: "only the values stored in the XML Schema
            // instance change" — and between popular queries, few do):
            // only every 64th entry depends on the key.
            Ok(vec![Value::DoubleArray(
                (0..n)
                    .map(|i| {
                        if i % 64 == 0 {
                            (k % 4) as f64 + i as f64 * 0.5
                        } else {
                            i as f64 * 0.5
                        }
                    })
                    .collect(),
            )])
        };
        // Pre-serialized request stream (4 hot keys, repeated).
        let requests: Vec<Vec<u8>> = (0..8)
            .map(|k| {
                MessageTemplate::build(
                    EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
                    &op(),
                    &[Value::Int(k % 4)],
                )
                .unwrap()
                .to_bytes()
            })
            .collect();

        let mut cells = Vec::new();
        {
            // Differential host.
            let mut svc = Service::new(
                "urn:bench",
                EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            );
            svc.register(op(), response_params(), handler);
            let mut i = 0usize;
            let t = measure(WARMUP, reps, || {
                for _ in 0..requests.len() {
                    svc.dispatch("lookup", &requests[i % requests.len()])
                        .unwrap();
                    i += 1;
                }
            });
            cells.push(t.mean_ms());
        }
        {
            // Naive host: full parse + full response serialization.
            let req_op = op();
            let resp_op = OpDesc::new("lookupResponse", "urn:bench", response_params());
            let mut g = GSoapLike::new();
            let mut i = 0usize;
            let t = measure(WARMUP, reps, || {
                for _ in 0..requests.len() {
                    let args = parse_envelope(&requests[i % requests.len()], &req_op).unwrap();
                    let result = handler(&args).unwrap();
                    let bytes = g.serialize(&resp_op, &result).unwrap();
                    std::hint::black_box(bytes.len());
                    i += 1;
                }
            });
            cells.push(t.mean_ms());
        }
        rows.push((n, cells));
    }
    Table {
        id: "Ablation: server dispatch".to_owned(),
        title: "8 queries over 4 hot keys: differential host vs naive host (page of n doubles)"
            .to_owned(),
        series: vec!["differential host".to_owned(), "naive host".to_owned()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &[usize] = &[64];

    #[test]
    fn all_ablations_produce_tables() {
        let tables = [
            ablation_chunk_size(Kind::Doubles, TINY, 2),
            ablation_stealing(TINY, 2),
            ablation_reserve(TINY, 2),
            ablation_growth_policy(TINY, 2),
            ablation_diff_deser(TINY, 2),
            ablation_pipelined(TINY, 2),
            ablation_server_dispatch(TINY, 2),
            ablation_http_framing(TINY, 2),
        ];
        for t in &tables {
            assert_eq!(t.rows.len(), TINY.len(), "{}", t.id);
            for (_, cells) in &t.rows {
                assert_eq!(cells.len(), t.series.len(), "{}", t.id);
                assert!(cells.iter().all(|c| c.is_finite() && *c >= 0.0), "{}", t.id);
            }
        }
    }

    #[test]
    fn diff_deser_one_percent_beats_full_parse_at_scale() {
        let t = ablation_diff_deser(&[10_000], 3);
        let row = &t.rows[0].1;
        assert!(
            row[1] * 2.0 < row[0],
            "1%-changed differential ({}) should be ≥2x faster than full parse ({})",
            row[1],
            row[0]
        );
    }
}
