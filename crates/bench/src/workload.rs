//! Workload generators matching the paper's §4 experiments.
//!
//! The evaluation sends single arrays of integers, IEEE-754 doubles, and
//! MIOs (`[int, int, double]` mesh interface objects) of 1 … 100K
//! elements. The shifting/stuffing experiments additionally need values
//! whose *serialized width* is pinned: smallest (1-char double, 3-char
//! MIO), intermediate (18-char double, 36-char MIO), and largest (24-char
//! double, 46-char MIO). The constants here are width-pinned and verified
//! by unit tests against the conversion layer.

use bsoap_convert::ScalarKind;
use bsoap_core::{value::mio, OpDesc, TypeDesc, Value};

/// The paper's message-size sweep (§4.1).
pub const PAPER_SIZES: &[usize] = &[1, 100, 500, 1_000, 10_000, 50_000, 100_000];

/// A reduced sweep for quick runs.
pub const QUICK_SIZES: &[usize] = &[1, 100, 1_000, 10_000];

/// Element type under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// `xsd:int` arrays (Figure 3).
    Ints,
    /// `xsd:double` arrays (Figures 2, 5, 7, 9, 11, 12).
    Doubles,
    /// MIO arrays (Figures 1, 4, 6, 8, 10, 12).
    Mios,
}

impl Kind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Ints => "integers",
            Kind::Doubles => "doubles",
            Kind::Mios => "MIOs",
        }
    }

    /// The single-array operation for this kind.
    pub fn op(self) -> OpDesc {
        match self {
            Kind::Ints => OpDesc::single(
                "sendInts",
                "urn:bench",
                "arr",
                TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            ),
            Kind::Doubles => OpDesc::single(
                "sendDoubles",
                "urn:bench",
                "arr",
                TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            ),
            Kind::Mios => OpDesc::single(
                "sendMios",
                "urn:bench",
                "arr",
                TypeDesc::array_of(TypeDesc::mio()),
            ),
        }
    }

    /// DUT leaves per array element.
    pub fn leaves_per_elem(self) -> usize {
        match self {
            Kind::Mios => 3,
            _ => 1,
        }
    }
}

// ---------------------------------------------------------------------
// Width-pinned scalars (verified in tests).
// ---------------------------------------------------------------------

/// Serializes as `"1"` — the smallest possible double (1 char).
pub const DOUBLE_MIN_W: f64 = 1.0;
/// Serializes as `"12.345678901234567"` — 18 chars (the paper's
/// intermediate double width, §4.4). Plain-decimal form, so conversion
/// cost is typical rather than pathological.
pub const DOUBLE_MID_W: f64 = 12.345678901234567;
/// Serializes as `"-1.6054609345651112E-109"` — 24 chars (maximum).
///
/// Any 24-character double necessarily has a three-digit negative decimal
/// exponent (17 significant digits + `E-1xx`). This specimen sits near
/// `1e-109`, where the exact-digit conversion is ~5× cheaper than at the
/// `E-308` extreme — the max-width workloads should measure *field-width*
/// effects (shifting, stuffing), not the tail of the conversion routine's
/// own cost curve.
pub const DOUBLE_MAX_W: f64 = f64::from_bits(0xA958_2193_8AD3_D9F0);

/// Serializes as `"0"` — 1 char.
pub const INT_MIN_W: i32 = 0;
/// Serializes as `"-10000000"` — 9 chars (MIO-intermediate component).
pub const INT_MID_W: i32 = -10_000_000;
/// Serializes as `"-2000000000"` — 11 chars (maximum).
pub const INT_MAX_W: i32 = -2_000_000_000;

/// Smallest possible MIO: 3 characters total.
pub fn mio_min_w() -> Value {
    mio(INT_MIN_W, INT_MIN_W, DOUBLE_MIN_W)
}

/// Intermediate MIO: 9 + 9 + 18 = 36 characters (Figure 8's start size).
pub fn mio_mid_w() -> Value {
    mio(INT_MID_W, INT_MID_W, DOUBLE_MID_W)
}

/// Largest possible MIO: 11 + 11 + 24 = 46 characters.
pub fn mio_max_w() -> Value {
    mio(INT_MAX_W, INT_MAX_W, DOUBLE_MAX_W)
}

// ---------------------------------------------------------------------
// Array builders.
// ---------------------------------------------------------------------

/// "Realistic" array values: varied magnitudes, deterministic.
pub fn values(kind: Kind, n: usize) -> Value {
    match kind {
        Kind::Ints => Value::IntArray(
            (0..n)
                .map(|i| (i as i32).wrapping_mul(2_654_435_761u32 as i32))
                .collect(),
        ),
        Kind::Doubles => Value::DoubleArray(
            (0..n)
                .map(|i| (i as f64 + 0.5) * 1.001f64.powi((i % 600) as i32 - 300))
                .collect(),
        ),
        Kind::Mios => Value::Array(
            (0..n)
                .map(|i| {
                    mio(
                        i as i32,
                        -(i as i32),
                        (i as f64 + 0.5) * 1.001f64.powi((i % 600) as i32 - 300),
                    )
                })
                .collect(),
        ),
    }
}

/// Array of `n` width-pinned elements: every element serializes to
/// exactly the width class requested.
pub fn pinned(kind: Kind, n: usize, class: WidthClass) -> Value {
    match (kind, class) {
        (Kind::Ints, WidthClass::Min) => Value::IntArray(vec![INT_MIN_W; n]),
        (Kind::Ints, WidthClass::Mid) => Value::IntArray(vec![INT_MID_W; n]),
        (Kind::Ints, WidthClass::Max) => Value::IntArray(vec![INT_MAX_W; n]),
        (Kind::Doubles, WidthClass::Min) => Value::DoubleArray(vec![DOUBLE_MIN_W; n]),
        (Kind::Doubles, WidthClass::Mid) => Value::DoubleArray(vec![DOUBLE_MID_W; n]),
        (Kind::Doubles, WidthClass::Max) => Value::DoubleArray(vec![DOUBLE_MAX_W; n]),
        (Kind::Mios, WidthClass::Min) => Value::Array((0..n).map(|_| mio_min_w()).collect()),
        (Kind::Mios, WidthClass::Mid) => Value::Array((0..n).map(|_| mio_mid_w()).collect()),
        (Kind::Mios, WidthClass::Max) => Value::Array((0..n).map(|_| mio_max_w()).collect()),
    }
}

/// Width class of pinned workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WidthClass {
    /// Smallest serialized form (1-char double / 3-char MIO).
    Min,
    /// Intermediate (18-char double / 36-char MIO).
    Mid,
    /// Largest possible (24-char double / 46-char MIO).
    Max,
}

/// Replace the first `percent`% of elements of a pinned array with the
/// `to` class (used by the partial-shifting figures).
pub fn grow_fraction(kind: Kind, base: &Value, percent: usize, to: WidthClass) -> Value {
    let n = base.array_len().expect("array workload");
    let k = n * percent / 100;
    match (kind, base) {
        (Kind::Doubles, Value::DoubleArray(v)) => {
            let mut v = v.clone();
            let target = match to {
                WidthClass::Min => DOUBLE_MIN_W,
                WidthClass::Mid => DOUBLE_MID_W,
                WidthClass::Max => DOUBLE_MAX_W,
            };
            for x in v.iter_mut().take(k) {
                *x = target;
            }
            Value::DoubleArray(v)
        }
        (Kind::Mios, Value::Array(elems)) => {
            let mut elems = elems.clone();
            let target = match to {
                WidthClass::Min => mio_min_w(),
                WidthClass::Mid => mio_mid_w(),
                WidthClass::Max => mio_max_w(),
            };
            for e in elems.iter_mut().take(k) {
                *e = target.clone();
            }
            Value::Array(elems)
        }
        (Kind::Ints, Value::IntArray(v)) => {
            let mut v = v.clone();
            let target = match to {
                WidthClass::Min => INT_MIN_W,
                WidthClass::Mid => INT_MID_W,
                WidthClass::Max => INT_MAX_W,
            };
            for x in v.iter_mut().take(k) {
                *x = target;
            }
            Value::IntArray(v)
        }
        _ => panic!("kind/value mismatch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::{format_f64, format_i32};

    #[test]
    fn pinned_double_widths() {
        assert_eq!(format_f64(DOUBLE_MIN_W).len(), 1);
        assert_eq!(format_f64(DOUBLE_MID_W).len(), 18);
        assert_eq!(format_f64(DOUBLE_MAX_W).len(), 24);
    }

    #[test]
    fn pinned_int_widths() {
        assert_eq!(format_i32(INT_MIN_W).len(), 1);
        assert_eq!(format_i32(INT_MID_W).len(), 9);
        assert_eq!(format_i32(INT_MAX_W).len(), 11);
    }

    #[test]
    fn mio_total_widths() {
        // 3, 36 and 46 chars — the exact numbers in Figures 6, 8, 10.
        let total = |v: &Value| -> usize {
            let Value::Struct(fields) = v else { panic!() };
            fields
                .iter()
                .map(|f| match f {
                    Value::Int(x) => format_i32(*x).len(),
                    Value::Double(x) => format_f64(*x).len(),
                    _ => panic!(),
                })
                .sum()
        };
        assert_eq!(total(&mio_min_w()), 3);
        assert_eq!(total(&mio_mid_w()), 36);
        assert_eq!(total(&mio_max_w()), 46);
    }

    #[test]
    fn values_generate_requested_sizes() {
        for kind in [Kind::Ints, Kind::Doubles, Kind::Mios] {
            for n in [0usize, 1, 7, 100] {
                assert_eq!(values(kind, n).array_len(), Some(n), "{kind:?} {n}");
            }
        }
    }

    #[test]
    fn values_are_finite_and_varied() {
        let Value::DoubleArray(v) = values(Kind::Doubles, 1000) else {
            panic!()
        };
        assert!(v.iter().all(|x| x.is_finite()));
        let lens: std::collections::HashSet<usize> =
            v.iter().map(|x| format_f64(*x).len()).collect();
        assert!(
            lens.len() > 3,
            "workload should span several serialized widths"
        );
    }

    #[test]
    fn grow_fraction_touches_prefix_only() {
        let base = pinned(Kind::Doubles, 100, WidthClass::Mid);
        let grown = grow_fraction(Kind::Doubles, &base, 25, WidthClass::Max);
        let Value::DoubleArray(v) = grown else {
            panic!()
        };
        assert!(v[..25].iter().all(|&x| x == DOUBLE_MAX_W));
        assert!(v[25..].iter().all(|&x| x == DOUBLE_MID_W));
    }

    #[test]
    fn ops_have_single_array_param() {
        for kind in [Kind::Ints, Kind::Doubles, Kind::Mios] {
            let op = kind.op();
            assert_eq!(op.params.len(), 1);
            assert!(matches!(op.params[0].desc, TypeDesc::Array { .. }));
        }
    }
}
