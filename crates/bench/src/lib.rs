//! # bsoap-bench — the paper's evaluation, regenerated
//!
//! One scenario per figure of *Differential Serialization for Optimized
//! SOAP Performance* (HPDC 2004, §4), plus the §2 conversion-share
//! ablation:
//!
//! | Figure | Scenario |
//! |--------|----------|
//! | 1–3    | [`scenarios::fig_content_match`] — content matches vs gSOAP-like / XSOAP-like / full serialization |
//! | 4–5    | [`scenarios::fig_psm`] — perfect structural matches at 25/50/75/100% dirty |
//! | 6–7    | [`scenarios::fig_shift_worst`] — worst-case shifting, 8K vs 32K chunks |
//! | 8–9    | [`scenarios::fig_shift_partial`] — partial shifting from intermediate widths |
//! | 10–11  | [`scenarios::fig_stuffing`] — field-width stuffing and closing-tag shifts |
//! | 12     | [`scenarios::fig_overlay`] — chunk overlaying vs full re-serialization |
//! | §2     | [`scenarios::fig_ablation`] — conversion share of Send Time |
//!
//! Two front-ends share these scenarios:
//!
//! * `cargo run --release -p bsoap-bench --bin figures -- --all` prints
//!   every table (mean Send Time in ms, the paper's unit) in seconds;
//! * `cargo bench -p bsoap-bench` runs the Criterion versions with proper
//!   statistics.
//!
//! Beyond the paper's single-client figures, [`throughput`] measures the
//! concurrent system — N pooled keep-alive clients vs connection-per-call
//! against the bounded-worker-pool server — via
//! `cargo run --release -p bsoap-bench --bin throughput`.
//!
//! Send Time follows the paper's definition: the clock starts before
//! message preparation and stops after the last write to the transport —
//! here a deterministic in-memory `SinkTransport`
//! (`bsoap_transport::SinkTransport`) that touches every byte, standing
//! in for the kernel's socket-buffer copy.

pub mod ablations;
pub mod plot;
pub mod scenarios;
pub mod throughput;
pub mod timing;
pub mod workload;

pub use scenarios::Table;
pub use timing::{measure, measure_batched, Timing};
pub use workload::{Kind, WidthClass, PAPER_SIZES, QUICK_SIZES};
