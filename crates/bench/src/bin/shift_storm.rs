//! Shift storm: every field grows past its exact width in one update —
//! the adversarial workload for the shifting machinery. Compares the
//! legacy one-memmove-per-shift flush against the planned coalesced
//! single-pass executor, and exercises the §5 cost-gate fallback on the
//! same workload.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin shift_storm \
//!     [-- --elems N --reps R --kernel scalar|simd|both --out FILE]
//! ```
//!
//! `--kernel` (default `both`) controls the byte-kernel rows: `simd` and
//! `both` add a `planned_simd` leg — the coalesced executor under
//! `KernelPolicy::ForcedSimd` — next to the scalar `legacy`/`planned`
//! rows, byte-identity-checked against both; `scalar` suppresses it (the
//! scalar-only CI leg).
//!
//! Asserts (exit 1 on failure):
//!
//! * legacy and planned flushes produce identical bytes;
//! * the coalesced executor moves strictly fewer stored bytes (obs
//!   `ShiftedBytes`) than the legacy per-shift flush, in at least one
//!   coalesced pass;
//! * the coalesced flush is not slower (fastest observation compared,
//!   so background load cannot flip the verdict);
//! * with `cost_fallback` on, the modeled cost of the adversarial send
//!   stays within 1.2× a FirstTime rebuild — the counter-driven
//!   virtual-clock model the Figure 5 scenario tests use, so the bound
//!   is deterministic on any machine.
//!
//! Writes `BENCH_shiftstorm.json` with counters and wall-clock means.

use std::sync::Arc;

use bsoap_bench::workload::Kind;
use bsoap_bench::{measure_batched, Timing};
use bsoap_chunks::ChunkConfig;
use bsoap_core::{
    Client, EngineConfig, FlushMode, KernelPolicy, MessageTemplate, SendTier, Value, WidthPolicy,
};
use bsoap_obs::{Counter, EngineStats, Metrics};
use bsoap_transport::SinkTransport;

// Virtual-clock cost model (same currency as the scenario tests).
const C_CONV: u64 = 60; // convert one value to text
const C_BUILD: u64 = 2; // serialize one byte while building
const C_SHIFT: u64 = 4; // move one stored byte while shifting
const C_WIRE: u64 = 1; // hand one byte to the transport

/// Short initial values: 3 chars each under exact widths.
fn initial(n: usize) -> Value {
    Value::DoubleArray((0..n).map(|i| (i % 10) as f64 + 0.5).collect())
}

/// Storm values: every element becomes a ~17-significant-digit float, so
/// every field grows past its width and must shift.
fn storm(n: usize) -> Value {
    Value::DoubleArray((0..n).map(|i| (i as f64 + 0.1) / 3.0).collect())
}

fn config(mode: FlushMode, kernel: KernelPolicy) -> EngineConfig {
    // 32 KiB chunks: each legacy shift re-moves a long tail, so the
    // coalescing advantage dominates per-value conversion noise.
    EngineConfig::paper_default()
        .with_chunk(ChunkConfig::k32())
        .with_width(WidthPolicy::Exact)
        .with_flush_mode(mode)
        .with_kernel(kernel)
}

struct Leg {
    mean_ms: f64,
    min_ms: f64,
    shifted_bytes: u64,
    shifts: u64,
    splits: u64,
    coalesced_passes: u64,
    values_written: u64,
    bytes: Vec<u8>,
}

/// One instrumented run for the counters and the byte-identity check
/// (wall-clock fields are filled in by the interleaved timing loop).
fn run_counters(mode: FlushMode, kernel: KernelPolicy, n: usize) -> Leg {
    let op = Kind::Doubles.op();
    let metrics = Arc::new(Metrics::new());
    let mut tpl = MessageTemplate::build(config(mode, kernel), &op, &[initial(n)]).unwrap();
    tpl.set_metrics(Arc::clone(&metrics));
    tpl.update_args(&[storm(n)]).unwrap();
    tpl.flush();
    let snap = metrics.snapshot();
    Leg {
        mean_ms: f64::INFINITY,
        min_ms: f64::INFINITY,
        shifted_bytes: snap.get(Counter::ShiftedBytes),
        shifts: snap.get(Counter::Shifts),
        splits: snap.get(Counter::Splits),
        coalesced_passes: snap.get(Counter::CoalescedShiftPasses),
        values_written: snap.get(Counter::ValuesWritten),
        bytes: tpl.to_bytes(),
    }
}

/// Time the storm flush: each rep gets a fresh template (built + dirtied
/// untimed; only the flush is timed).
fn time_leg(mode: FlushMode, kernel: KernelPolicy, n: usize, reps: usize) -> Timing {
    let op = Kind::Doubles.op();
    let config = config(mode, kernel);
    measure_batched(
        1,
        reps,
        || {
            let mut tpl = MessageTemplate::build(config, &op, &[initial(n)]).unwrap();
            tpl.update_args(&[storm(n)]).unwrap();
            tpl
        },
        |mut tpl| {
            tpl.flush();
            std::hint::black_box(tpl.message_len());
        },
    )
}

/// Modeled nanoseconds for the work a send performed, from counter deltas.
fn modeled_cost(before: &EngineStats, after: &EngineStats, built_bytes: u64) -> u64 {
    let delta = |c: Counter| after.get(c) - before.get(c);
    delta(Counter::ValuesWritten) * C_CONV
        + built_bytes * C_BUILD
        + delta(Counter::ShiftedBytes) * C_SHIFT
        + delta(Counter::BytesSent) * C_WIRE
}

struct Fallback {
    fell_back: bool,
    modeled_ratio: f64,
    adversarial_ms: f64,
    first_time_ms: f64,
}

fn run_fallback(n: usize, reps: usize) -> Fallback {
    let op = Kind::Doubles.op();
    // The storm's plan prices at ~1.0× a rebuild (coalescing makes even
    // the worst case cheap to *execute*, but it still reconverts every
    // value); a 0.75 break-even ratio puts this workload firmly on the
    // rebuild side of the gate, which is the behavior this leg verifies.
    let cfg = config(FlushMode::Planned, KernelPolicy::Auto)
        .with_cost_fallback(true)
        .with_fallback_ratio(0.75);

    // Adversarial send through the gate.
    let metrics = Arc::new(Metrics::new());
    let mut client = Client::new(cfg);
    client.set_metrics(Arc::clone(&metrics));
    let mut sink = SinkTransport::new();
    client.call("ep", &op, &[initial(n)], &mut sink).unwrap();
    let before = metrics.snapshot();
    let r = client.call("ep", &op, &[storm(n)], &mut sink).unwrap();
    let after = metrics.snapshot();
    let built = if r.tier == SendTier::FirstTime {
        r.bytes as u64
    } else {
        0
    };
    let adversarial = modeled_cost(&before, &after, built);

    // FirstTime baseline: serialize the storm arguments from scratch.
    let metrics = Arc::new(Metrics::new());
    let mut fresh = Client::new(cfg);
    fresh.set_metrics(Arc::clone(&metrics));
    let before = metrics.snapshot();
    let rf = fresh.call("ep", &op, &[storm(n)], &mut sink).unwrap();
    let after = metrics.snapshot();
    let first_time = modeled_cost(&before, &after, rf.bytes as u64);

    // Wall-clock companions (recorded, not asserted — the modeled ratio
    // is the deterministic bound).
    let adversarial_t = measure_batched(
        1,
        reps,
        || {
            let mut client = Client::new(cfg);
            let mut sink = SinkTransport::new();
            client.call("ep", &op, &[initial(n)], &mut sink).unwrap();
            (client, sink)
        },
        |(mut client, mut sink)| {
            client.call("ep", &op, &[storm(n)], &mut sink).unwrap();
        },
    );
    let first_time_t = measure_batched(
        1,
        reps,
        || (Client::new(cfg), SinkTransport::new()),
        |(mut client, mut sink)| {
            client.call("ep", &op, &[storm(n)], &mut sink).unwrap();
        },
    );

    Fallback {
        fell_back: r.fell_back,
        modeled_ratio: adversarial as f64 / first_time as f64,
        adversarial_ms: adversarial_t.mean_ms(),
        first_time_ms: first_time_t.mean_ms(),
    }
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "{{\"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"shifted_bytes\": {}, \
         \"shifts\": {}, \"splits\": {}, \"coalesced_passes\": {}, \
         \"values_written\": {}}}",
        leg.mean_ms,
        leg.min_ms,
        leg.shifted_bytes,
        leg.shifts,
        leg.splits,
        leg.coalesced_passes,
        leg.values_written,
    )
}

fn main() {
    let mut elems = 2000usize;
    let mut reps = 30usize;
    let mut kernel = "both".to_owned();
    let mut out = "BENCH_shiftstorm.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--elems" => elems = next("--elems").parse().expect("bad --elems"),
            "--reps" => reps = next("--reps").parse().expect("bad --reps"),
            "--kernel" => kernel = next("--kernel"),
            "--out" => out = next("--out"),
            "--help" | "-h" => {
                println!(
                    "usage: shift_storm [--elems N] [--reps R] \
                     [--kernel scalar|simd|both] [--out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let with_simd_leg = match kernel.as_str() {
        "scalar" => false,
        "simd" | "both" => true,
        other => {
            eprintln!("bad --kernel {other} (want scalar|simd|both)");
            std::process::exit(2);
        }
    };

    let mut legacy = run_counters(FlushMode::Legacy, KernelPolicy::Scalar, elems);
    let mut planned = run_counters(FlushMode::Planned, KernelPolicy::Scalar, elems);
    let mut planned_simd =
        with_simd_leg.then(|| run_counters(FlushMode::Planned, KernelPolicy::ForcedSimd, elems));

    // Interleave the legs across several rounds and keep each leg's best
    // round: background load hits all alike, so the comparison is between
    // the code paths rather than the scheduler's mood.
    const ROUNDS: usize = 5;
    let reps_per_round = reps.div_ceil(ROUNDS).max(2);
    for _ in 0..ROUNDS {
        let mut legs = vec![
            (&mut legacy, FlushMode::Legacy, KernelPolicy::Scalar),
            (&mut planned, FlushMode::Planned, KernelPolicy::Scalar),
        ];
        if let Some(leg) = planned_simd.as_mut() {
            legs.push((leg, FlushMode::Planned, KernelPolicy::ForcedSimd));
        }
        for (leg, mode, k) in legs {
            let t = time_leg(mode, k, elems, reps_per_round);
            leg.mean_ms = leg.mean_ms.min(t.mean_ms());
            leg.min_ms = leg.min_ms.min(t.min.as_secs_f64() * 1e3);
        }
    }
    let fallback = run_fallback(elems, reps.min(10));

    println!("shift storm: {elems} doubles, every field grows past its exact width");
    println!(
        "  legacy : {:>8.4} ms/flush (min {:>8.4})  shifted {:>10} B  shifts {:>5}  splits {}",
        legacy.mean_ms, legacy.min_ms, legacy.shifted_bytes, legacy.shifts, legacy.splits,
    );
    println!(
        "  planned: {:>8.4} ms/flush (min {:>8.4})  shifted {:>10} B  shifts {:>5}  splits {}  passes {}",
        planned.mean_ms,
        planned.min_ms,
        planned.shifted_bytes,
        planned.shifts,
        planned.splits,
        planned.coalesced_passes,
    );
    if let Some(simd) = &planned_simd {
        println!(
            "  planned+simd: {:>8.4} ms/flush (min {:>8.4})  shifted {:>10} B  passes {}",
            simd.mean_ms, simd.min_ms, simd.shifted_bytes, simd.coalesced_passes,
        );
    }
    println!(
        "  fallback: fell_back={} modeled {:.3}x first-time (wall {:.4} ms vs {:.4} ms)",
        fallback.fell_back, fallback.modeled_ratio, fallback.adversarial_ms, fallback.first_time_ms,
    );

    let bytes_equal = legacy.bytes == planned.bytes
        && planned_simd
            .as_ref()
            .is_none_or(|s| s.bytes == planned.bytes);
    let simd_row = match &planned_simd {
        Some(s) => leg_json(s),
        None => "null".to_owned(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"shift_storm\",\n  \"elems\": {elems},\n  \"reps\": {reps},\n  \
         \"kernel\": \"{kernel}\",\n  \
         \"legacy\": {},\n  \"planned\": {},\n  \"planned_simd\": {simd_row},\n  \
         \"bytes_equal\": {bytes_equal},\n  \
         \"shifted_bytes_ratio\": {:.4},\n  \"fallback\": {{\"fell_back\": {}, \
         \"modeled_ratio_vs_first_time\": {:.4}, \"adversarial_mean_ms\": {:.4}, \
         \"first_time_mean_ms\": {:.4}}}\n}}\n",
        leg_json(&legacy),
        leg_json(&planned),
        planned.shifted_bytes as f64 / legacy.shifted_bytes as f64,
        fallback.fell_back,
        fallback.modeled_ratio,
        fallback.adversarial_ms,
        fallback.first_time_ms,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(bytes_equal, "flush bytes diverged across legs");
    if let Some(simd) = &planned_simd {
        check(
            simd.shifted_bytes == planned.shifted_bytes
                && simd.coalesced_passes == planned.coalesced_passes
                && simd.shifts == planned.shifts,
            "simd leg counters diverged from scalar planned leg",
        );
    }
    check(
        planned.shifted_bytes < legacy.shifted_bytes,
        "coalesced executor did not move strictly fewer bytes",
    );
    check(
        planned.coalesced_passes > 0,
        "planned flush took no coalesced pass",
    );
    check(
        legacy.shifts > 0,
        "workload produced no shifts (not a storm)",
    );
    check(
        planned.min_ms <= legacy.min_ms,
        "coalesced flush slower than legacy on fastest observation",
    );
    check(
        fallback.fell_back,
        "cost gate admitted the storm despite the strict break-even ratio",
    );
    check(
        fallback.modeled_ratio <= 1.2,
        "cost-gated adversarial send exceeded 1.2x FirstTime (modeled)",
    );
    if failed {
        std::process::exit(1);
    }
    println!("all shift-storm assertions passed");
}
