//! Instrumentation overhead on the fig-21 workload (100%-dirty flush of
//! 10k doubles, fast conversion kernel — the most overhead-sensitive
//! send path the bench suite has).
//!
//! Measures mean Send Time for the same perfect-structural workload
//! (touch every value, resend) under three observability states:
//!
//! * `none`     — no registry attached (the disabled path is one branch);
//! * `disabled` — registry attached but switched off (`set_enabled(false)`,
//!   every record call is a single relaxed load);
//! * `enabled`  — registry attached and recording.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin obs_overhead [-- --reps N]
//! ```
//!
//! Prints one line per state plus the relative overhead vs `none`. The
//! EXPERIMENTS.md observability note records these numbers.

use std::sync::Arc;

use bsoap_bench::scenarios::touch_percent;
use bsoap_bench::workload::{values, Kind};
use bsoap_bench::{measure, Timing};
use bsoap_core::{EngineConfig, FloatFormatter, MessageTemplate};
use bsoap_obs::Metrics;
use bsoap_transport::SinkTransport;

const N: usize = 10_000;
const WARMUP: usize = 10;

fn run_variant(reps: usize, metrics: Option<Arc<Metrics>>) -> Timing {
    let op = Kind::Doubles.op();
    let args = vec![values(Kind::Doubles, N)];
    let config = EngineConfig::paper_default().with_float(FloatFormatter::Fast);
    let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
    if let Some(m) = metrics {
        tpl.set_metrics(m);
    }
    let mut sink = SinkTransport::new();
    measure(WARMUP, reps, || {
        touch_percent(&mut tpl, Kind::Doubles, 100);
        tpl.send(&mut sink).unwrap();
    })
}

fn main() {
    let mut reps = 300usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --reps");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: obs_overhead [--reps N]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let disabled = Metrics::shared();
    disabled.set_enabled(false);
    let variants: [(&str, Option<Arc<Metrics>>); 3] = [
        ("none", None),
        ("disabled", Some(disabled)),
        ("enabled", Some(Metrics::shared())),
    ];

    // Interleave the states across several rounds and keep each state's
    // best round: background load hits all states alike, so the minima
    // compare the code paths rather than the scheduler's mood.
    const ROUNDS: usize = 7;
    let reps_per_round = reps.div_ceil(ROUNDS);
    let mut best = [f64::INFINITY; 3];
    for _ in 0..ROUNDS {
        for (i, (_, metrics)) in variants.iter().enumerate() {
            let t = run_variant(reps_per_round, metrics.clone());
            best[i] = best[i].min(t.mean_ms());
        }
    }

    println!(
        "fig-21 workload, {N} doubles, 100% dirty resend (fast kernel), best of {ROUNDS} interleaved rounds x {reps_per_round} reps"
    );
    let base = best[0];
    for (i, (name, _)) in variants.iter().enumerate() {
        println!(
            "{name:>9}: {:>8.4} ms/send  ({:+.2}% vs none)",
            best[i],
            100.0 * (best[i] - base) / base
        );
    }
}
