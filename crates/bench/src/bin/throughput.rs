//! Concurrent throughput benchmark front-end.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin throughput
//! cargo run --release -p bsoap-bench --bin throughput -- --smoke
//! cargo run --release -p bsoap-bench --bin throughput -- \
//!     --clients 8 --requests 500 --pool 8 --workers 8 \
//!     --dirty 0,25,100 --elems 1000 --out BENCH_throughput.json
//! ```
//!
//! Writes the JSON report to `BENCH_throughput.json` in the current
//! directory unless `--out` overrides it, and prints a summary table.

use bsoap_bench::throughput::{run, ThroughputConfig};

struct Opts {
    cfg: ThroughputConfig,
    out: String,
    prom: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut cfg = ThroughputConfig::default();
    let mut out = "BENCH_throughput.json".to_owned();
    let mut prom = "BENCH_metrics.prom".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--smoke" => {
                let smoke = ThroughputConfig::smoke();
                cfg.clients = smoke.clients;
                cfg.requests_per_client = smoke.requests_per_client;
                cfg.dirty_percents = smoke.dirty_percents;
                cfg.sweep = smoke.sweep;
            }
            "--clients" => cfg.clients = take("--clients")?.parse().map_err(|_| "bad --clients")?,
            "--requests" => {
                cfg.requests_per_client =
                    take("--requests")?.parse().map_err(|_| "bad --requests")?
            }
            "--elems" => cfg.elems = take("--elems")?.parse().map_err(|_| "bad --elems")?,
            "--pool" => cfg.pool_size = take("--pool")?.parse().map_err(|_| "bad --pool")?,
            "--workers" => cfg.workers = take("--workers")?.parse().map_err(|_| "bad --workers")?,
            "--dirty" => {
                cfg.dirty_percents = take("--dirty")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad dirty level {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--sweep" => {
                cfg.sweep.event_loop_points = take("--sweep")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad sweep point {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--loop-threads" => {
                cfg.sweep.event_loop_threads = take("--loop-threads")?
                    .parse()
                    .map_err(|_| "bad --loop-threads")?
            }
            "--out" => out = take("--out")?,
            "--prom" => prom = take("--prom")?,
            "--help" | "-h" => {
                println!(
                    "usage: throughput [--smoke] [--clients N] [--requests N] \
                     [--elems N] [--pool N] [--workers N] [--dirty a,b,c] \
                     [--sweep a,b,c] [--loop-threads N] [--out FILE] [--prom FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if cfg.clients == 0 || cfg.requests_per_client == 0 || cfg.dirty_percents.is_empty() {
        return Err("clients, requests and dirty levels must be nonzero".into());
    }
    Ok(Opts { cfg, out, prom })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "{} clients x {} requests, {} doubles/message, pool {}, {} server workers, dirty {:?}",
        opts.cfg.clients,
        opts.cfg.requests_per_client,
        opts.cfg.elems,
        opts.cfg.pool_size,
        opts.cfg.workers,
        opts.cfg.dirty_percents,
    );
    let report = match run(&opts.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<9} {:>6} {:>9} {:>10} {:>9} {:>9} {:>6} {:>5}",
        "mode", "dirty%", "req/s", "p50 us", "p99 us", "wire MB", "conns", "queue"
    );
    for r in &report.results {
        println!(
            "{:<9} {:>6} {:>9.0} {:>10.0} {:>9.0} {:>9.2} {:>6} {:>5}",
            r.mode,
            r.dirty_pct,
            r.rps,
            r.p50_us,
            r.p99_us,
            r.wire_bytes as f64 / 1e6,
            r.connections,
            r.peak_queue_depth,
        );
        for (i, tier) in bsoap_obs::Tier::ALL.iter().enumerate() {
            if r.tier_requests[i] == 0 {
                continue;
            }
            let share = r.tier_requests[i] as f64 / r.requests.max(1) as f64;
            println!(
                "  tier {:<19} {:>6} reqs ({:>5.1}%)  {:>8.0} req/s  p50 {:>7.1} us  p99 {:>7.1} us",
                tier.label(),
                r.tier_requests[i],
                100.0 * share,
                r.rps * share,
                r.tier_p50_us[i],
                r.tier_p99_us[i],
            );
        }
    }
    for &d in &report.config.dirty_percents {
        if let Some(x) = report.speedup(d) {
            println!("speedup at {d}% dirty: {x:.2}x pooled over per-call");
        }
    }
    println!(
        "{:<12} {:>11} {:>11} {:>8} {:>10}",
        "sweep core", "connections", "responsive", "threads", "settle s"
    );
    for p in &report.sweep {
        println!(
            "{:<12} {:>11} {:>11} {:>8} {:>10.3}",
            p.core, p.connections, p.responsive, p.threads, p.elapsed_s
        );
    }
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("could not write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
    if let Some(last) = report.results.last() {
        if let Err(e) = std::fs::write(&opts.prom, &last.metrics_prom) {
            eprintln!("could not write {}: {e}", opts.prom);
            std::process::exit(1);
        }
        eprintln!("wrote {} (last scenario's /metrics scrape)", opts.prom);
    }
}
