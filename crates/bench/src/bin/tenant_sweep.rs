//! Multi-tenant template-store sweep: resident bytes and tail latency
//! as the tenant population grows 1 → 1,000,000 under one fixed byte
//! budget.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin tenant_sweep \
//!     [-- --tenants 1,100,10000 --budget-bytes B --quota-bytes Q \
//!          --p99-ratio R --smoke --out FILE]
//! ```
//!
//! Every sweep point drives one differential client in
//! `StoreMode::Shared` against one [`TemplateStore`], cycling the tenant
//! id across the population so each tenant owns its own template key.
//! Without the store's budget the resident template bytes would grow
//! linearly with the tenant count; with it, the cost-aware eviction
//! (cheapest `rebuild_estimate` first) must hold the line.
//!
//! Asserts (exit 1 on failure):
//!
//! * **bounded residency** — at every sweep point the store's resident
//!   bytes stay ≤ the budget, and a from-scratch recount agrees with the
//!   gauge (no accounting drift under churn);
//! * **stable tail** — warm per-call p99 latency across the whole sweep
//!   stays within a generous ratio (default 50×) of the best point:
//!   eviction churn at 1M tenants must not collapse into pathological
//!   tail behaviour;
//! * **reconciliation** — `TemplateHits + TemplateMisses` equals the
//!   number of tiered calls issued, exactly.
//!
//! Writes `BENCH_tenants.json`.

use bsoap_convert::ScalarKind;
use bsoap_core::{Client, EngineConfig, OpDesc, StoreMode, TemplateStore, TypeDesc, Value};
use bsoap_obs::{Counter, EngineStats, Level, Metrics};
use std::sync::Arc;
use std::time::Instant;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:tenants",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

struct Row {
    tenants: u64,
    calls: u64,
    resident_bytes: u64,
    recount_bytes: u64,
    resident_templates: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// One sweep point: `calls` tiered sends spread round-robin over
/// `tenants` tenants, all against `store`.
fn run_point(tenants: u64, calls: u64, budget: usize, quota: usize) -> Row {
    let op = doubles_op();
    let store = TemplateStore::shared(budget, quota);
    let metrics = Metrics::shared();
    store.set_metrics(Arc::clone(&metrics));

    let mut client = Client::new(EngineConfig::paper_default().with_store_mode(StoreMode::Shared));
    client.set_template_store(Arc::clone(&store));

    let mut xs = vec![0.5f64; 16];
    let mut sink = std::io::sink();
    let mut lat_ns: Vec<u64> = Vec::with_capacity(calls as usize);
    for i in 0..calls {
        client.set_tenant(i % tenants);
        // Perturb one value so warm calls exercise the diff path, not
        // just verbatim resends.
        xs[(i % 16) as usize] = i as f64 * 0.618 + 0.125;
        let args = [Value::DoubleArray(xs.clone())];
        let t0 = Instant::now();
        client
            .call("http://svc/sweep", &op, &args, &mut sink)
            .unwrap();
        lat_ns.push(t0.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();

    let s = EngineStats::snapshot(&metrics);
    Row {
        tenants,
        calls,
        resident_bytes: s.level(Level::TemplateBytesResident),
        recount_bytes: store.recount_bytes(),
        resident_templates: store.template_count(),
        hits: s.get(Counter::TemplateHits),
        misses: s.get(Counter::TemplateMisses),
        evictions: s.get(Counter::TemplateEvictions),
        mean_us: lat_ns.iter().sum::<u64>() as f64 / lat_ns.len().max(1) as f64 / 1e3,
        p50_us: percentile(&lat_ns, 0.50),
        p99_us: percentile(&lat_ns, 0.99),
    }
}

fn main() {
    let mut tenants: Vec<u64> = vec![1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];
    let mut budget = 8 * 1024 * 1024usize;
    let mut quota = 0usize;
    let mut p99_ratio_bound = 50.0f64;
    let mut max_calls = 1_500_000u64;
    let mut out = "BENCH_tenants.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tenants" => {
                tenants = next("--tenants")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --tenants entry"))
                    .collect();
            }
            "--budget-bytes" => budget = next("--budget-bytes").parse().expect("bad value"),
            "--quota-bytes" => quota = next("--quota-bytes").parse().expect("bad value"),
            "--p99-ratio" => p99_ratio_bound = next("--p99-ratio").parse().expect("bad value"),
            "--max-calls" => max_calls = next("--max-calls").parse().expect("bad value"),
            "--smoke" => {
                tenants = vec![1, 100, 10_000];
                max_calls = 50_000;
            }
            "--out" => out = next("--out"),
            "--help" | "-h" => {
                println!(
                    "usage: tenant_sweep [--tenants a,b,c] [--budget-bytes B] \
                     [--quota-bytes Q] [--p99-ratio R] [--max-calls N] [--smoke] [--out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    tenants.sort_unstable();

    let mut rows = Vec::new();
    for &t in &tenants {
        // Each tenant is visited at least twice so every point measures
        // warm reuse (or eviction-forced rebuilds) rather than only
        // first-time sends.
        let calls = (2 * t).clamp(4_096, max_calls);
        let row = run_point(t, calls, budget, quota);
        println!(
            "tenants={:>8}  calls={:>8}  resident {:>9} B ({} templates)  \
             hits {:>8}  misses {:>8}  evictions {:>8}  p50 {:>7.1} us  p99 {:>7.1} us",
            row.tenants,
            row.calls,
            row.resident_bytes,
            row.resident_templates,
            row.hits,
            row.misses,
            row.evictions,
            row.p50_us,
            row.p99_us,
        );
        rows.push(row);
    }

    // Gates.
    let resident_ok = rows
        .iter()
        .all(|r| r.resident_bytes <= budget as u64 && r.resident_bytes == r.recount_bytes);
    let reconcile_ok = rows.iter().all(|r| r.hits + r.misses == r.calls);
    let p99_min = rows.iter().map(|r| r.p99_us).fold(f64::INFINITY, f64::min);
    let p99_max = rows.iter().map(|r| r.p99_us).fold(0.0f64, f64::max);
    let p99_ratio = p99_max / p99_min.max(1e-9);
    let p99_ok = p99_ratio <= p99_ratio_bound;

    println!(
        "residency: every point <= {budget} B with exact recount -> {}",
        if resident_ok { "ok" } else { "FAIL" },
    );
    println!(
        "tail: p99 {p99_min:.1} us .. {p99_max:.1} us over a {}x tenant sweep \
         (ratio {p99_ratio:.2}, bound {p99_ratio_bound}) -> {}",
        tenants.last().unwrap() / tenants.first().unwrap().max(&1),
        if p99_ok { "ok" } else { "FAIL" },
    );

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"tenants\": {}, \"calls\": {}, \"resident_bytes\": {}, \
                 \"resident_templates\": {}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"mean_us\": {:.2}, \"p50_us\": {:.2}, \
                 \"p99_us\": {:.2}}}",
                r.tenants,
                r.calls,
                r.resident_bytes,
                r.resident_templates,
                r.hits,
                r.misses,
                r.evictions,
                r.mean_us,
                r.p50_us,
                r.p99_us,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"tenant_sweep\",\n  \"budget_bytes\": {budget},\n  \
         \"tenant_quota_bytes\": {quota},\n  \"rows\": [\n{}\n  ],\n  \
         \"residency_pass\": {resident_ok},\n  \
         \"reconciliation_pass\": {reconcile_ok},\n  \
         \"p99\": {{\"min_us\": {p99_min:.2}, \"max_us\": {p99_max:.2}, \
         \"ratio\": {p99_ratio:.4}, \"bound\": {p99_ratio_bound}, \"pass\": {p99_ok}}}\n}}\n",
        rows_json.join(",\n"),
    );
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");

    if !resident_ok || !reconcile_ok || !p99_ok {
        eprintln!(
            "FAILED gates: residency={resident_ok} reconciliation={reconcile_ok} p99={p99_ok}"
        );
        std::process::exit(1);
    }
}
