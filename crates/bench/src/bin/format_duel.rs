//! Format duel: the negotiated compact-binary lane (DESIGN §3.15)
//! against the SOAP/XML lane on the same differential workloads — the
//! experiment behind the tier-3 collapse claim. Each lane runs the full
//! tier ladder (first-time build, content match, perfect-structural
//! dirty sweeps, a structural resize) at exact widths, the setting where
//! the XML lane must shift on every numeric width change and the binary
//! lane — whose numeric slots are fixed-width — never shifts at all.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin format_duel \
//!     [-- --elems N --reps R --out FILE]
//! ```
//!
//! Asserts (exit 1 on failure):
//!
//! * every binary-lane row performs **zero** shift work: `Shifts`,
//!   `ShiftedBytes`, `CoalescedShiftPasses`, and `Splits` all stay 0,
//!   while the XML dirty rows shift at exact widths — the collapse;
//! * both lanes round-trip: XML wires are pad-equivalent to a gSOAP-style
//!   full serialization, binary wires decode back to the exact argument
//!   bits via `parse_binary_envelope`;
//! * the binary frame is strictly smaller than the XML envelope for the
//!   same send, on every scenario;
//! * every send lands on its own lane's `SendsXml`/`SendsBinary`
//!   counter and never the other lane's.
//!
//! Writes `BENCH_format.json` with per-lane counters, wire sizes, and
//! wall-clock means.

use std::sync::Arc;

use bsoap_baseline::GSoapLike;
use bsoap_bench::measure_batched;
use bsoap_bench::workload::Kind;
use bsoap_chunks::ChunkConfig;
use bsoap_core::{Client, EngineConfig, FlushMode, OpDesc, Value, WidthPolicy, WireFormat};
use bsoap_deser::parse_binary_envelope;
use bsoap_obs::{Counter, Metrics};
use bsoap_xml::strip_pad;

/// Short initial values: 3 chars each under exact widths.
fn initial(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i % 10) as f64 + 0.5).collect()
}

/// Growth values: ~17-significant-digit floats, so every dirtied field
/// outgrows its exact width and the XML lane must shift.
fn grown(i: usize) -> f64 {
    (i as f64 + 0.1) / 3.0
}

#[derive(Clone, Copy)]
enum Scenario {
    /// The first send: template build + full serialization.
    FirstTime,
    /// Resend the identical arguments.
    ContentMatch,
    /// Dirty this fraction of the elements with width-growing values.
    Dirty(f64),
    /// Grow the array by an eighth: a structural resize.
    ResizeGrow,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::FirstTime => "first_time",
            Scenario::ContentMatch => "content_match",
            Scenario::Dirty(f) if f <= 0.011 => "dirty_1pct",
            Scenario::Dirty(f) if f <= 0.11 => "dirty_10pct",
            Scenario::Dirty(f) if f <= 0.51 => "dirty_50pct",
            Scenario::Dirty(_) => "dirty_100pct",
            Scenario::ResizeGrow => "resize_grow",
        }
    }

    /// The arguments of the measured (second) send.
    fn apply(self, init: &[f64]) -> Vec<f64> {
        let mut xs = init.to_vec();
        match self {
            Scenario::FirstTime | Scenario::ContentMatch => {}
            Scenario::Dirty(f) => {
                let k = ((init.len() as f64 * f).ceil() as usize).clamp(1, init.len());
                for (i, x) in xs.iter_mut().take(k).enumerate() {
                    *x = grown(i);
                }
            }
            Scenario::ResizeGrow => {
                let extra = init.len() / 8 + 1;
                xs.extend((0..extra).map(|i| (i % 10) as f64 + 0.5));
            }
        }
        xs
    }
}

const SCENARIOS: [Scenario; 7] = [
    Scenario::FirstTime,
    Scenario::ContentMatch,
    Scenario::Dirty(0.01),
    Scenario::Dirty(0.10),
    Scenario::Dirty(0.50),
    Scenario::Dirty(1.0),
    Scenario::ResizeGrow,
];

fn config(format: WireFormat) -> EngineConfig {
    // Exact widths + planned flush: the XML lane pays the full shifting
    // machinery for width growth, the binary lane has nothing to shift.
    // The explicit format override keeps the duel deterministic even
    // under a CI `BSOAP_WIRE_FORMAT` environment override.
    EngineConfig::paper_default()
        .with_chunk(ChunkConfig::k32())
        .with_width(WidthPolicy::Exact)
        .with_flush_mode(FlushMode::Planned)
        .with_wire_format(format)
}

struct Row {
    mean_ms: f64,
    min_ms: f64,
    wire_bytes: usize,
    values_written: u64,
    shifts: u64,
    shifted_bytes: u64,
    coalesced_passes: u64,
    splits: u64,
    own_lane_sends: u64,
    wrong_lane_sends: u64,
}

fn send(client: &mut Client, op: &OpDesc, xs: &[f64]) -> Vec<u8> {
    let mut wire = Vec::new();
    let args = [Value::DoubleArray(xs.to_vec())];
    client
        .call_via("ep", op, &args, |slices| {
            let mut n = 0;
            for s in slices {
                wire.extend_from_slice(s);
                n += s.len();
            }
            Ok(n)
        })
        .expect("bench send failed");
    wire
}

/// Verify the measured wire round-trips on its lane, and return the
/// XML-envelope size a full serialization of the same arguments costs
/// (the compactness yardstick for both lanes).
fn check_fidelity(format: WireFormat, op: &OpDesc, xs: &[f64], wire: &[u8]) -> usize {
    let args = [Value::DoubleArray(xs.to_vec())];
    let full = GSoapLike::new().serialize(op, &args).unwrap().to_vec();
    match format {
        WireFormat::SoapXml => assert_eq!(
            strip_pad(wire),
            strip_pad(&full),
            "xml wire diverges from full serialization"
        ),
        WireFormat::CompactBinary => {
            let decoded = parse_binary_envelope(wire, op).expect("binary wire must decode");
            let Value::DoubleArray(ds) = &decoded[0] else {
                panic!("decoded param is not a double array");
            };
            let got: Vec<u64> = ds.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "binary wire does not round-trip bit-exactly");
        }
    }
    full.len()
}

/// One instrumented run: counter deltas around the measured send, plus
/// the fidelity check (wall-clock fields filled by the timing rounds).
fn run_counters(format: WireFormat, scen: Scenario, n: usize) -> (Row, usize) {
    let op = Kind::Doubles.op();
    let metrics = Arc::new(Metrics::new());
    let mut client = Client::new(config(format));
    client.set_metrics(Arc::clone(&metrics));
    let init = initial(n);

    let (wire, before) = if matches!(scen, Scenario::FirstTime) {
        let before = metrics.snapshot();
        (send(&mut client, &op, &init), before)
    } else {
        send(&mut client, &op, &init);
        let before = metrics.snapshot();
        (send(&mut client, &op, &scen.apply(&init)), before)
    };
    let after = metrics.snapshot();
    let d = |c: Counter| after.get(c) - before.get(c);

    let xml_len = check_fidelity(format, &op, &scen.apply(&init), &wire);
    let (own, wrong) = match format {
        WireFormat::SoapXml => (Counter::SendsXml, Counter::SendsBinary),
        WireFormat::CompactBinary => (Counter::SendsBinary, Counter::SendsXml),
    };
    let row = Row {
        mean_ms: f64::INFINITY,
        min_ms: f64::INFINITY,
        wire_bytes: wire.len(),
        values_written: d(Counter::ValuesWritten),
        shifts: d(Counter::Shifts),
        shifted_bytes: d(Counter::ShiftedBytes),
        coalesced_passes: d(Counter::CoalescedShiftPasses),
        splits: d(Counter::Splits),
        own_lane_sends: d(own),
        wrong_lane_sends: d(wrong),
    };
    (row, xml_len)
}

/// Time the measured send: each rep gets a fresh client primed with the
/// first-time send untimed (except the FirstTime scenario, which times
/// the build itself).
fn time_row(format: WireFormat, scen: Scenario, n: usize, reps: usize) -> (f64, f64) {
    let op = Kind::Doubles.op();
    let cfg = config(format);
    let init = initial(n);
    let target = [Value::DoubleArray(scen.apply(&init))];
    let discard =
        |slices: &[std::io::IoSlice<'_>]| Ok(slices.iter().map(|s| s.len()).sum::<usize>());
    let t = measure_batched(
        1,
        reps,
        || {
            let mut client = Client::new(cfg);
            if !matches!(scen, Scenario::FirstTime) {
                let args = [Value::DoubleArray(init.clone())];
                client.call_via("ep", &op, &args, discard).unwrap();
            }
            client
        },
        |mut client| {
            client.call_via("ep", &op, &target, discard).unwrap();
            std::hint::black_box(&client);
        },
    );
    (t.mean_ms(), t.min.as_secs_f64() * 1e3)
}

fn row_json(row: &Row) -> String {
    format!(
        "{{\"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"wire_bytes\": {}, \
         \"values_written\": {}, \"shifts\": {}, \"shifted_bytes\": {}, \
         \"coalesced_passes\": {}, \"splits\": {}, \"own_lane_sends\": {}, \
         \"wrong_lane_sends\": {}}}",
        row.mean_ms,
        row.min_ms,
        row.wire_bytes,
        row.values_written,
        row.shifts,
        row.shifted_bytes,
        row.coalesced_passes,
        row.splits,
        row.own_lane_sends,
        row.wrong_lane_sends,
    )
}

fn main() {
    let mut elems = 1000usize;
    let mut reps = 30usize;
    let mut out = "BENCH_format.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--elems" => elems = next("--elems").parse().expect("bad --elems"),
            "--reps" => reps = next("--reps").parse().expect("bad --reps"),
            "--out" => out = next("--out"),
            "--help" | "-h" => {
                println!("usage: format_duel [--elems N] [--reps R] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    const LANES: [(WireFormat, &str); 2] = [
        (WireFormat::SoapXml, "xml"),
        (WireFormat::CompactBinary, "binary"),
    ];

    let mut rows: Vec<Vec<Row>> = LANES
        .iter()
        .map(|(f, _)| {
            SCENARIOS
                .iter()
                .map(|s| run_counters(*f, *s, elems).0)
                .collect()
        })
        .collect();

    // Interleave the lanes and scenarios across rounds and keep each
    // row's best round, so background load cannot favor one lane.
    const ROUNDS: usize = 3;
    let reps_per_round = reps.div_ceil(ROUNDS).max(2);
    for _ in 0..ROUNDS {
        for (li, (format, _)) in LANES.iter().enumerate() {
            for (si, scen) in SCENARIOS.iter().enumerate() {
                let (mean, min) = time_row(*format, *scen, elems, reps_per_round);
                rows[li][si].mean_ms = rows[li][si].mean_ms.min(mean);
                rows[li][si].min_ms = rows[li][si].min_ms.min(min);
            }
        }
    }

    println!("format duel: {elems} doubles at exact widths, per-scenario send");
    let mut failures = Vec::new();
    for (si, scen) in SCENARIOS.iter().enumerate() {
        let xml = &rows[0][si];
        let bin = &rows[1][si];
        println!(
            "  {:>14}: xml {:>8.4} ms {:>8} B shifts {:>5} shifted {:>8} B | \
             bin {:>8.4} ms {:>8} B shifts {:>2}  wire {:.2}x  time {:.2}x",
            scen.name(),
            xml.mean_ms,
            xml.wire_bytes,
            xml.shifts,
            xml.shifted_bytes,
            bin.mean_ms,
            bin.wire_bytes,
            bin.shifts,
            xml.wire_bytes as f64 / bin.wire_bytes as f64,
            xml.mean_ms / bin.mean_ms,
        );

        // The collapse: the binary lane never shifts, anywhere.
        if bin.shifts != 0 || bin.shifted_bytes != 0 || bin.coalesced_passes != 0 || bin.splits != 0
        {
            failures.push(format!("{}: binary lane performed shift work", scen.name()));
        }
        if bin.wire_bytes >= xml.wire_bytes {
            failures.push(format!(
                "{}: binary frame not smaller than XML",
                scen.name()
            ));
        }
        if xml.wrong_lane_sends != 0 || bin.wrong_lane_sends != 0 {
            failures.push(format!(
                "{}: send landed on the wrong lane counter",
                scen.name()
            ));
        }
        if xml.own_lane_sends == 0 || bin.own_lane_sends == 0 {
            failures.push(format!("{}: own-lane counter did not tick", scen.name()));
        }
        // The XML lane must actually pay for width growth at exact
        // widths — otherwise the duel proves nothing.
        if matches!(scen, Scenario::Dirty(_)) && xml.shifts == 0 {
            failures.push(format!(
                "{}: xml lane did not shift on width growth",
                scen.name()
            ));
        }
    }

    let lane_json = |legs: &[Row]| -> String {
        SCENARIOS
            .iter()
            .zip(legs)
            .map(|(s, r)| format!("    \"{}\": {}", s.name(), row_json(r)))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"format_duel\",\n  \"elems\": {elems},\n  \"reps\": {reps},\n  \
         \"xml\": {{\n{}\n  }},\n  \"binary\": {{\n{}\n  }},\n  \
         \"binary_zero_shift_work\": {},\n  \"ok\": {}\n}}\n",
        lane_json(&rows[0]),
        lane_json(&rows[1]),
        rows[1].iter().all(|r| r.shifts == 0
            && r.shifted_bytes == 0
            && r.coalesced_passes == 0
            && r.splits == 0),
        failures.is_empty(),
    );
    std::fs::write(&out, json).expect("write output");
    println!("wrote {out}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
