//! Chunk-overlay streaming vs whole-message serialization: peak engine
//! memory and warm-send throughput across an array-size sweep.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin overlay \
//!     [-- --sizes 10000,100000,1000000 --reps R --window W --smoke --out FILE]
//! ```
//!
//! The overlay leg streams every portion through one reused window
//! fragment (§3.3); the full leg re-serializes into a resident template.
//! Peak bytes are the deterministic engine-held maxima: the overlay
//! window (prologue + fragment) vs the whole template. `VmHWM` from
//! `/proc/self/status` is recorded alongside as the process-level
//! companion where available.
//!
//! Asserts (exit 1 on failure):
//!
//! * **flatness** — overlay peak bytes grow ≤ 1.5× across the whole
//!   sweep while the array grows 100–1000×;
//! * **byte identity** — under `WidthPolicy::Max` the streamed bytes
//!   equal the full serialization exactly, checked incrementally so the
//!   harness itself never buffers the message;
//! * the full leg's peak is message-sized (the contrast being claimed).
//!
//! Writes `BENCH_overlay.json`. The full leg is skipped above
//! `--max-full-elems` (default 2,000,000) so multi-GB sweep points do
//! not build a resident template just to prove it would be huge.

use bsoap_bench::measure_batched;
use bsoap_convert::ScalarKind;
use bsoap_core::overlay::OverlaySender;
use bsoap_core::sendv::write_all_vectored;
use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value};
use std::cell::RefCell;
use std::io::Write;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn config() -> EngineConfig {
    // Stuffed widths: overlay output is byte-identical to the full
    // serialization (the identity gate) and warm resends never shift.
    EngineConfig::stuffed_max()
}

fn vals(n: usize, round: usize) -> Vec<f64> {
    (0..n).map(|i| (i + round) as f64 * 0.618 + 0.125).collect()
}

fn mutate(v: &mut Value, round: usize) {
    let Value::DoubleArray(xs) = v else {
        unreachable!()
    };
    for (i, x) in xs.iter_mut().enumerate() {
        *x = (i + round) as f64 * 0.618 + 0.125;
    }
}

/// Peak resident set (VmHWM) in bytes, if the platform exposes it.
fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Write-side comparator: checks every streamed byte against the
/// expected serialization without ever storing the stream.
struct CompareSink<'a> {
    expect: &'a [u8],
    at: usize,
    mismatch: bool,
}

impl Write for CompareSink<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let end = self.at + buf.len();
        if end > self.expect.len() || &self.expect[self.at..end] != buf {
            self.mismatch = true;
        }
        self.at = end;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Leg {
    peak_bytes: usize,
    mean_ms: f64,
    min_ms: f64,
    mb_per_s: f64,
    bytes: usize,
}

struct Row {
    elems: usize,
    overlay: Leg,
    portions: usize,
    full: Option<Leg>,
    bytes_identical: Option<bool>,
    vm_hwm_bytes: Option<u64>,
}

/// Warm overlaid resends: the window fragment exists after the first
/// send, so every timed send is values-only re-serialization streamed
/// portion by portion.
fn overlay_leg(op: &OpDesc, n: usize, window: usize, reps: usize) -> (Leg, usize) {
    let mut sender = if window == 0 {
        OverlaySender::auto_window(config(), op).unwrap()
    } else {
        OverlaySender::new(config(), op, window).unwrap()
    };
    let value = RefCell::new(Value::DoubleArray(vals(n, 0)));
    let mut sink = std::io::sink();
    let first = sender.send(&value.borrow(), &mut sink).unwrap();
    let mut peak = first.window_bytes;
    let mut portions = first.portions;
    let mut bytes = first.bytes;
    let mut round = 0usize;
    let t = measure_batched(
        1,
        reps,
        || {
            round += 1;
            mutate(&mut value.borrow_mut(), round);
        },
        |()| {
            let r = sender.send(&value.borrow(), &mut sink).unwrap();
            peak = peak.max(r.window_bytes);
            portions = r.portions;
            bytes = r.bytes;
        },
    );
    let secs = t.mean.as_secs_f64();
    (
        Leg {
            peak_bytes: peak,
            mean_ms: t.mean_ms(),
            min_ms: t.min.as_secs_f64() * 1e3,
            mb_per_s: bytes as f64 / 1e6 / secs,
            bytes,
        },
        portions,
    )
}

/// Warm buffered resends: the whole template stays resident; each timed
/// send rewrites every value in place and gather-writes the message.
fn full_leg(op: &OpDesc, n: usize, reps: usize) -> Leg {
    let value = RefCell::new(Value::DoubleArray(vals(n, 0)));
    let mut tpl =
        MessageTemplate::build(config(), op, std::slice::from_ref(&value.borrow())).unwrap();
    let bytes = tpl.message_len();
    let mut sink = std::io::sink();
    let mut round = 0usize;
    let t = measure_batched(
        1,
        reps,
        || {
            round += 1;
            mutate(&mut value.borrow_mut(), round);
        },
        |()| {
            tpl.update_args(std::slice::from_ref(&value.borrow()))
                .unwrap();
            tpl.flush();
            write_all_vectored(&mut sink, &tpl.io_slices()).unwrap();
        },
    );
    let secs = t.mean.as_secs_f64();
    Leg {
        peak_bytes: tpl.message_len(),
        mean_ms: t.mean_ms(),
        min_ms: t.min.as_secs_f64() * 1e3,
        mb_per_s: bytes as f64 / 1e6 / secs,
        bytes,
    }
}

/// Byte-identity: stream through the comparator against a fresh full
/// serialization of the same values.
fn identity_check(op: &OpDesc, n: usize, window: usize) -> bool {
    let value = Value::DoubleArray(vals(n, 7));
    let expect = MessageTemplate::build(config(), op, std::slice::from_ref(&value))
        .unwrap()
        .to_bytes()
        .to_vec();
    let mut sender = if window == 0 {
        OverlaySender::auto_window(config(), op).unwrap()
    } else {
        OverlaySender::new(config(), op, window).unwrap()
    };
    let mut cmp = CompareSink {
        expect: &expect,
        at: 0,
        mismatch: false,
    };
    sender.send(&value, &mut cmp).unwrap();
    !cmp.mismatch && cmp.at == expect.len()
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "{{\"peak_bytes\": {}, \"mean_ms\": {:.4}, \"min_ms\": {:.4}, \
         \"mb_per_s\": {:.2}, \"message_bytes\": {}}}",
        leg.peak_bytes, leg.mean_ms, leg.min_ms, leg.mb_per_s, leg.bytes,
    )
}

fn main() {
    let mut sizes: Vec<usize> = vec![10_000, 100_000, 1_000_000, 10_000_000];
    let mut reps = 5usize;
    let mut window = 0usize; // 0 = auto (one chunk)
    let mut max_full_elems = 2_000_000usize;
    let mut out = "BENCH_overlay.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--sizes" => {
                sizes = next("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --sizes entry"))
                    .collect();
            }
            "--reps" => reps = next("--reps").parse().expect("bad --reps"),
            "--window" => window = next("--window").parse().expect("bad --window"),
            "--max-full-elems" => {
                max_full_elems = next("--max-full-elems").parse().expect("bad value")
            }
            "--smoke" => {
                sizes = vec![10_000, 100_000, 1_000_000];
                reps = 3;
            }
            "--out" => out = next("--out"),
            "--help" | "-h" => {
                println!(
                    "usage: overlay [--sizes a,b,c] [--reps R] [--window W] \
                     [--max-full-elems N] [--smoke] [--out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    sizes.sort_unstable();
    let op = doubles_op();

    let mut rows = Vec::new();
    for &n in &sizes {
        let (overlay, portions) = overlay_leg(&op, n, window, reps);
        let full = (n <= max_full_elems).then(|| full_leg(&op, n, reps));
        let bytes_identical = (n <= max_full_elems).then(|| identity_check(&op, n, window));
        let row = Row {
            elems: n,
            overlay,
            portions,
            full,
            bytes_identical,
            vm_hwm_bytes: vm_hwm_bytes(),
        };
        let (full_peak, full_tp) = match &row.full {
            Some(f) => (format!("{}", f.peak_bytes), format!("{:.1}", f.mb_per_s)),
            None => ("-".to_owned(), "-".to_owned()),
        };
        println!(
            "n={:>9}  overlay peak {:>8} B  {:>7.1} MB/s  ({} portions)   \
             full peak {:>10} B  {:>6} MB/s   identical={}",
            row.elems,
            row.overlay.peak_bytes,
            row.overlay.mb_per_s,
            row.portions,
            full_peak,
            full_tp,
            row.bytes_identical
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_owned()),
        );
        rows.push(row);
    }

    // Gates.
    let peak_min = rows.iter().map(|r| r.overlay.peak_bytes).min().unwrap();
    let peak_max = rows.iter().map(|r| r.overlay.peak_bytes).max().unwrap();
    let flat_ratio = peak_max as f64 / peak_min.max(1) as f64;
    let flat_ok = flat_ratio <= 1.5;
    let identity_ok = rows.iter().all(|r| r.bytes_identical.unwrap_or(true));
    let contrast_ok = rows
        .iter()
        .filter_map(|r| r.full.as_ref().map(|f| (r, f)))
        .all(|(r, f)| f.peak_bytes >= f.bytes && f.peak_bytes > r.overlay.peak_bytes);
    // Throughput is recorded, not gated hard: wall-clock on shared CI is
    // noisy. The ratio at the largest size with both legs is reported.
    let tp_ratio = rows
        .iter()
        .rev()
        .find_map(|r| r.full.as_ref().map(|f| r.overlay.mb_per_s / f.mb_per_s));

    println!(
        "flatness: overlay peak {peak_min} B .. {peak_max} B over a {}x size sweep \
         (ratio {flat_ratio:.3}, bound 1.5) -> {}",
        sizes.last().unwrap() / sizes.first().unwrap().max(&1),
        if flat_ok { "ok" } else { "FAIL" },
    );
    if let Some(tp) = tp_ratio {
        println!(
            "throughput: overlay at {:.2}x the buffered full-template send",
            tp
        );
    }

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"elems\": {}, \"overlay\": {}, \"portions\": {}, \
                 \"full\": {}, \"bytes_identical\": {}, \"vm_hwm_bytes\": {}}}",
                r.elems,
                leg_json(&r.overlay),
                r.portions,
                r.full
                    .as_ref()
                    .map(leg_json)
                    .unwrap_or_else(|| "null".to_owned()),
                r.bytes_identical
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".to_owned()),
                r.vm_hwm_bytes
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".to_owned()),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"overlay\",\n  \"reps\": {reps},\n  \"window_elems\": {window},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"flatness\": {{\"peak_min_bytes\": {peak_min}, \"peak_max_bytes\": {peak_max}, \
         \"ratio\": {flat_ratio:.4}, \"bound\": 1.5, \"pass\": {flat_ok}}},\n  \
         \"identity_pass\": {identity_ok},\n  \
         \"full_leg_contrast_pass\": {contrast_ok},\n  \
         \"throughput_ratio_overlay_vs_full\": {}\n}}\n",
        rows_json.join(",\n"),
        tp_ratio
            .map(|t| format!("{t:.4}"))
            .unwrap_or_else(|| "null".to_owned()),
    );
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");

    if !flat_ok || !identity_ok || !contrast_ok {
        eprintln!("FAILED gates: flatness={flat_ok} identity={identity_ok} contrast={contrast_ok}");
        std::process::exit(1);
    }
}
