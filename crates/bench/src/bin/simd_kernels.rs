//! SIMD-vs-scalar microbenchmarks for the three byte kernels (DESIGN.md
//! §3.11): the escape scanner, the branchless stuffed-integer writer, and
//! the wide coalesced gap shifter (plus the wide pad fill they share).
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin simd_kernels [-- --reps R --out FILE]
//! ```
//!
//! Each leg times the *raw* kernel pair — not the policy dispatch — so the
//! reported ratio is the kernel speedup, undiluted by the (shared, small)
//! `resolve()` cost both sides would pay equally. Legs are interleaved
//! across rounds and the fastest round wins, so background load cannot
//! flip a verdict.
//!
//! Asserts (exit 1 on failure): escape scanning and stuffed itoa are each
//! ≥ 1.5× faster than their scalar oracles. On a machine without SIMD the
//! binary writes `"simd_available": false` and exits 0 — the scalar-only
//! CI leg still gets its artifact.
//!
//! Writes `BENCH_simd.json`.

use bsoap_bench::{measure, measure_batched, Timing};
use bsoap_chunks::{ChunkConfig, ChunkStore};
use bsoap_kernels::{detected_level, KernelPolicy, SimdLevel};
use bsoap_xml::escape_text_into_with;

/// 2 KiB of mostly-clean text with a sprinkle of escapables — the shape of
/// real payload strings, where long clean runs are what the scanner earns
/// its keep on.
fn escape_corpus() -> String {
    let mut s = String::new();
    while s.len() < 2048 {
        s.push_str("The quick brown fox jumps over the lazy dog 0123456789 ");
        if s.len().is_multiple_of(5) {
            s.push('&');
        }
        if s.len().is_multiple_of(7) {
            s.push('<');
        }
    }
    s
}

/// Deterministic xorshift so both itoa legs chew identical value streams.
/// Magnitudes are mixed (1–10 digits) the way real `xsd:int` payloads are —
/// a uniform `u32` stream would be ~10-digit values only.
fn int_stream(n: usize) -> Vec<i32> {
    let mut x = 0x9e37_79b9_u32;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let modulus = 10u64.pow((i % 10) as u32 + 1);
            (x as u64 % modulus) as i32 * if i % 3 == 0 { -1 } else { 1 }
        })
        .collect()
}

/// Gap sets in the shape the coalesced pass sees after a storm: one small
/// gap per grown field, a field every ~24 bytes.
fn storm_gaps(chunk_len: usize) -> Vec<(usize, usize)> {
    (1..chunk_len / 24).map(|i| (i * 24, 3)).collect()
}

struct Pair {
    scalar_ns: f64,
    simd_ns: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.simd_ns
    }

    fn json(&self, name: &str) -> String {
        format!(
            "\"{name}\": {{\"scalar_ns\": {:.2}, \"simd_ns\": {:.2}, \"speedup\": {:.3}}}",
            self.scalar_ns,
            self.simd_ns,
            self.speedup()
        )
    }

    fn print(&self, name: &str) {
        println!(
            "  {name:<13} scalar {:>9.2} ns   simd {:>9.2} ns   speedup {:>6.2}x",
            self.scalar_ns,
            self.simd_ns,
            self.speedup()
        );
    }
}

const ROUNDS: usize = 5;

/// Interleave the two sides of a kernel pair across rounds (`run(false)` =
/// scalar, `run(true)` = simd); keep each side's fastest round. `per_call`
/// divides a round's min down to ns per kernel call.
fn duel(per_call: f64, mut run: impl FnMut(bool) -> Timing) -> Pair {
    let mut best_s = f64::INFINITY;
    let mut best_v = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_s = best_s.min(run(false).min.as_secs_f64());
        best_v = best_v.min(run(true).min.as_secs_f64());
    }
    Pair {
        scalar_ns: best_s * 1e9 / per_call,
        simd_ns: best_v * 1e9 / per_call,
    }
}

fn escape_leg(reps: usize) -> Pair {
    let text = escape_corpus();
    const INNER: usize = 64;
    let mut out = Vec::with_capacity(4096);
    duel(INNER as f64, |wide| {
        let policy = if wide {
            KernelPolicy::ForcedSimd
        } else {
            KernelPolicy::Scalar
        };
        measure(2, reps, || {
            for _ in 0..INNER {
                out.clear();
                escape_text_into_with(&mut out, std::hint::black_box(&text), policy);
            }
            std::hint::black_box(out.len());
        })
    })
}

fn itoa_leg(reps: usize) -> Pair {
    // A stuffed in-width rewrite: write the digits, then pad the rest of an
    // 11-char `xsd:int` field — exactly what a tier-2 overwrite does.
    let values = int_stream(4096);
    let mut field = [0u8; 11];
    let scalar = |field: &mut [u8; 11], v: i32| {
        let n = bsoap_convert::write_i32(field, v);
        bsoap_convert::widths::pad_spaces(&mut field[n..]);
        n
    };
    let simd = |field: &mut [u8; 11], v: i32| {
        let n = bsoap_convert::write_i32_branchless(field, v);
        bsoap_convert::pad_spaces_wide(&mut field[n..]);
        n
    };
    duel(values.len() as f64, |wide| {
        measure(2, reps, || {
            // One checksum per pass keeps the dead-code eliminator honest
            // without a per-value black_box round trip inflating both sides.
            let mut acc = 0usize;
            for &v in &values {
                let n = if wide {
                    simd(&mut field, v)
                } else {
                    scalar(&mut field, v)
                };
                acc = acc.wrapping_add(n).wrapping_add(field[0] as usize);
            }
            std::hint::black_box(acc);
        })
    })
}

fn shift_leg(reps: usize) -> Pair {
    // One coalesced pass over a nearly-full 32 KiB chunk with a gap every
    // 24 bytes — the post-storm shape where segments are short enough that
    // the ≤32-byte wide moves matter.
    let payload: Vec<u8> = (0..28 * 1024).map(|i| (i % 251) as u8).collect();
    let gaps = storm_gaps(payload.len());
    let setup = || {
        let mut store = ChunkStore::new(ChunkConfig::k32());
        store.append_region(&payload);
        store
    };
    duel(1.0, |wide| {
        let policy = if wide {
            KernelPolicy::ForcedSimd
        } else {
            KernelPolicy::Scalar
        };
        measure_batched(1, reps, setup, |mut store| {
            let moved = store.open_gaps_right_with(0, std::hint::black_box(&gaps), policy);
            std::hint::black_box(moved);
        })
    })
}

fn main() {
    let mut reps = 30usize;
    let mut out = "BENCH_simd.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--reps" => reps = next("--reps").parse().expect("bad --reps"),
            "--out" => out = next("--out"),
            "--help" | "-h" => {
                println!("usage: simd_kernels [--reps R] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let level = detected_level();
    // Honor a BSOAP_KERNEL=scalar override the same way the engine does:
    // the forced-simd leg would silently run scalar code and report 1.0x.
    let forced_runs_simd = bsoap_kernels::resolve(KernelPolicy::ForcedSimd).is_simd();
    if level == SimdLevel::None || !forced_runs_simd {
        let why = if level == SimdLevel::None {
            "no SIMD level detected on this host"
        } else {
            "BSOAP_KERNEL forces scalar kernels"
        };
        println!("simd kernels: skipped — {why}");
        let json = format!(
            "{{\n  \"benchmark\": \"simd_kernels\",\n  \"simd_available\": false,\n  \
             \"skip_reason\": \"{why}\"\n}}\n"
        );
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out}");
        return;
    }

    let escape = escape_leg(reps);
    let itoa = itoa_leg(reps);
    let shift = shift_leg(reps.min(10));

    println!("simd kernels: level {level:?}, {reps} reps, best of {ROUNDS} rounds");
    escape.print("escape_scan");
    itoa.print("stuffed_itoa");
    shift.print("gap_shift");

    let json = format!(
        "{{\n  \"benchmark\": \"simd_kernels\",\n  \"simd_available\": true,\n  \
         \"level\": \"{level:?}\",\n  \"reps\": {reps},\n  {},\n  {},\n  {}\n}}\n",
        escape.json("escape_scan"),
        itoa.json("stuffed_itoa"),
        shift.json("gap_shift"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(
        escape.speedup() >= 1.5,
        "SIMD escape scan under 1.5x scalar",
    );
    check(
        itoa.speedup() >= 1.5,
        "branchless stuffed itoa under 1.5x scalar",
    );
    if failed {
        std::process::exit(1);
    }
    println!("all simd-kernel assertions passed");
}
