//! Regenerate the paper's figures as tables.
//!
//! ```text
//! cargo run --release -p bsoap-bench --bin figures -- --all
//! cargo run --release -p bsoap-bench --bin figures -- --fig 4 --reps 50
//! cargo run --release -p bsoap-bench --bin figures -- --fig 12 --quick --csv
//! ```
//!
//! Figure 0 is the §2 conversion-share ablation.

use bsoap_bench::ablations::{
    ablation_chunk_size, ablation_diff_deser, ablation_growth_policy, ablation_http_framing,
    ablation_pipelined, ablation_reserve, ablation_server_dispatch, ablation_stealing,
};
use bsoap_bench::plot::render_loglog;
use bsoap_bench::scenarios::{
    fig_ablation, fig_content_match, fig_kernel_parallel, fig_overlay, fig_psm, fig_shift_partial,
    fig_shift_worst, fig_stuffing, Table,
};
use bsoap_bench::workload::{Kind, PAPER_SIZES, QUICK_SIZES};

struct Opts {
    figs: Vec<u32>,
    reps: usize,
    sizes: Vec<usize>,
    csv: bool,
    plot: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut figs = Vec::new();
    let mut reps = 20usize;
    let mut sizes: Vec<usize> = PAPER_SIZES.to_vec();
    let mut csv = false;
    let mut plot = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => figs = (0..=12).collect(),
            "--ablations" => figs.extend(13..=21),
            "--fig" => {
                let v = args.next().ok_or("--fig needs a number")?;
                figs.push(v.parse().map_err(|_| format!("bad figure number {v}"))?);
            }
            "--reps" => {
                let v = args.next().ok_or("--reps needs a number")?;
                reps = v.parse().map_err(|_| format!("bad rep count {v}"))?;
            }
            "--sizes" => {
                let v = args.next().ok_or("--sizes needs a comma list")?;
                sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad size {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--quick" => sizes = QUICK_SIZES.to_vec(),
            "--csv" => csv = true,
            "--plot" => plot = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures [--all] [--fig N]... [--reps N] \
                     [--sizes a,b,c] [--quick] [--csv] [--plot] [--ablations]\n\
                     figures: 0 = §2 ablation, 1-12 = the paper's figures,\n\
                     13-21 = design-space ablations (chunk size, stealing,\n\
                     reserve, growth policy, differential deser, HTTP framing,\n\
                     pipelined send, server dispatch, conversion kernel +\n\
                     parallel flush)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if figs.is_empty() {
        return Err("nothing to do: pass --all or --fig N (try --help)".to_owned());
    }
    figs.sort_unstable();
    figs.dedup();
    Ok(Opts {
        figs,
        reps,
        sizes,
        csv,
        plot,
    })
}

fn run_figure(fig: u32, sizes: &[usize], reps: usize) -> Option<Table> {
    // The linear-axis figures (4, 5, 12) only show their shape at larger
    // sizes; drop the tiny points the paper also omits there.
    let linear: Vec<usize> = sizes.iter().copied().filter(|&n| n >= 100).collect();
    let linear = if linear.is_empty() {
        sizes.to_vec()
    } else {
        linear
    };
    Some(match fig {
        0 => fig_ablation(sizes, reps),
        1 => fig_content_match(Kind::Mios, sizes, reps),
        2 => fig_content_match(Kind::Doubles, sizes, reps),
        3 => fig_content_match(Kind::Ints, sizes, reps),
        4 => fig_psm(Kind::Mios, &linear, reps),
        5 => fig_psm(Kind::Doubles, &linear, reps),
        6 => fig_shift_worst(Kind::Mios, sizes, reps),
        7 => fig_shift_worst(Kind::Doubles, sizes, reps),
        8 => fig_shift_partial(Kind::Mios, sizes, reps),
        9 => fig_shift_partial(Kind::Doubles, sizes, reps),
        10 => fig_stuffing(Kind::Mios, sizes, reps),
        11 => fig_stuffing(Kind::Doubles, sizes, reps),
        12 => fig_overlay(&linear, reps),
        // 13-18: design-space ablations beyond the paper's figures.
        13 => ablation_chunk_size(Kind::Doubles, sizes, reps),
        14 => ablation_stealing(sizes, reps),
        15 => ablation_reserve(sizes, reps),
        16 => ablation_growth_policy(sizes, reps),
        17 => ablation_diff_deser(sizes, reps),
        18 => ablation_http_framing(sizes, reps),
        19 => ablation_pipelined(sizes, reps),
        20 => ablation_server_dispatch(sizes, reps),
        21 => fig_kernel_parallel(Kind::Doubles, sizes, reps),
        _ => return None,
    })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "sizes {:?}, {} repetitions per point (paper used 100; --reps to change)",
        opts.sizes, opts.reps
    );
    for fig in &opts.figs {
        match run_figure(*fig, &opts.sizes, opts.reps) {
            Some(table) => {
                if opts.csv {
                    println!("# {} — {}", table.id, table.title);
                    print!("{}", table.to_csv());
                } else if opts.plot {
                    println!("{}", render_loglog(&table, 72, 20));
                } else {
                    println!("{}", table.render());
                }
            }
            None => eprintln!("no such figure: {fig}"),
        }
    }
}
