//! One runnable scenario per figure of the paper's §4.
//!
//! Every public `fig_*` function reproduces the workload of the matching
//! figure and returns a [`Table`]: rows are array sizes, columns are the
//! figure's series, and cells are mean Send Time in milliseconds —
//! exactly the quantity the paper plots. The `figures` binary renders
//! these tables; EXPERIMENTS.md records them against the paper's claims.

use crate::timing::{measure, measure_batched, Timing};
use crate::workload::{grow_fraction, pinned, values, Kind, WidthClass};
use bsoap_baseline::{GSoapLike, XSoapLike};
use bsoap_chunks::ChunkConfig;
use bsoap_core::{EngineConfig, MessageTemplate, Value, WidthPolicy};
use bsoap_transport::SinkTransport;

/// A regenerated figure: per-size rows of per-series mean milliseconds.
#[derive(Clone, Debug)]
pub struct Table {
    /// Figure identifier ("Figure 4").
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// Series (column) names.
    pub series: Vec<String>,
    /// `(array size, mean ms per series)` rows.
    pub rows: Vec<(usize, Vec<f64>)>,
}

impl Table {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = write!(out, "{:>9}", "n");
        for s in &self.series {
            let _ = write!(out, "  {s:>26}");
        }
        let _ = writeln!(out);
        for (n, cells) in &self.rows {
            let _ = write!(out, "{n:>9}");
            for c in cells {
                let _ = write!(out, "  {c:>23.4} ms");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "n");
        for s in &self.series {
            let _ = write!(out, ",{s}");
        }
        let _ = writeln!(out);
        for (n, cells) in &self.rows {
            let _ = write!(out, "{n}");
            for c in cells {
                let _ = write!(out, ",{c:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn ms(t: Timing) -> f64 {
    t.mean_ms()
}

const WARMUP: usize = 2;

/// Touch (mark dirty without changing) the re-serializable leaves of the
/// first `percent`% of elements. For MIOs only the double field is
/// touched — the paper's Figure 4 setup keeps "MIO integers" clean.
pub fn touch_percent(tpl: &mut MessageTemplate, kind: Kind, percent: usize) {
    let n = tpl.array_len(0);
    let k = n * percent / 100;
    match kind {
        Kind::Mios => {
            for e in 0..k {
                tpl.touch(tpl.array_leaf(0, e, 2));
            }
        }
        _ => {
            for e in 0..k {
                tpl.touch(tpl.array_leaf(0, e, 0));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Figures 1–3: message content matches vs full serialization.
// ---------------------------------------------------------------------

/// Figures 1 (MIOs), 2 (doubles, + XSOAP), 3 (integers).
pub fn fig_content_match(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let include_xsoap = kind == Kind::Doubles;
    let mut series = Vec::new();
    if include_xsoap {
        series.push("XSOAP-like".to_owned());
    }
    series.extend([
        "gSOAP-like".to_owned(),
        "bSOAP full serialization".to_owned(),
        "bSOAP content match".to_owned(),
    ]);

    let mut rows = Vec::new();
    for &n in sizes {
        let args = vec![values(kind, n)];
        let mut cells = Vec::new();

        if include_xsoap {
            let mut x = XSoapLike::new();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                x.send(&op, &args, &mut sink).unwrap();
            })));
        }
        {
            let mut g = GSoapLike::new();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                g.send(&op, &args, &mut sink).unwrap();
            })));
        }
        {
            // bSOAP with differential serialization off: build + send
            // every time (the paper toggles the optimization off).
            let config = EngineConfig::paper_default();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                tpl.send(&mut sink).unwrap();
            })));
        }
        {
            // Content match: template saved, nothing dirty, resend as-is.
            let config = EngineConfig::paper_default();
            let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    let fig_no = match kind {
        Kind::Mios => 1,
        Kind::Doubles => 2,
        Kind::Ints => 3,
    };
    Table {
        id: format!("Figure {fig_no}"),
        title: format!("Message Content Matches: {}", kind.name()),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figures 4–5: perfect structural matches.
// ---------------------------------------------------------------------

/// Figures 4 (MIOs) and 5 (doubles): 25–100% of values re-serialized.
pub fn fig_psm(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let series = vec![
        "bSOAP full serialization".to_owned(),
        "100% value re-serialization".to_owned(),
        "75% value re-serialization".to_owned(),
        "50% value re-serialization".to_owned(),
        "25% value re-serialization".to_owned(),
        "content match".to_owned(),
    ];
    let config = EngineConfig::paper_default();
    let mut rows = Vec::new();
    for &n in sizes {
        let args = vec![values(kind, n)];
        let mut cells = Vec::new();
        {
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                tpl.send(&mut sink).unwrap();
            })));
        }
        for percent in [100usize, 75, 50, 25, 0] {
            let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                touch_percent(&mut tpl, kind, percent);
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    let fig_no = if kind == Kind::Mios { 4 } else { 5 };
    Table {
        id: format!("Figure {fig_no}"),
        title: format!("Perfect Structural Matches: {}", kind.name()),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figures 6–7: worst-case shifting.
// ---------------------------------------------------------------------

/// Figures 6 (MIOs) and 7 (doubles): every value grows from minimum to
/// maximum width, with 32K and 8K chunks, vs shift-free re-serialization.
pub fn fig_shift_worst(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let series = vec![
        "worst-case shift, 32K chunks".to_owned(),
        "worst-case shift, 8K chunks".to_owned(),
        "100% re-serialization, no shift".to_owned(),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        let mut cells = Vec::new();
        for chunk in [ChunkConfig::k32(), ChunkConfig::k8()] {
            let config = EngineConfig::paper_default().with_chunk(chunk);
            let mut sink = SinkTransport::new();
            cells.push(ms(measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &min_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&max_args).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            )));
        }
        {
            // Reference: same 100% of values rewritten, but the template
            // was built at maximum widths so nothing ever shifts.
            let config = EngineConfig::paper_default();
            let mut tpl = MessageTemplate::build(config, &op, &max_args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                touch_percent(&mut tpl, kind, 100);
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    let fig_no = if kind == Kind::Mios { 6 } else { 7 };
    Table {
        id: format!("Figure {fig_no}"),
        title: format!("Worst Case Shifting: {}", kind.name()),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figures 8–9: partial shifting.
// ---------------------------------------------------------------------

/// Figures 8 (MIOs) and 9 (doubles): 25–100% of values grow from the
/// intermediate width to the maximum width.
pub fn fig_shift_partial(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let series = vec![
        "100% re-serialization + shift".to_owned(),
        "75% re-serialization + shift".to_owned(),
        "50% re-serialization + shift".to_owned(),
        "25% re-serialization + shift".to_owned(),
        "100% re-serialization, no shift".to_owned(),
    ];
    let config = EngineConfig::paper_default();
    let mut rows = Vec::new();
    for &n in sizes {
        let mid_args = vec![pinned(kind, n, WidthClass::Mid)];
        let mut cells = Vec::new();
        for percent in [100usize, 75, 50, 25] {
            let grown = vec![grow_fraction(kind, &mid_args[0], percent, WidthClass::Max)];
            let mut sink = SinkTransport::new();
            cells.push(ms(measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &mid_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&grown).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            )));
        }
        {
            let max_args = vec![pinned(kind, n, WidthClass::Max)];
            let mut tpl = MessageTemplate::build(config, &op, &max_args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                touch_percent(&mut tpl, kind, 100);
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    let fig_no = if kind == Kind::Mios { 8 } else { 9 };
    Table {
        id: format!("Figure {fig_no}"),
        title: format!("Shifting Performance: {}", kind.name()),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figures 10–11: stuffing.
// ---------------------------------------------------------------------

/// Figures 10 (MIOs) and 11 (doubles): minimum-width values stuffed to
/// min / intermediate / max field widths, plus the worst-case closing-tag
/// shift (writing minimum values over maximum ones).
pub fn fig_stuffing(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    let op = kind.op();
    let series = vec![
        "max width: full closing-tag shift".to_owned(),
        "max width: no closing-tag shift".to_owned(),
        "intermediate width: no closing-tag shift".to_owned(),
        "min width: no closing-tag shift".to_owned(),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        let mut cells = Vec::new();
        {
            // Full closing-tag shift: template holds max-width values in
            // max-width fields; each send writes min values over them,
            // moving every closing tag as far left as possible.
            let config = EngineConfig::paper_default().with_width(WidthPolicy::Max);
            let mut sink = SinkTransport::new();
            cells.push(ms(measure_batched(
                WARMUP,
                reps,
                || MessageTemplate::build(config, &op, &max_args).unwrap(),
                |mut tpl| {
                    tpl.update_args(&min_args).unwrap();
                    tpl.send(&mut sink).unwrap();
                },
            )));
        }
        let width_configs = [
            EngineConfig::paper_default().with_width(WidthPolicy::Max),
            EngineConfig::paper_default().with_width(WidthPolicy::Fixed {
                double: 18,
                int: 9,
                long: 20,
            }),
            EngineConfig::paper_default(), // exact = min, values are min-width
        ];
        for config in width_configs {
            // No closing-tag shift: min-width values re-serialized into
            // fields of the configured width (value length unchanged, so
            // tags never move; the cost difference is message size).
            let mut tpl = MessageTemplate::build(config, &op, &min_args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                touch_percent(&mut tpl, kind, 100);
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    let fig_no = if kind == Kind::Mios { 10 } else { 11 };
    Table {
        id: format!("Figure {fig_no}"),
        title: format!("Stuffing Performance: {}", kind.name()),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figure 12: chunk overlaying.
// ---------------------------------------------------------------------

/// Figure 12: sending from a single overlaid 32K chunk vs re-serializing
/// a full multi-chunk template, for doubles and MIOs.
pub fn fig_overlay(sizes: &[usize], reps: usize) -> Table {
    use bsoap_core::overlay::OverlaySender;
    let series = vec![
        "chunk overlay, doubles".to_owned(),
        "100% re-serialization, doubles".to_owned(),
        "chunk overlay, MIOs".to_owned(),
        "100% re-serialization, MIOs".to_owned(),
    ];
    let config = EngineConfig::paper_default();
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cells = Vec::new();
        for kind in [Kind::Doubles, Kind::Mios] {
            let op = kind.op();
            let args = vec![values(kind, n)];
            {
                let mut overlay = OverlaySender::auto_window(config, &op).unwrap();
                let mut sink = SinkTransport::new();
                cells.push(ms(measure(WARMUP, reps, || {
                    overlay.send(&args[0], &mut sink).unwrap();
                })));
            }
            {
                let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                let mut sink = SinkTransport::new();
                cells.push(ms(measure(WARMUP, reps, || {
                    touch_percent(&mut tpl, kind, 100);
                    tpl.send(&mut sink).unwrap();
                })));
            }
        }
        rows.push((n, cells));
    }
    Table {
        id: "Figure 12".to_owned(),
        title: "Chunk Overlaying Performance".to_owned(),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// Beyond the paper: conversion kernel and parallel flush.
// ---------------------------------------------------------------------

/// Conversion-kernel and flush-parallelism operating points on the
/// paper's 100%-re-serialization PSM workload (every value dirty, all
/// rewrites in-width). Series: the paper's Exact2004 kernel sequential,
/// the Grisu3 fast kernel sequential, and the fast kernel with 2 and 4
/// flush workers. Output bytes are identical across all four — only the
/// conversion and rewrite cost move.
pub fn fig_kernel_parallel(kind: Kind, sizes: &[usize], reps: usize) -> Table {
    use bsoap_core::FloatFormatter;
    let op = kind.op();
    let series = vec![
        "Exact2004 kernel, sequential".to_owned(),
        "Fast kernel, sequential".to_owned(),
        "Fast kernel, 2 workers".to_owned(),
        "Fast kernel, 4 workers".to_owned(),
    ];
    let configs = [
        EngineConfig::paper_default(),
        EngineConfig::paper_default().with_float(FloatFormatter::Fast),
        EngineConfig::paper_default()
            .with_float(FloatFormatter::Fast)
            .with_parallel_workers(2),
        EngineConfig::paper_default()
            .with_float(FloatFormatter::Fast)
            .with_parallel_workers(4),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let args = vec![values(kind, n)];
        let mut cells = Vec::new();
        for config in configs {
            let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                touch_percent(&mut tpl, kind, 100);
                tpl.send(&mut sink).unwrap();
            })));
        }
        rows.push((n, cells));
    }
    Table {
        id: "Kernel/parallel".to_owned(),
        title: format!(
            "Conversion kernel and parallel flush, 100% re-serialization: {}",
            kind.name()
        ),
        series,
        rows,
    }
}

// ---------------------------------------------------------------------
// §2 ablation: where does serialization time go?
// ---------------------------------------------------------------------

/// The §2 claim: conversion dominates end-to-end cost. Splits full
/// serialization into conversion-only, serialize (convert + tags), and
/// serialize + send.
pub fn fig_ablation(sizes: &[usize], reps: usize) -> Table {
    let op = Kind::Doubles.op();
    let series = vec![
        "conversion only".to_owned(),
        "full serialization".to_owned(),
        "serialization + send".to_owned(),
        "conversion share (%)".to_owned(),
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let Value::DoubleArray(xs) = values(Kind::Doubles, n) else {
            unreachable!()
        };
        let args = vec![Value::DoubleArray(xs.clone())];
        let mut cells = Vec::new();
        {
            let mut buf = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
            let mut acc = 0usize;
            cells.push(ms(measure(WARMUP, reps, || {
                for &x in &xs {
                    acc = acc.wrapping_add(bsoap_convert::write_f64(&mut buf, x));
                }
                std::hint::black_box(acc);
            })));
        }
        {
            let mut g = GSoapLike::new();
            cells.push(ms(measure(WARMUP, reps, || {
                g.serialize(&op, &args).unwrap();
            })));
        }
        {
            let mut g = GSoapLike::new();
            let mut sink = SinkTransport::new();
            cells.push(ms(measure(WARMUP, reps, || {
                g.send(&op, &args, &mut sink).unwrap();
            })));
        }
        let share = 100.0 * cells[0] / cells[2].max(1e-12);
        cells.push(share);
        rows.push((n, cells));
    }
    Table {
        id: "Ablation (§2)".to_owned(),
        title: "Conversion share of end-to-end Send Time (doubles)".to_owned(),
        series,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &[usize] = &[1, 64];

    #[test]
    fn all_figures_produce_tables() {
        let tables = [
            fig_content_match(Kind::Mios, TINY, 2),
            fig_content_match(Kind::Doubles, TINY, 2),
            fig_content_match(Kind::Ints, TINY, 2),
            fig_psm(Kind::Mios, TINY, 2),
            fig_psm(Kind::Doubles, TINY, 2),
            fig_shift_worst(Kind::Mios, TINY, 2),
            fig_shift_worst(Kind::Doubles, TINY, 2),
            fig_shift_partial(Kind::Mios, TINY, 2),
            fig_shift_partial(Kind::Doubles, TINY, 2),
            fig_stuffing(Kind::Mios, TINY, 2),
            fig_stuffing(Kind::Doubles, TINY, 2),
            fig_overlay(TINY, 2),
            fig_ablation(TINY, 2),
            fig_kernel_parallel(Kind::Doubles, TINY, 2),
        ];
        for t in &tables {
            assert_eq!(t.rows.len(), TINY.len(), "{}", t.id);
            for (_, cells) in &t.rows {
                assert_eq!(cells.len(), t.series.len(), "{}", t.id);
                assert!(cells.iter().all(|c| c.is_finite() && *c >= 0.0), "{}", t.id);
            }
            assert!(!t.render().is_empty());
            assert!(t.to_csv().lines().count() == t.rows.len() + 1);
        }
    }

    #[test]
    fn content_match_is_fastest_series_at_scale() {
        // Shape check on a mid-size row: content match beats full
        // serialization by a wide margin.
        let t = fig_content_match(Kind::Doubles, &[10_000], 3);
        let row = &t.rows[0].1;
        // Series: XSOAP, gSOAP, bSOAP full, bSOAP content.
        let (xsoap, gsoap, full, content) = (row[0], row[1], row[2], row[3]);
        assert!(content < full, "content {content} !< full {full}");
        assert!(
            content * 2.0 < gsoap,
            "expected ≥2x over gSOAP-like, got {gsoap}/{content}"
        );
        assert!(gsoap < xsoap, "DOM serializer should be slowest");
    }

    #[test]
    fn psm_orders_by_dirty_fraction() {
        // Deterministic successor to the wall-clock ordering check that
        // used to hide behind BSOAP_TIMING_TESTS=1 (and still flaked on
        // loaded boxes). Send Time is now modeled on the obs virtual
        // clock: every send charges a fixed nanosecond cost per unit of
        // work the engine itself reports — values converted, bytes built,
        // bytes shifted, bytes put on the wire — so the Figure 5 ordering
        //
        //     full ≥ 100% ≥ 75% ≥ 50% ≥ 25% ≥ content match
        //
        // follows from the work counters alone and holds on any machine,
        // however loaded: no env gate, no retries, no slack factor.
        use bsoap_obs::{Counter, HistId, Metrics, Recorder, VirtualClock};
        use std::sync::Arc;

        const N: usize = 10_000;
        const REPS: usize = 4;
        // ns charged per unit of work. The exact figures are arbitrary;
        // the ordering only needs each kind of work to cost something.
        const C_CONV: u64 = 60; // convert one value to text
        const C_BUILD: u64 = 2; // serialize one byte while building
        const C_SHIFT: u64 = 4; // move one stored byte while shifting
        const C_WIRE: u64 = 1; // hand one byte to the transport

        let op = Kind::Doubles.op();
        let args = vec![values(Kind::Doubles, N)];
        let config = EngineConfig::paper_default();

        // Run one Figure 5 series (None = full serialization, Some(p) =
        // touch p% then resend) for REPS sends, advancing the virtual
        // clock per the cost model and recording each modeled latency
        // into the registry's send histograms. Returns the modeled p50.
        let modeled_p50 = |percent: Option<usize>| -> u64 {
            let clock = Arc::new(VirtualClock::new());
            let metrics = Arc::new(Metrics::with_clock(clock.clone()));
            let mut sink = SinkTransport::new();
            let mut saved = percent.map(|_| {
                let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                tpl.set_metrics(Arc::clone(&metrics));
                tpl
            });
            let mut total_cost = 0u64;
            for _ in 0..REPS {
                let before = metrics.snapshot();
                let (tier, built_bytes) = match (&mut saved, percent) {
                    (Some(tpl), Some(p)) => {
                        touch_percent(tpl, Kind::Doubles, p);
                        let report = tpl.send(&mut sink).unwrap();
                        (report.tier.obs(), 0u64)
                    }
                    _ => {
                        // Full serialization: rebuild every time, which
                        // converts all N values and writes every byte.
                        let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                        tpl.set_metrics(Arc::clone(&metrics));
                        let report = tpl.send(&mut sink).unwrap();
                        (report.tier.obs(), report.bytes as u64)
                    }
                };
                let after = metrics.snapshot();
                let delta = |c: Counter| after.get(c) - before.get(c);
                // A build converts all N values; a flush reports only the
                // dirty values it actually rewrote.
                let conversions = if built_bytes > 0 {
                    N as u64
                } else {
                    delta(Counter::ValuesWritten)
                };
                let cost = conversions * C_CONV
                    + built_bytes * C_BUILD
                    + delta(Counter::ShiftedBytes) * C_SHIFT
                    + delta(Counter::BytesSent) * C_WIRE;
                clock.advance(cost);
                metrics.observe_ns(HistId::send(tier), cost);
                total_cost += cost;
            }
            assert_eq!(
                metrics.now_ns(),
                total_cost,
                "virtual clock moved only by the cost model"
            );
            let snap = metrics.snapshot();
            let mut merged = snap.hist(HistId::SendFirstTime).clone();
            for h in [
                HistId::SendContentMatch,
                HistId::SendPerfectStructural,
                HistId::SendPartialStructural,
            ] {
                merged.merge(snap.hist(h));
            }
            assert_eq!(merged.count(), REPS as u64, "one observation per send");
            merged.percentile(50.0)
        };

        let full = modeled_p50(None);
        let p100 = modeled_p50(Some(100));
        let p75 = modeled_p50(Some(75));
        let p50 = modeled_p50(Some(50));
        let p25 = modeled_p50(Some(25));
        let content = modeled_p50(Some(0));

        let chain = [
            ("full", full),
            ("100%", p100),
            ("75%", p75),
            ("50%", p50),
            ("25%", p25),
            ("content", content),
        ];
        for pair in chain.windows(2) {
            let ((hi_name, hi), (lo_name, lo)) = (pair[0], pair[1]);
            assert!(
                hi > lo,
                "{hi_name} ({hi} ns) should cost more than {lo_name} ({lo} ns)"
            );
        }
        assert!(content > 0, "content match still wires the message");
    }
}
