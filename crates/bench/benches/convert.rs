//! Microbenchmarks of the conversion substrate — the routines the paper
//! identifies as "90% of end-to-end time" (§2). Grouped by magnitude
//! class because the exact-digit `dtoa` cost varies with the decimal
//! exponent (documented in `bsoap-convert`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

const DTOA_CLASSES: &[(&str, f64)] = &[
    ("small_integer", 7.0),
    ("plain_decimal", 1234.5678),
    ("seventeen_digits", 12.345678901234567),
    ("large_exponent_pos", 1.2345678912345678e300),
    ("large_exponent_neg", -1.6054609345651112e-109),
    ("subnormal", -1.2345678912345594e-308),
];

fn dtoa_by_magnitude(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtoa");
    let mut buf = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
    for &(label, v) in DTOA_CLASSES {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| bsoap_convert::write_f64(&mut buf, std::hint::black_box(v)))
        });
    }
    group.finish();
}

/// Fast (Grisu3) vs exact (Dragon) kernel on the same magnitude classes —
/// both through the `FloatFormatter` dispatch the engine uses, so the
/// comparison includes dispatch cost. The acceptance bar for the fast
/// kernel is ≥ 5× on `plain_decimal` and `seventeen_digits`.
fn dtoa_fast_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtoa_kernel");
    let mut buf = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
    for &(label, v) in DTOA_CLASSES {
        group.bench_function(BenchmarkId::new("exact", label), |b| {
            b.iter(|| {
                bsoap_convert::FloatFormatter::Exact2004
                    .write_f64(&mut buf, std::hint::black_box(v))
            })
        });
        group.bench_function(BenchmarkId::new("fast", label), |b| {
            b.iter(|| {
                bsoap_convert::FloatFormatter::Fast.write_f64(&mut buf, std::hint::black_box(v))
            })
        });
    }
    group.finish();
}

fn itoa_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("itoa");
    let mut buf = [0u8; 20];
    for &(label, v) in &[
        ("one_digit", 7i32),
        ("five_digits", 13902),
        ("eleven_chars", -2_000_000_000),
    ] {
        group.bench_function(BenchmarkId::new("scalar", label), |b| {
            b.iter(|| bsoap_convert::write_i32(&mut buf, std::hint::black_box(v)))
        });
        group.bench_function(BenchmarkId::new("branchless", label), |b| {
            b.iter(|| bsoap_convert::write_i32_branchless(&mut buf, std::hint::black_box(v)))
        });
    }
    group.bench_function("i64_twenty_chars", |b| {
        b.iter(|| bsoap_convert::write_i64(&mut buf, std::hint::black_box(i64::MIN + 1)))
    });
    group.bench_function("i64_twenty_chars_branchless", |b| {
        b.iter(|| bsoap_convert::write_i64_branchless(&mut buf, std::hint::black_box(i64::MIN + 1)))
    });
    group.finish();
}

fn parse_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for &(label, text) in &[
        ("int", "-13902".as_bytes()),
        ("double_plain", b"1234.5678".as_slice()),
        ("double_exp", b"-1.6054609345651112E-109".as_slice()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| match label {
                "int" => {
                    bsoap_convert::parse::parse_i32(std::hint::black_box(text)).unwrap() as f64
                }
                _ => bsoap_convert::parse::parse_f64(std::hint::black_box(text)).unwrap(),
            })
        });
    }
    group.finish();
}

fn escape_bench(c: &mut Criterion) {
    use bsoap_core::KernelPolicy;
    let mut group = c.benchmark_group("xml_escape");
    let clean = "a plain string without any special characters at all";
    let dirty = "x < y && y > z \"quoted\" 'apos'";
    let mut out = Vec::with_capacity(128);
    for &(label, text) in &[("text_clean", clean), ("text_dirty", dirty)] {
        for &(kernel, policy) in &[
            ("scalar", KernelPolicy::Scalar),
            ("simd", KernelPolicy::ForcedSimd),
        ] {
            group.bench_function(BenchmarkId::new(kernel, label), |b| {
                b.iter(|| {
                    out.clear();
                    bsoap_xml::escape_text_into_with(&mut out, std::hint::black_box(text), policy);
                    out.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure();
    targets = dtoa_by_magnitude, dtoa_fast_vs_exact, itoa_bench, parse_bench, escape_bench
}
criterion_main!(benches);
