//! Criterion benches, one group per figure of the paper's §4.
//!
//! Each group's benchmark IDs name the figure's series; sizes cover the
//! paper's sweep where runtime allows (`cargo bench -- --quick` style
//! trimming is built in: 100 / 1K / 10K elements). The `figures` binary
//! prints the full 1–100K sweep; these benches exist for statistically
//! careful regression tracking of the same scenarios.

use bsoap_baseline::{GSoapLike, XSoapLike};
use bsoap_bench::scenarios::touch_percent;
use bsoap_bench::workload::{grow_fraction, pinned, values, Kind, WidthClass};
use bsoap_chunks::ChunkConfig;
use bsoap_core::overlay::OverlaySender;
use bsoap_core::{EngineConfig, MessageTemplate, WidthPolicy};
use bsoap_transport::SinkTransport;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;

const SIZES: &[usize] = &[100, 1_000, 10_000];

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

/// Figures 1–3: content matches vs the toolkits.
fn content_match(c: &mut Criterion, kind: Kind, fig: u32) {
    let op = kind.op();
    let mut group = c.benchmark_group(format!("fig{fig:02}_content_match_{}", kind.name()));
    for &n in SIZES {
        let args = vec![values(kind, n)];
        if kind == Kind::Doubles {
            let mut x = XSoapLike::new();
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new("xsoap_like", n), |b| {
                b.iter(|| x.send(&op, &args, &mut sink).unwrap())
            });
        }
        let mut g = GSoapLike::new();
        let mut sink = SinkTransport::new();
        group.bench_function(BenchmarkId::new("gsoap_like", n), |b| {
            b.iter(|| g.send(&op, &args, &mut sink).unwrap())
        });
        let config = EngineConfig::paper_default();
        group.bench_function(BenchmarkId::new("bsoap_full", n), |b| {
            let mut sink = SinkTransport::new();
            b.iter(|| {
                let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
                tpl.send(&mut sink).unwrap()
            })
        });
        let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
        let mut sink = SinkTransport::new();
        group.bench_function(BenchmarkId::new("bsoap_content_match", n), |b| {
            b.iter(|| tpl.send(&mut sink).unwrap())
        });
    }
    group.finish();
}

fn fig01(c: &mut Criterion) {
    content_match(c, Kind::Mios, 1);
}
fn fig02(c: &mut Criterion) {
    content_match(c, Kind::Doubles, 2);
}
fn fig03(c: &mut Criterion) {
    content_match(c, Kind::Ints, 3);
}

/// Figures 4–5: perfect structural matches by dirty fraction.
fn psm(c: &mut Criterion, kind: Kind, fig: u32) {
    let op = kind.op();
    let config = EngineConfig::paper_default();
    let mut group = c.benchmark_group(format!("fig{fig:02}_psm_{}", kind.name()));
    for &n in SIZES {
        let args = vec![values(kind, n)];
        for percent in [25usize, 50, 75, 100] {
            let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new(format!("dirty_{percent}pct"), n), |b| {
                b.iter(|| {
                    touch_percent(&mut tpl, kind, percent);
                    tpl.send(&mut sink).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn fig04(c: &mut Criterion) {
    psm(c, Kind::Mios, 4);
}
fn fig05(c: &mut Criterion) {
    psm(c, Kind::Doubles, 5);
}

/// Figures 6–7: worst-case shifting under 8K and 32K chunks.
fn shift_worst(c: &mut Criterion, kind: Kind, fig: u32) {
    let op = kind.op();
    let mut group = c.benchmark_group(format!("fig{fig:02}_shift_worst_{}", kind.name()));
    for &n in SIZES {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        for (label, chunk) in [
            ("32K_chunks", ChunkConfig::k32()),
            ("8K_chunks", ChunkConfig::k8()),
        ] {
            let config = EngineConfig::paper_default().with_chunk(chunk);
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter_batched(
                    || MessageTemplate::build(config, &op, &min_args).unwrap(),
                    |mut tpl| {
                        tpl.update_args(&max_args).unwrap();
                        tpl.send(&mut sink).unwrap()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        let config = EngineConfig::paper_default();
        let mut tpl = MessageTemplate::build(config, &op, &max_args).unwrap();
        let mut sink = SinkTransport::new();
        group.bench_function(BenchmarkId::new("no_shift_reference", n), |b| {
            b.iter(|| {
                touch_percent(&mut tpl, kind, 100);
                tpl.send(&mut sink).unwrap()
            })
        });
    }
    group.finish();
}

fn fig06(c: &mut Criterion) {
    shift_worst(c, Kind::Mios, 6);
}
fn fig07(c: &mut Criterion) {
    shift_worst(c, Kind::Doubles, 7);
}

/// Figures 8–9: partial shifting from intermediate to maximum widths.
fn shift_partial(c: &mut Criterion, kind: Kind, fig: u32) {
    let op = kind.op();
    let config = EngineConfig::paper_default();
    let mut group = c.benchmark_group(format!("fig{fig:02}_shift_partial_{}", kind.name()));
    for &n in SIZES {
        let mid_args = vec![pinned(kind, n, WidthClass::Mid)];
        for percent in [25usize, 50, 75, 100] {
            let grown = vec![grow_fraction(kind, &mid_args[0], percent, WidthClass::Max)];
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new(format!("grow_{percent}pct"), n), |b| {
                b.iter_batched(
                    || MessageTemplate::build(config, &op, &mid_args).unwrap(),
                    |mut tpl| {
                        tpl.update_args(&grown).unwrap();
                        tpl.send(&mut sink).unwrap()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn fig08(c: &mut Criterion) {
    shift_partial(c, Kind::Mios, 8);
}
fn fig09(c: &mut Criterion) {
    shift_partial(c, Kind::Doubles, 9);
}

/// Figures 10–11: stuffing widths and the closing-tag shift.
fn stuffing(c: &mut Criterion, kind: Kind, fig: u32) {
    let op = kind.op();
    let mut group = c.benchmark_group(format!("fig{fig:02}_stuffing_{}", kind.name()));
    for &n in SIZES {
        let min_args = vec![pinned(kind, n, WidthClass::Min)];
        let max_args = vec![pinned(kind, n, WidthClass::Max)];
        {
            let config = EngineConfig::paper_default().with_width(WidthPolicy::Max);
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new("max_width_full_tag_shift", n), |b| {
                b.iter_batched(
                    || MessageTemplate::build(config, &op, &max_args).unwrap(),
                    |mut tpl| {
                        tpl.update_args(&min_args).unwrap();
                        tpl.send(&mut sink).unwrap()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        for (label, config) in [
            (
                "max_width_no_shift",
                EngineConfig::paper_default().with_width(WidthPolicy::Max),
            ),
            (
                "intermediate_width_no_shift",
                EngineConfig::paper_default().with_width(WidthPolicy::Fixed {
                    double: 18,
                    int: 9,
                    long: 20,
                }),
            ),
            ("min_width_no_shift", EngineConfig::paper_default()),
        ] {
            let mut tpl = MessageTemplate::build(config, &op, &min_args).unwrap();
            let mut sink = SinkTransport::new();
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| {
                    touch_percent(&mut tpl, kind, 100);
                    tpl.send(&mut sink).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn fig10(c: &mut Criterion) {
    stuffing(c, Kind::Mios, 10);
}
fn fig11(c: &mut Criterion) {
    stuffing(c, Kind::Doubles, 11);
}

/// Figure 12: chunk overlaying vs full re-serialization.
fn fig12(c: &mut Criterion) {
    let config = EngineConfig::paper_default();
    let mut group = c.benchmark_group("fig12_overlay");
    for kind in [Kind::Doubles, Kind::Mios] {
        let op = kind.op();
        for &n in SIZES {
            let args = vec![values(kind, n)];
            let mut overlay = OverlaySender::auto_window(config, &op).unwrap();
            let mut sink = SinkTransport::new();
            group.bench_function(
                BenchmarkId::new(format!("overlay_{}", kind.name()), n),
                |b| b.iter(|| overlay.send(&args[0], &mut sink).unwrap()),
            );
            let mut tpl = MessageTemplate::build(config, &op, &args).unwrap();
            let mut sink = SinkTransport::new();
            group.bench_function(
                BenchmarkId::new(format!("reserialize_{}", kind.name()), n),
                |b| {
                    b.iter(|| {
                        touch_percent(&mut tpl, kind, 100);
                        tpl.send(&mut sink).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

/// §2 ablation: conversion vs whole-message cost.
fn ablation(c: &mut Criterion) {
    let op = Kind::Doubles.op();
    let mut group = c.benchmark_group("ablation_conversion_share");
    for &n in SIZES {
        let args = vec![values(Kind::Doubles, n)];
        let bsoap_core::Value::DoubleArray(xs) = &args[0] else {
            unreachable!()
        };
        let mut buf = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
        group.bench_function(BenchmarkId::new("convert_only", n), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &x in xs {
                    acc = acc.wrapping_add(bsoap_convert::write_f64(&mut buf, x));
                }
                acc
            })
        });
        let mut g = GSoapLike::new();
        group.bench_function(BenchmarkId::new("full_serialize", n), |b| {
            b.iter(|| g.serialize(&op, &args).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets = fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09,
              fig10, fig11, fig12, ablation
}
criterion_main!(benches);
