//! Property tests: deserialization inverts serialization, and the
//! differential path is observationally identical to full parsing.

use bsoap_convert::ScalarKind;
use bsoap_core::value::mio;
use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value, WidthPolicy};
use bsoap_deser::{parse_envelope, DiffDeserializer};
use proptest::prelude::*;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendM",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

fn any_finite_f64() -> impl Strategy<Value = f64> {
    // Full bit-pattern coverage, filtered to XML-representable values
    // (xsd:double has no NaN/Inf lexical forms in our profile).
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    prop_oneof![
        Just(EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml)),
        Just(EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml)),
        Just(
            EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_width(WidthPolicy::Fixed {
                    double: 18,
                    int: 6,
                    long: 12
                })
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_inverts_build_doubles(
        values in prop::collection::vec(any_finite_f64(), 0..40),
        config in config_strategy(),
    ) {
        let op = doubles_op();
        let args = vec![Value::DoubleArray(values)];
        let tpl = MessageTemplate::build(config, &op, &args).unwrap();
        let parsed = parse_envelope(&tpl.to_bytes(), &op).unwrap();
        // Bitwise comparison: shortest-repr round-trips exactly.
        let (Value::DoubleArray(a), Value::DoubleArray(b)) = (&args[0], &parsed[0]) else {
            panic!("variant drift");
        };
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parse_inverts_build_mios(
        elems in prop::collection::vec((any::<i32>(), any::<i32>(), any_finite_f64()), 0..20),
        config in config_strategy(),
    ) {
        let op = mios_op();
        let args = vec![Value::Array(elems.iter().map(|&(x, y, v)| mio(x, y, v)).collect())];
        let tpl = MessageTemplate::build(config, &op, &args).unwrap();
        let parsed = parse_envelope(&tpl.to_bytes(), &op).unwrap();
        prop_assert_eq!(&parsed, &args);
    }

    #[test]
    fn differential_equals_full_parse_over_update_sequences(
        initial in prop::collection::vec(any_finite_f64(), 1..20),
        updates in prop::collection::vec(
            prop::collection::vec((0usize..20, any_finite_f64()), 0..6),
            1..8
        ),
        stuffed in any::<bool>(),
    ) {
        let op = doubles_op();
        let config = if stuffed {
            EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml)
        } else {
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml)
        };
        let mut current = initial.clone();
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(current.clone())]).unwrap();
        let mut diff = DiffDeserializer::new(op.clone());
        diff.deserialize(&tpl.to_bytes()).unwrap();

        for update in updates {
            for (idx, v) in update {
                let idx = idx % current.len();
                current[idx] = v;
            }
            tpl.update_args(&[Value::DoubleArray(current.clone())]).unwrap();
            tpl.flush();
            let bytes = tpl.to_bytes();
            let full = parse_envelope(&bytes, &op).unwrap();
            let (diffed, _) = diff.deserialize(&bytes).unwrap();
            prop_assert_eq!(diffed, &full[..], "differential drifted from full parse");
        }
    }

    #[test]
    fn string_values_round_trip(
        s in "[ -~]{0,60}",  // printable ASCII incl. <, &, quotes
    ) {
        let op = OpDesc::single("f", "urn:x", "s", TypeDesc::Scalar(ScalarKind::Str));
        let args = vec![Value::Str(s)];
        let tpl = MessageTemplate::build(EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml), &op, &args).unwrap();
        let parsed = parse_envelope(&tpl.to_bytes(), &op).unwrap();
        prop_assert_eq!(&parsed, &args);
    }
}
