//! Adversarial deserialization: mutated, truncated, and
//! boundary-straddling messages must never produce a *wrong* value.
//!
//! The differential deserializer trusts the previous message's skeleton
//! map only when the new bytes justify it. An attacker (or a corrupted
//! wire) handing it truncated bytes, flipped bytes, inserted bytes, or
//! edits that straddle a leaf-region boundary must get one of exactly
//! two outcomes:
//!
//! * `Ok(values)` — in which case the values must be identical to what a
//!   from-scratch full parse of those same mutated bytes yields (the
//!   differential path never *invents* a reading the full parser would
//!   not produce);
//! * a typed [`DeserError`] — never a panic, and never a poisoned
//!   deserializer: the next well-formed message must parse correctly.

use bsoap_convert::ScalarKind;
use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value};
use bsoap_deser::{parse_envelope, parse_envelope_mapped, DiffDeserializer};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn any_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

/// One corruption applied to a message's bytes.
#[derive(Clone, Debug)]
enum Mutation {
    /// Mid-message hangup.
    Truncate(usize),
    /// Flip bits anywhere — skeleton or leaf.
    Flip { pos: usize, xor: u8 },
    /// Insert a byte, shifting every later tag.
    Insert { pos: usize, byte: u8 },
    /// Overwrite a 4-byte window straddling a leaf region's start (last
    /// skeleton bytes of the open tag + first value bytes) with digits:
    /// the cheapest way to desynchronize the skeleton while keeping the
    /// bytes plausible.
    StraddleLeaf { leaf: usize, digits: [u8; 4] },
}

fn apply_mutation(bytes: &mut Vec<u8>, m: &Mutation, op: &OpDesc) {
    match m {
        Mutation::Truncate(keep) => {
            let keep = keep % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        Mutation::Flip { pos, xor } => {
            if !bytes.is_empty() {
                let n = bytes.len();
                bytes[pos % n] ^= xor;
            }
        }
        Mutation::Insert { pos, byte } => {
            let pos = pos % (bytes.len() + 1);
            bytes.insert(pos, *byte);
        }
        Mutation::StraddleLeaf { leaf, digits } => {
            // Regions come from mapping the *current* bytes; if they no
            // longer parse (earlier mutation), straddle nothing.
            if let Ok(mapped) = parse_envelope_mapped(bytes, op) {
                if mapped.leaves.is_empty() {
                    return;
                }
                let r = &mapped.leaves[leaf % mapped.leaves.len()].region;
                let start = r.start.saturating_sub(2);
                for (i, d) in digits.iter().enumerate() {
                    if let Some(b) = bytes.get_mut(start + i) {
                        *b = b'0' + (d % 10);
                    }
                }
            }
        }
    }
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..4096).prop_map(Mutation::Truncate),
        (0usize..4096, 1u8..=255).prop_map(|(pos, xor)| Mutation::Flip { pos, xor }),
        (0usize..4096, any::<u8>()).prop_map(|(pos, byte)| Mutation::Insert { pos, byte }),
        (0usize..32, any::<u32>()).prop_map(|(leaf, d)| Mutation::StraddleLeaf {
            leaf,
            digits: d.to_le_bytes(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Differential deserialization of corrupted bytes: either the exact
    /// same reading as a full parse of those bytes, or a typed error —
    /// and afterwards the deserializer still handles clean traffic.
    #[test]
    fn mutated_messages_never_yield_wrong_values(
        initial in prop::collection::vec(any_finite_f64(), 1..16),
        update in prop::collection::vec((0usize..16, any_finite_f64()), 0..4),
        mutations in prop::collection::vec(mutation_strategy(), 1..4),
        stuffed in any::<bool>(),
    ) {
        let op = doubles_op();
        let config = if stuffed {
            EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml)
        } else {
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml)
        };
        let mut values = initial;
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(values.clone())]).unwrap();
        let mut diff = DiffDeserializer::new(op.clone());
        diff.deserialize(&tpl.to_bytes()).unwrap();

        // A legitimate differential update, then corrupt it on the wire.
        for (idx, v) in &update {
            let idx = idx % values.len();
            values[idx] = *v;
        }
        tpl.update_args(&[Value::DoubleArray(values.clone())]).unwrap();
        tpl.flush();
        let mut corrupted = tpl.to_bytes().to_vec();
        for m in &mutations {
            apply_mutation(&mut corrupted, m, &op);
        }

        let full = parse_envelope(&corrupted, &op);
        // A typed rejection from the differential path is always fine;
        // only an `Ok` must agree with the full parser.
        if let Ok((vals, outcome)) = diff.deserialize(&corrupted) {
            let vals = vals.to_vec();
            match full {
                Ok(full_vals) => prop_assert_eq!(
                    &vals,
                    &full_vals,
                    "differential ({:?}) drifted from full parse of mutated bytes",
                    outcome
                ),
                Err(e) => {
                    return Err(TestCaseError::Fail(format!(
                        "differential accepted ({outcome:?}) what the full \
                         parser rejects ({e})"
                    )));
                }
            }
        }

        // Recovery: a fresh well-formed message must parse correctly and
        // identically on both paths — corruption never poisons state.
        for (i, v) in values.iter_mut().enumerate() {
            *v = (i as f64) * 0.25 - 1.5;
        }
        tpl.update_args(&[Value::DoubleArray(values.clone())]).unwrap();
        tpl.flush();
        let clean = tpl.to_bytes().to_vec();
        let full = parse_envelope(&clean, &op).expect("clean message must parse");
        let (diffed, _) = diff
            .deserialize(&clean)
            .expect("clean message after corruption must parse");
        prop_assert_eq!(diffed, &full[..], "post-corruption recovery drifted");
        prop_assert_eq!(
            &full[0],
            &Value::DoubleArray(values),
            "recovered values are not the sent values"
        );
    }

    /// The schema-directed envelope parser on the same corpus: any result
    /// is acceptable except a panic or a shape-violating success.
    #[test]
    fn envelope_parser_is_total_on_mutated_bytes(
        initial in prop::collection::vec(any_finite_f64(), 0..16),
        mutations in prop::collection::vec(mutation_strategy(), 1..6),
        stuffed in any::<bool>(),
    ) {
        let op = doubles_op();
        let config = if stuffed {
            EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml)
        } else {
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml)
        };
        let tpl = MessageTemplate::build(config, &op, &[Value::DoubleArray(initial)]).unwrap();
        let mut bytes = tpl.to_bytes().to_vec();
        for m in &mutations {
            apply_mutation(&mut bytes, m, &op);
        }
        if let Ok(args) = parse_envelope(&bytes, &op) {
            prop_assert_eq!(args.len(), 1, "shape violated: wrong arity accepted");
            prop_assert!(
                matches!(args[0], Value::DoubleArray(_)),
                "shape violated: wrong variant accepted"
            );
        }
    }

    /// Pure garbage: both parse paths stay total (typed result, no
    /// panic), and the differential deserializer is not poisoned by it.
    #[test]
    fn garbage_bytes_never_fatal(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let op = doubles_op();
        let mut diff = DiffDeserializer::new(op.clone());
        if let Ok(args) = parse_envelope(&bytes, &op) {
            prop_assert_eq!(args.len(), 1, "shape violated on garbage input");
        }
        let _ = diff.deserialize(&bytes);
        // And it must still work afterwards.
        let tpl = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(vec![1.5, 2.5])],
        )
        .unwrap();
        let (vals, _) = diff.deserialize(&tpl.to_bytes()).expect("clean after garbage");
        prop_assert_eq!(&vals[0], &Value::DoubleArray(vec![1.5, 2.5]));
    }
}
