//! Streaming deserializer: incremental element emission from arbitrary
//! byte fragmentation, bounded carry memory, and typed errors on
//! declared-length mismatches and runaway units.

use bsoap_convert::ScalarKind;
use bsoap_core::value::mio;
use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value, WidthPolicy};
use bsoap_deser::StreamingDeserializer;
use proptest::prelude::*;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendM",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

fn message(config: EngineConfig, op: &OpDesc, value: &Value) -> Vec<u8> {
    MessageTemplate::build(config, op, std::slice::from_ref(value))
        .unwrap()
        .to_bytes()
        .to_vec()
}

/// Push `bytes` in pieces at the given cut points, collecting items.
fn stream_parse(
    op: &OpDesc,
    bytes: &[u8],
    cuts: &[usize],
) -> Result<(Vec<Value>, usize), bsoap_deser::DeserError> {
    let mut d = StreamingDeserializer::new(op)?;
    let mut items = Vec::new();
    let mut last = 0usize;
    let mut push = |d: &mut StreamingDeserializer, chunk: &[u8]| {
        d.push(chunk, |i, v| {
            assert_eq!(i, items.len(), "items must arrive in order");
            items.push(v);
            Ok(())
        })
    };
    for &cut in cuts {
        let cut = cut.min(bytes.len());
        if cut > last {
            push(&mut d, &bytes[last..cut])?;
            last = cut;
        }
    }
    push(&mut d, &bytes[last..])?;
    let summary = d.finish()?;
    assert_eq!(summary.items, items.len());
    Ok((items, summary.peak_carry_bytes))
}

#[test]
fn whole_message_single_push() {
    let op = doubles_op();
    let vals: Vec<f64> = (0..50).map(|i| i as f64 * 1.5 - 3.0).collect();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vals.clone()),
    );
    let (items, _) = stream_parse(&op, &bytes, &[]).unwrap();
    let got: Vec<f64> = items
        .iter()
        .map(|v| match v {
            Value::Double(x) => *x,
            other => panic!("expected double, got {other:?}"),
        })
        .collect();
    assert_eq!(got, vals);
}

#[test]
fn byte_at_a_time_push() {
    let op = doubles_op();
    let vals = vec![0.125, -7.5, 42.0];
    let bytes = message(
        EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vals.clone()),
    );
    let cuts: Vec<usize> = (1..bytes.len()).collect();
    let (items, _) = stream_parse(&op, &bytes, &cuts).unwrap();
    assert_eq!(items.len(), 3);
    assert_eq!(items[0], Value::Double(0.125));
    assert_eq!(items[2], Value::Double(42.0));
}

#[test]
fn struct_items_stream() {
    let op = mios_op();
    let items_in: Vec<Value> = (0..20).map(|i| mio(i, -i, i as f64 * 0.5)).collect();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::Array(items_in.clone()),
    );
    // Cut mid-message in a few awkward places.
    let cuts = [10, 11, 200, 201, bytes.len() - 5];
    let (items, _) = stream_parse(&op, &bytes, &cuts).unwrap();
    assert_eq!(items, items_in);
}

#[test]
fn empty_array_streams() {
    let op = doubles_op();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vec![]),
    );
    let (items, _) = stream_parse(&op, &bytes, &[5, 6, 7]).unwrap();
    assert!(items.is_empty());
}

#[test]
fn peak_carry_stays_bounded_by_item_not_message() {
    let op = doubles_op();
    let vals: Vec<f64> = (0..5000).map(|i| i as f64).collect();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vals),
    );
    // Feed in 256-byte chunks; carry should stay near one chunk + one
    // incomplete item, nowhere near the whole message.
    let cuts: Vec<usize> = (1..bytes.len() / 256).map(|i| i * 256).collect();
    let (items, peak) = stream_parse(&op, &bytes, &cuts).unwrap();
    assert_eq!(items.len(), 5000);
    assert!(
        peak < 2048,
        "peak carry {peak} not bounded (message is {} bytes)",
        bytes.len()
    );
}

#[test]
fn declared_length_undercount_is_error() {
    let op = doubles_op();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vec![1.0, 2.0, 3.0]),
    );
    // Claim 5 items but ship 3: finish() must reject.
    let text = String::from_utf8(bytes).unwrap();
    let doctored = text.replace("double[3]", "double[5]");
    let mut d = StreamingDeserializer::new(&op).unwrap();
    let mut n = 0usize;
    d.push(doctored.as_bytes(), |_, _| {
        n += 1;
        Ok(())
    })
    .unwrap();
    assert_eq!(n, 3);
    let err = d.finish().unwrap_err();
    assert!(
        err.to_string().contains("declares"),
        "unexpected error: {err}"
    );
}

#[test]
fn declared_length_overcount_is_error() {
    let op = doubles_op();
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &Value::DoubleArray(vec![1.0, 2.0, 3.0]),
    );
    // Claim 2 items but ship 3: push must reject on the third.
    let text = String::from_utf8(bytes).unwrap();
    let doctored = text.replace("double[3]", "double[2]");
    let mut d = StreamingDeserializer::new(&op).unwrap();
    let err = d.push(doctored.as_bytes(), |_, _| Ok(())).unwrap_err();
    assert!(
        err.to_string().contains("declares"),
        "unexpected error: {err}"
    );
}

#[test]
fn carry_cap_rejects_runaway_unit() {
    let op = doubles_op();
    // An <item> that never closes: the carry cap must produce a typed
    // error instead of buffering without bound.
    let mut d = StreamingDeserializer::with_max_carry(&op, 256).unwrap();
    let prologue = b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
        <SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\">\n\
        <SOAP-ENV:Body>\n<ns1:send xmlns:ns1=\"urn:bench\">\n\
        <arr xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:double[1]\">\n";
    d.push(prologue, |_, _| Ok(())).unwrap();
    let mut err = None;
    for _ in 0..64 {
        if let Err(e) = d.push(b"<item xsi:type=\"xsd:double\">11111111", |_, _| Ok(())) {
            err = Some(e);
            break;
        }
    }
    let err = err.expect("cap never triggered");
    assert!(err.to_string().contains("carry"), "unexpected error: {err}");
}

#[test]
fn wrong_operation_tag_rejected() {
    let op = doubles_op();
    let other = OpDesc::single(
        "other",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    );
    let bytes = message(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &other,
        &Value::DoubleArray(vec![1.0]),
    );
    let mut d = StreamingDeserializer::new(&op).unwrap();
    let res = d.push(&bytes, |_, _| Ok(()));
    let finish_err = res.is_err() || d.finish().is_err();
    assert!(finish_err, "mismatched op accepted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any fragmentation of a valid message yields exactly the original
    /// values, for exact, stuffed, and fixed widths.
    #[test]
    fn arbitrary_fragmentation_round_trips(
        vals in prop::collection::vec(-1e9f64..1e9, 0..60),
        cuts in prop::collection::vec(any::<u16>(), 0..24),
        stuffed in any::<bool>(),
    ) {
        let op = doubles_op();
        let config = if stuffed {
            EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml)
        } else {
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml).with_width(WidthPolicy::Exact)
        };
        let bytes = message(config, &op, &Value::DoubleArray(vals.clone()));
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c as usize % bytes.len().max(1)).collect();
        cuts.sort_unstable();
        let (items, _) = stream_parse(&op, &bytes, &cuts).unwrap();
        let got: Vec<f64> = items.iter().map(|v| match v {
            Value::Double(x) => *x,
            other => panic!("expected double, got {other:?}"),
        }).collect();
        prop_assert_eq!(got, vals);
    }

    /// Streaming agrees with the batch envelope parser on struct arrays.
    #[test]
    fn streaming_matches_batch_parse(
        n in 0usize..30,
        cuts in prop::collection::vec(any::<u16>(), 0..16),
    ) {
        let op = mios_op();
        let items_in: Vec<Value> = (0..n).map(|i| mio(i as i32, -(i as i32), i as f64)).collect();
        let bytes = message(EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml), &op, &Value::Array(items_in));
        let batch = bsoap_deser::parse_envelope(&bytes, &op).unwrap();
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c as usize % bytes.len()).collect();
        cuts.sort_unstable();
        let (items, _) = stream_parse(&op, &bytes, &cuts).unwrap();
        prop_assert_eq!(Value::Array(items), batch[0].clone());
    }
}
