//! Schema-directed envelope deserialization.
//!
//! [`parse_envelope`] turns the bytes of a SOAP 1.1 call into the argument
//! [`Value`]s the operation declares. [`parse_envelope_mapped`] does the
//! same while recording, for every scalar leaf, the byte region its value
//! occupies — the structure the differential deserializer (§6) compares
//! across messages.
//!
//! A leaf's *region* runs from the end of its open tag to the first `<` of
//! the element that follows its close tag. That span contains the value,
//! the close tag, and any whitespace pad — so a close tag that moved left
//! inside a stuffed field (the client's "closing tag shift") changes only
//! the leaf's own region, never the skeleton around it.

use crate::error::DeserError;
use bsoap_convert::parse as lex;
use bsoap_convert::ScalarKind;
use bsoap_core::{OpDesc, TypeDesc, Value};
use bsoap_xml::{unescape, Event, PullParser};
use std::ops::Range;

/// Identifies where a leaf's value lives within the argument list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafSlot {
    /// Parameter index.
    pub param: u32,
    /// Scalar index within the parameter, in document order (for arrays:
    /// `element * leaves_per_element + field`).
    pub leaf: u32,
}

/// One leaf's byte geometry in a parsed message.
#[derive(Clone, Debug)]
pub struct LeafRegion {
    /// Where the parsed value goes.
    pub slot: LeafSlot,
    /// Scalar kind (drives re-parsing).
    pub kind: ScalarKind,
    /// Bytes from open-tag end to the next element's `<` (value + close
    /// tag + pad).
    pub region: Range<usize>,
    /// Byte range of the *open*-tag name. The open tag is skeleton (it
    /// precedes `region`), so this range stays valid across differential
    /// adoptions — unlike the close tag, which moves inside the region
    /// when a shorter value is written.
    pub open_name: Range<usize>,
}

/// A fully parsed message plus its leaf map.
#[derive(Clone, Debug)]
pub struct MappedMessage {
    /// Parsed argument values.
    pub args: Vec<Value>,
    /// Leaf regions in document order (regions are disjoint and sorted).
    pub leaves: Vec<LeafRegion>,
    /// Total message length the map was built against.
    pub len: usize,
}

/// Parse an envelope into argument values (no mapping overhead).
pub fn parse_envelope(bytes: &[u8], op: &OpDesc) -> Result<Vec<Value>, DeserError> {
    Ok(parse_inner(bytes, op, false)?.args)
}

/// Parse an envelope and record every leaf's byte region.
pub fn parse_envelope_mapped(bytes: &[u8], op: &OpDesc) -> Result<MappedMessage, DeserError> {
    parse_inner(bytes, op, true)
}

struct Cursor<'a> {
    parser: PullParser<'a>,
    peeked: Option<Event>,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor {
            parser: PullParser::new(bytes),
            peeked: None,
        }
    }

    fn next(&mut self) -> Result<Event, DeserError> {
        if let Some(e) = self.peeked.take() {
            return Ok(e);
        }
        Ok(self.parser.next_event()?)
    }

    fn peek(&mut self) -> Result<&Event, DeserError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.parser.next_event()?);
        }
        Ok(self.peeked.as_ref().expect("just filled"))
    }

    /// Next event, skipping whitespace-only text, comments, and the XML
    /// declaration.
    fn next_significant(&mut self) -> Result<Event, DeserError> {
        loop {
            let e = self.next()?;
            match &e {
                Event::Decl { .. } | Event::Comment { .. } => continue,
                Event::Text { range } => {
                    let t = &self.parser.input()[range.clone()];
                    if t.iter().all(|b| b.is_ascii_whitespace()) {
                        continue;
                    }
                    return Ok(e);
                }
                _ => return Ok(e),
            }
        }
    }

    fn input(&self) -> &'a [u8] {
        self.parser.input()
    }
}

struct Parser<'a> {
    cur: Cursor<'a>,
    mapped: bool,
    leaves: Vec<LeafRegion>,
}

fn parse_inner(bytes: &[u8], op: &OpDesc, mapped: bool) -> Result<MappedMessage, DeserError> {
    let mut p = Parser {
        cur: Cursor::new(bytes),
        mapped,
        leaves: Vec::new(),
    };

    p.expect_start("SOAP-ENV:Envelope")?;
    p.expect_start("SOAP-ENV:Body")?;
    let call_name = format!("ns1:{}", op.name);
    p.expect_start(&call_name)?;

    let mut args = Vec::with_capacity(op.params.len());
    for (pidx, param) in op.params.iter().enumerate() {
        let v = p.param(pidx as u32, param.name.as_str(), &param.desc)?;
        args.push(v);
    }

    p.expect_end(&call_name)?;
    p.expect_end("SOAP-ENV:Body")?;
    p.expect_end("SOAP-ENV:Envelope")?;
    p.expect_eof()?;
    Ok(MappedMessage {
        args,
        leaves: p.leaves,
        len: bytes.len(),
    })
}

impl<'a> Parser<'a> {
    fn name_text(&self, r: &Range<usize>) -> &'a str {
        std::str::from_utf8(&self.cur.parser.input()[r.clone()]).unwrap_or("<non-utf8>")
    }

    fn expect_start(&mut self, name: &str) -> Result<StartTag, DeserError> {
        match self.cur.next_significant()? {
            Event::Start {
                name: n,
                attrs,
                range,
                ..
            } => {
                if &self.cur.input()[n.clone()] != name.as_bytes() {
                    return Err(DeserError::shape(format!(
                        "expected <{name}>, found <{}>",
                        self.name_text(&n)
                    )));
                }
                Ok(StartTag {
                    attrs,
                    name: n,
                    tag_end: range.end,
                })
            }
            other => Err(DeserError::shape(format!(
                "expected <{name}>, found {other:?}"
            ))),
        }
    }

    fn expect_end(&mut self, name: &str) -> Result<(), DeserError> {
        match self.cur.next_significant()? {
            Event::End { name: n, .. } => {
                if &self.cur.input()[n.clone()] != name.as_bytes() {
                    return Err(DeserError::shape(format!(
                        "expected </{name}>, found </{}>",
                        self.name_text(&n)
                    )));
                }
                Ok(())
            }
            other => Err(DeserError::shape(format!(
                "expected </{name}>, found {other:?}"
            ))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), DeserError> {
        match self.cur.next_significant()? {
            Event::Eof => Ok(()),
            other => Err(DeserError::shape(format!("trailing content: {other:?}"))),
        }
    }

    fn param(&mut self, pidx: u32, name: &str, desc: &TypeDesc) -> Result<Value, DeserError> {
        match desc {
            TypeDesc::Array { item } => self.array(pidx, name, item),
            _ => {
                let mut leaf_counter = 0u32;
                self.plain(pidx, &mut leaf_counter, name, desc)
            }
        }
    }

    /// Parse a scalar or struct element named `name`.
    fn plain(
        &mut self,
        pidx: u32,
        leaf_counter: &mut u32,
        name: &str,
        desc: &TypeDesc,
    ) -> Result<Value, DeserError> {
        match desc {
            TypeDesc::Scalar(kind) => {
                let tag = self.expect_start(name)?;
                self.scalar_body(pidx, leaf_counter, name, *kind, tag.name, tag.tag_end)
            }
            TypeDesc::Struct { fields, .. } => {
                self.expect_start(name)?;
                let mut vals = Vec::with_capacity(fields.len());
                for (fname, fdesc) in fields {
                    vals.push(self.plain(pidx, leaf_counter, fname, fdesc)?);
                }
                self.expect_end(name)?;
                Ok(Value::Struct(vals))
            }
            TypeDesc::Array { .. } => Err(DeserError::shape("nested arrays are not supported")),
        }
    }

    /// Parse the text + close tag of a scalar element whose open tag has
    /// been consumed; records the leaf region in mapped mode.
    fn scalar_body(
        &mut self,
        pidx: u32,
        leaf_counter: &mut u32,
        name: &str,
        kind: ScalarKind,
        open_name: Range<usize>,
        open_end: usize,
    ) -> Result<Value, DeserError> {
        // Value text (may be absent for the empty string).
        let text_range = match self.cur.peek()? {
            Event::Text { range } => {
                let r = range.clone();
                self.cur.next()?;
                r
            }
            _ => open_end..open_end,
        };
        let close_name = match self.cur.next()? {
            Event::End { name: n, .. } => {
                if &self.cur.input()[n.clone()] != name.as_bytes() {
                    return Err(DeserError::shape(format!(
                        "expected </{name}>, found </{}>",
                        self.name_text(&n)
                    )));
                }
                n
            }
            other => Err(DeserError::shape(format!(
                "expected </{name}>, found {other:?}"
            )))?,
        };
        let raw = &self.cur.input()[text_range.clone()];
        let value = parse_scalar(raw, kind, name)?;
        if self.mapped {
            let input = self.cur.input();
            // Region extends past the close tag through any whitespace pad
            // to the next '<'.
            let mut end = close_name.end;
            while end < input.len() && input[end] != b'>' {
                end += 1;
            }
            end = (end + 1).min(input.len());
            while end < input.len() && input[end] != b'<' && input[end].is_ascii_whitespace() {
                end += 1;
            }
            self.leaves.push(LeafRegion {
                slot: LeafSlot {
                    param: pidx,
                    leaf: *leaf_counter,
                },
                kind,
                region: open_end..end,
                open_name,
            });
        }
        *leaf_counter += 1;
        Ok(value)
    }

    fn array(&mut self, pidx: u32, name: &str, item: &TypeDesc) -> Result<Value, DeserError> {
        let tag = self.expect_start(name)?;
        // Declared length from SOAP-ENC:arrayType="T[N]".
        let declared = self.array_len_attr(&tag)?;

        let mut leaf_counter = 0u32;
        let mut out = ArrayAccum::new(item, declared);
        loop {
            match self.cur.next_significant()? {
                Event::Start { name: n, range, .. } => {
                    if &self.cur.input()[n.clone()] != b"item" {
                        return Err(DeserError::shape(format!(
                            "expected <item>, found <{}>",
                            self.name_text(&n)
                        )));
                    }
                    match item {
                        TypeDesc::Scalar(kind) => {
                            let v = self.scalar_body(
                                pidx,
                                &mut leaf_counter,
                                "item",
                                *kind,
                                n.clone(),
                                range.end,
                            )?;
                            out.push(v)?;
                        }
                        TypeDesc::Struct { fields, .. } => {
                            let mut vals = Vec::with_capacity(fields.len());
                            for (fname, fdesc) in fields {
                                vals.push(self.plain(pidx, &mut leaf_counter, fname, fdesc)?);
                            }
                            self.expect_end("item")?;
                            out.push(Value::Struct(vals))?;
                        }
                        TypeDesc::Array { .. } => {
                            return Err(DeserError::shape("nested arrays are not supported"))
                        }
                    }
                }
                Event::End { name: n, .. } => {
                    if &self.cur.input()[n.clone()] != name.as_bytes() {
                        return Err(DeserError::shape(format!(
                            "expected </{name}>, found </{}>",
                            self.name_text(&n)
                        )));
                    }
                    break;
                }
                other => {
                    return Err(DeserError::shape(format!(
                        "unexpected content in array {name}: {other:?}"
                    )))
                }
            }
        }
        let v = out.finish()?;
        let got = v.array_len().expect("accumulator builds arrays");
        if got != declared {
            return Err(DeserError::shape(format!(
                "array {name} declares {declared} elements but contains {got}"
            )));
        }
        Ok(v)
    }

    fn array_len_attr(&self, tag: &StartTag) -> Result<usize, DeserError> {
        for a in &tag.attrs {
            if &self.cur.input()[a.name.clone()] == b"SOAP-ENC:arrayType" {
                let v = &self.cur.input()[a.value.clone()];
                let open = v
                    .iter()
                    .position(|&b| b == b'[')
                    .ok_or_else(|| DeserError::shape("arrayType missing '['"))?;
                let close = v[open..]
                    .iter()
                    .position(|&b| b == b']')
                    .map(|p| p + open)
                    .ok_or_else(|| DeserError::shape("arrayType missing ']'"))?;
                return lex::parse_i32(lex::trim_xml_ws(&v[open + 1..close]))
                    .map(|n| n as usize)
                    .map_err(|err| DeserError::Lexical {
                        at: "arrayType length".into(),
                        err,
                    });
            }
        }
        Err(DeserError::shape(
            "array element missing SOAP-ENC:arrayType",
        ))
    }
}

struct StartTag {
    attrs: Vec<bsoap_xml::pull::Attr>,
    name: Range<usize>,
    tag_end: usize,
}

/// Accumulates array elements into the densest matching `Value` variant.
enum ArrayAccum {
    Doubles(Vec<f64>),
    Ints(Vec<i32>),
    Boxed(Vec<Value>),
}

impl ArrayAccum {
    fn new(item: &TypeDesc, capacity: usize) -> Self {
        match item {
            TypeDesc::Scalar(ScalarKind::Double) => {
                ArrayAccum::Doubles(Vec::with_capacity(capacity))
            }
            TypeDesc::Scalar(ScalarKind::Int) => ArrayAccum::Ints(Vec::with_capacity(capacity)),
            _ => ArrayAccum::Boxed(Vec::with_capacity(capacity)),
        }
    }

    fn push(&mut self, v: Value) -> Result<(), DeserError> {
        match (self, v) {
            (ArrayAccum::Doubles(out), Value::Double(x)) => out.push(x),
            (ArrayAccum::Ints(out), Value::Int(x)) => out.push(x),
            (ArrayAccum::Boxed(out), v) => out.push(v),
            _ => return Err(DeserError::shape("mixed scalar kinds in array")),
        }
        Ok(())
    }

    fn finish(self) -> Result<Value, DeserError> {
        Ok(match self {
            ArrayAccum::Doubles(v) => Value::DoubleArray(v),
            ArrayAccum::Ints(v) => Value::IntArray(v),
            ArrayAccum::Boxed(v) => Value::Array(v),
        })
    }
}

/// Parse one scalar's raw text (entities unresolved) as `kind`.
pub(crate) fn parse_scalar(raw: &[u8], kind: ScalarKind, at: &str) -> Result<Value, DeserError> {
    let lexical_err = |err| DeserError::Lexical {
        at: at.to_owned(),
        err,
    };
    Ok(match kind {
        ScalarKind::Int => Value::Int(lex::parse_i32(lex::trim_xml_ws(raw)).map_err(lexical_err)?),
        ScalarKind::Long => {
            Value::Long(lex::parse_i64(lex::trim_xml_ws(raw)).map_err(lexical_err)?)
        }
        ScalarKind::Double => {
            Value::Double(lex::parse_f64(lex::trim_xml_ws(raw)).map_err(lexical_err)?)
        }
        ScalarKind::Bool => {
            Value::Bool(lex::parse_bool(lex::trim_xml_ws(raw)).map_err(lexical_err)?)
        }
        ScalarKind::Str => {
            let unescaped = unescape(raw)?;
            Value::Str(
                String::from_utf8(unescaped.into_owned())
                    .map_err(|_| DeserError::shape(format!("non-UTF-8 string at {at}")))?,
            )
        }
    })
}

/// Write a re-parsed scalar into the argument list at `slot`, using the
/// operation's type structure to find the target.
pub(crate) fn apply_leaf(
    args: &mut [Value],
    op: &OpDesc,
    slot: LeafSlot,
    value: Value,
) -> Result<(), DeserError> {
    let pidx = slot.param as usize;
    let desc = &op
        .params
        .get(pidx)
        .ok_or_else(|| DeserError::shape("leaf slot param out of range"))?
        .desc;
    let target = &mut args[pidx];
    match (desc, target) {
        (TypeDesc::Array { item }, arr) => {
            let lpe = item.leaves_per_instance().max(1);
            let elem = slot.leaf as usize / lpe;
            let field = slot.leaf as usize % lpe;
            match arr {
                Value::DoubleArray(v) => {
                    let Value::Double(x) = value else {
                        return Err(DeserError::shape("kind drift in leaf apply"));
                    };
                    *v.get_mut(elem)
                        .ok_or_else(|| DeserError::shape("leaf slot element out of range"))? = x;
                }
                Value::IntArray(v) => {
                    let Value::Int(x) = value else {
                        return Err(DeserError::shape("kind drift in leaf apply"));
                    };
                    *v.get_mut(elem)
                        .ok_or_else(|| DeserError::shape("leaf slot element out of range"))? = x;
                }
                Value::Array(elems) => {
                    let e = elems
                        .get_mut(elem)
                        .ok_or_else(|| DeserError::shape("leaf slot element out of range"))?;
                    set_nth_scalar(e, item, field, value)?;
                }
                _ => return Err(DeserError::shape("array value variant drift")),
            }
            Ok(())
        }
        (desc, target) => set_nth_scalar(target, desc, slot.leaf as usize, value),
    }
}

/// Set the `n`th scalar leaf (document order) inside a non-array value.
fn set_nth_scalar(
    target: &mut Value,
    desc: &TypeDesc,
    n: usize,
    value: Value,
) -> Result<(), DeserError> {
    fn walk(
        target: &mut Value,
        desc: &TypeDesc,
        n: &mut usize,
        value: &mut Option<Value>,
    ) -> Result<bool, DeserError> {
        match (desc, target) {
            (TypeDesc::Scalar(_), t) => {
                if *n == 0 {
                    *t = value.take().expect("single take");
                    Ok(true)
                } else {
                    *n -= 1;
                    Ok(false)
                }
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                for ((_, fdesc), fval) in fields.iter().zip(vals) {
                    if walk(fval, fdesc, n, value)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            _ => Err(DeserError::shape("structure drift in leaf apply")),
        }
    }
    let mut n = n;
    let mut v = Some(value);
    if walk(target, desc, &mut n, &mut v)? {
        Ok(())
    } else {
        Err(DeserError::shape("leaf index out of range in apply"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_core::value::mio;
    use bsoap_core::{EngineConfig, MessageTemplate, ParamDesc};

    fn doubles_op() -> OpDesc {
        OpDesc::single(
            "send",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )
    }

    fn build_bytes(op: &OpDesc, args: &[Value]) -> Vec<u8> {
        MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            op,
            args,
        )
        .unwrap()
        .to_bytes()
    }

    #[test]
    fn round_trip_doubles() {
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![
            0.25,
            -1.5,
            3e300,
            f64::MIN_POSITIVE,
        ])];
        let bytes = build_bytes(&op, &args);
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn round_trip_mios() {
        let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
        let args = vec![Value::Array(vec![mio(1, -2, 0.5), mio(3, 4, -5.25)])];
        let bytes = build_bytes(&op, &args);
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn round_trip_mixed_params() {
        let op = OpDesc::new(
            "mixed",
            "urn:x",
            vec![
                ParamDesc {
                    name: "id".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Int),
                },
                ParamDesc {
                    name: "label".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Str),
                },
                ParamDesc {
                    name: "xs".into(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
                },
                ParamDesc {
                    name: "p".into(),
                    desc: TypeDesc::mio(),
                },
            ],
        );
        let args = vec![
            Value::Int(-7),
            Value::Str("a<b&c>d".into()),
            Value::IntArray(vec![1, 2, 3]),
            mio(9, 8, 7.5),
        ];
        let bytes = build_bytes(&op, &args);
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn tolerates_stuffing_pad() {
        // Stuffed-width templates put whitespace after close tags.
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![1.0, 2.5])];
        let bytes = MessageTemplate::build(
            EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &args,
        )
        .unwrap()
        .to_bytes();
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn empty_array() {
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![])];
        let bytes = build_bytes(&op, &args);
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn empty_string_leaf() {
        let op = OpDesc::single("f", "urn:x", "s", TypeDesc::Scalar(ScalarKind::Str));
        let args = vec![Value::Str(String::new())];
        let bytes = build_bytes(&op, &args);
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        let op = doubles_op();
        let bytes = build_bytes(&op, &[Value::DoubleArray(vec![1.0, 2.0])]);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replace("xsd:double[2", "xsd:double[3");
        assert!(matches!(
            parse_envelope(tampered.as_bytes(), &op),
            Err(DeserError::Shape { .. })
        ));
    }

    #[test]
    fn wrong_operation_rejected() {
        let op = doubles_op();
        let bytes = build_bytes(&op, &[Value::DoubleArray(vec![1.0])]);
        let other = OpDesc::single(
            "different",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        assert!(parse_envelope(&bytes, &other).is_err());
    }

    #[test]
    fn bad_lexical_value_rejected() {
        let op = doubles_op();
        let bytes = build_bytes(&op, &[Value::DoubleArray(vec![1.5])]);
        let tampered = String::from_utf8(bytes).unwrap().replace("1.5", "x.5");
        assert!(matches!(
            parse_envelope(tampered.as_bytes(), &op),
            Err(DeserError::Lexical { .. })
        ));
    }

    #[test]
    fn mapped_regions_cover_values() {
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![0.5, 1.5, 2.5])];
        let bytes = build_bytes(&op, &args);
        let mapped = parse_envelope_mapped(&bytes, &op).unwrap();
        assert_eq!(mapped.args, args);
        assert_eq!(mapped.leaves.len(), 3);
        for (i, leaf) in mapped.leaves.iter().enumerate() {
            let region = &bytes[leaf.region.clone()];
            let text = std::str::from_utf8(region).unwrap();
            assert!(text.starts_with(&format!("{}.5", i)), "{text}");
            assert!(text.contains("</item>"), "{text}");
            assert_eq!(
                leaf.slot,
                LeafSlot {
                    param: 0,
                    leaf: i as u32
                }
            );
        }
        // Regions are disjoint and sorted.
        for w in mapped.leaves.windows(2) {
            assert!(w[0].region.end <= w[1].region.start);
        }
    }

    #[test]
    fn mapped_mio_slots() {
        let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
        let args = vec![Value::Array(vec![mio(1, 2, 3.5), mio(4, 5, 6.5)])];
        let bytes = build_bytes(&op, &args);
        let mapped = parse_envelope_mapped(&bytes, &op).unwrap();
        assert_eq!(mapped.leaves.len(), 6);
        assert_eq!(mapped.leaves[4].slot, LeafSlot { param: 0, leaf: 4 });
        assert_eq!(mapped.leaves[5].kind, ScalarKind::Double);
    }

    #[test]
    fn apply_leaf_array_and_struct() {
        let op = OpDesc::new(
            "mix",
            "urn:x",
            vec![
                ParamDesc {
                    name: "d".into(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                },
                ParamDesc {
                    name: "p".into(),
                    desc: TypeDesc::mio(),
                },
            ],
        );
        let mut args = vec![Value::DoubleArray(vec![1.0, 2.0]), mio(1, 2, 3.0)];
        apply_leaf(
            &mut args,
            &op,
            LeafSlot { param: 0, leaf: 1 },
            Value::Double(9.0),
        )
        .unwrap();
        assert_eq!(args[0], Value::DoubleArray(vec![1.0, 9.0]));
        apply_leaf(
            &mut args,
            &op,
            LeafSlot { param: 1, leaf: 2 },
            Value::Double(7.5),
        )
        .unwrap();
        assert_eq!(args[1], mio(1, 2, 7.5));
        apply_leaf(
            &mut args,
            &op,
            LeafSlot { param: 1, leaf: 0 },
            Value::Int(42),
        )
        .unwrap();
        assert_eq!(args[1], mio(42, 2, 7.5));
        // Out-of-range slot errors.
        assert!(apply_leaf(
            &mut args,
            &op,
            LeafSlot { param: 0, leaf: 5 },
            Value::Double(0.0)
        )
        .is_err());
    }

    #[test]
    fn parses_gsoap_baseline_output() {
        // The deserializer must accept the baselines' envelopes too.
        let mut g = bsoap_baseline::GSoapLike::new();
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![0.125, 7e-12])];
        let bytes = g.serialize(&op, &args).unwrap().to_vec();
        assert_eq!(parse_envelope(&bytes, &op).unwrap(), args);
    }
}
