//! Differential deserialization (paper §6).
//!
//! The server-side mirror of the client's template: keep the previous
//! message's bytes and the byte region of every leaf; when the next
//! message arrives,
//!
//! 1. if it is byte-identical, reuse the previous values outright (the
//!    deserialization analogue of a message content match);
//! 2. if only leaf regions differ — same length, every inter-leaf
//!    *skeleton* byte identical — re-parse just the changed leaves (the
//!    analogue of a perfect structural match). A close tag that moved
//!    within a stuffed field stays inside its leaf's region, so stuffing
//!    on the sender makes this fast path *more* likely, answering the
//!    paper's open question about how stuffing affects server-side
//!    decoding;
//! 3. otherwise fall back to a full parse and adopt the new message as
//!    the reference.

use crate::envelope::{apply_leaf, parse_envelope_mapped, parse_scalar, MappedMessage};
use crate::error::DeserError;
use bsoap_core::{OpDesc, Value};

/// Which path a message took through the differential deserializer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffOutcome {
    /// First message, or structure changed: full parse.
    FullParse,
    /// Byte-identical to the previous message: nothing parsed.
    Identical,
    /// Skeleton matched: only changed leaf regions were re-parsed.
    Differential {
        /// Leaves whose regions changed and were re-parsed.
        reparsed: usize,
        /// Leaves skipped because their bytes were unchanged.
        skipped: usize,
    },
}

/// Cumulative statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeserStats {
    /// Messages handled.
    pub messages: u64,
    /// Full parses (first message + structure changes).
    pub full_parses: u64,
    /// Byte-identical fast paths.
    pub identical: u64,
    /// Differential (leaf-level) parses.
    pub differential: u64,
    /// Leaves re-parsed on differential paths.
    pub leaves_reparsed: u64,
    /// Leaves skipped on differential paths.
    pub leaves_skipped: u64,
}

/// Server-side differential deserializer for one operation.
#[derive(Debug)]
pub struct DiffDeserializer {
    op: OpDesc,
    prev: Option<Prev>,
    stats: DeserStats,
}

#[derive(Debug)]
struct Prev {
    bytes: Vec<u8>,
    mapped: MappedMessage,
}

impl DiffDeserializer {
    /// Deserializer expecting messages for `op`.
    pub fn new(op: OpDesc) -> Self {
        DiffDeserializer {
            op,
            prev: None,
            stats: DeserStats::default(),
        }
    }

    /// The operation this deserializer serves.
    pub fn op(&self) -> &OpDesc {
        &self.op
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeserStats {
        self.stats
    }

    /// Bytes retained as the reference message.
    pub fn retained_bytes(&self) -> usize {
        self.prev.as_ref().map_or(0, |p| p.bytes.len())
    }

    /// Deserialize `bytes`, taking the cheapest sound path. Returns the
    /// argument values and the path taken.
    pub fn deserialize(&mut self, bytes: &[u8]) -> Result<(&[Value], DiffOutcome), DeserError> {
        self.stats.messages += 1;
        let outcome = self.deserialize_inner(bytes)?;
        match outcome {
            DiffOutcome::FullParse => self.stats.full_parses += 1,
            DiffOutcome::Identical => self.stats.identical += 1,
            DiffOutcome::Differential { reparsed, skipped } => {
                self.stats.differential += 1;
                self.stats.leaves_reparsed += reparsed as u64;
                self.stats.leaves_skipped += skipped as u64;
            }
        }
        Ok((
            &self.prev.as_ref().expect("set by inner").mapped.args,
            outcome,
        ))
    }

    fn deserialize_inner(&mut self, bytes: &[u8]) -> Result<DiffOutcome, DeserError> {
        let Some(prev) = &mut self.prev else {
            return self.full_parse(bytes);
        };
        if prev.bytes == bytes {
            return Ok(DiffOutcome::Identical);
        }
        if prev.bytes.len() != bytes.len() {
            return self.full_parse(bytes);
        }

        // Same length: compare the skeleton (everything outside leaf
        // regions). Any mismatch means the structure moved — full parse.
        let mut cursor = 0usize;
        for leaf in &prev.mapped.leaves {
            if prev.bytes[cursor..leaf.region.start] != bytes[cursor..leaf.region.start] {
                return self.full_parse(bytes);
            }
            cursor = leaf.region.end;
        }
        if prev.bytes[cursor..] != bytes[cursor..] {
            return self.full_parse(bytes);
        }

        // Skeleton intact: re-parse only the changed leaf regions.
        let mut reparsed = 0usize;
        let mut skipped = 0usize;
        let mut updates = Vec::new();
        for (i, leaf) in prev.mapped.leaves.iter().enumerate() {
            let old = &prev.bytes[leaf.region.clone()];
            let new = &bytes[leaf.region.clone()];
            if old == new {
                skipped += 1;
                continue;
            }
            let value = reparse_region(new, leaf, &prev.bytes)?;
            updates.push((i, value));
            reparsed += 1;
        }
        for (i, value) in updates {
            let slot = prev.mapped.leaves[i].slot;
            apply_leaf(&mut prev.mapped.args, &self.op, slot, value)?;
        }
        // Adopt the new bytes as the reference (regions keep their spans —
        // the skeleton was proven identical).
        prev.bytes.clear();
        prev.bytes.extend_from_slice(bytes);
        Ok(DiffOutcome::Differential { reparsed, skipped })
    }

    fn full_parse(&mut self, bytes: &[u8]) -> Result<DiffOutcome, DeserError> {
        let mapped = parse_envelope_mapped(bytes, &self.op)?;
        self.prev = Some(Prev {
            bytes: bytes.to_vec(),
            mapped,
        });
        Ok(DiffOutcome::FullParse)
    }
}

/// Re-parse one leaf region: `value</name>pad`. The close-tag name must
/// match the element's open-tag name (skeleton equality only covered
/// bytes outside the region); the open name is read from the retained
/// skeleton, which differential adoptions never change.
fn reparse_region(
    region: &[u8],
    leaf: &crate::envelope::LeafRegion,
    prev_bytes: &[u8],
) -> Result<Value, DeserError> {
    let lt = region
        .iter()
        .position(|&b| b == b'<')
        .ok_or_else(|| DeserError::shape("leaf region lost its close tag"))?;
    let value_text = &region[..lt];
    let rest = &region[lt..];
    // "</name>"
    let expected_name = &prev_bytes[leaf.open_name.clone()];
    if rest.len() < expected_name.len() + 3
        || &rest[..2] != b"</"
        || &rest[2..2 + expected_name.len()] != expected_name
        || rest[2 + expected_name.len()] != b'>'
    {
        return Err(DeserError::shape("leaf region close tag changed"));
    }
    let pad = &rest[3 + expected_name.len()..];
    if !pad.iter().all(|&b| b.is_ascii_whitespace()) {
        return Err(DeserError::shape("non-whitespace after leaf close tag"));
    }
    parse_scalar(value_text, leaf.kind, "leaf region")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::{
        EngineConfig, MessageTemplate, OpDesc, SendTier, TypeDesc, Value, WidthPolicy,
    };

    fn doubles_op() -> OpDesc {
        OpDesc::single(
            "send",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )
    }

    #[test]
    fn identical_message_short_circuits() {
        let op = doubles_op();
        let args = vec![Value::DoubleArray(vec![1.5, 2.5])];
        let bytes = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &args,
        )
        .unwrap()
        .to_bytes();
        let mut d = DiffDeserializer::new(op);
        let (got, o1) = d.deserialize(&bytes).unwrap();
        assert_eq!(o1, DiffOutcome::FullParse);
        assert_eq!(got, &args[..]);
        let (got, o2) = d.deserialize(&bytes).unwrap();
        assert_eq!(o2, DiffOutcome::Identical);
        assert_eq!(got, &args[..]);
        assert_eq!(d.stats().identical, 1);
    }

    #[test]
    fn same_width_value_change_is_differential() {
        // 1.5 -> 9.5: same serialized length, so the template's perfect
        // structural match leaves the skeleton untouched.
        let op = doubles_op();
        let config =
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(vec![1.5, 2.5])]).unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();

        tpl.update_args(&[Value::DoubleArray(vec![9.5, 2.5])])
            .unwrap();
        tpl.flush();
        let (got, outcome) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(
            outcome,
            DiffOutcome::Differential {
                reparsed: 1,
                skipped: 1
            }
        );
        assert_eq!(got, &[Value::DoubleArray(vec![9.5, 2.5])]);
    }

    #[test]
    fn stuffed_fields_keep_differential_alive_across_width_changes() {
        // With max stuffing, any double fits in the field, so even a
        // value with a different serialized length stays differential —
        // the answer to §6's stuffing-effect question.
        let op = doubles_op();
        let config = EngineConfig::paper_default()
            .with_wire_format(bsoap_core::WireFormat::SoapXml)
            .with_width(WidthPolicy::Max);
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(vec![1.5, 2.5])]).unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();

        let new = vec![1.2345678901234567e-300, 2.5];
        let tier = tpl.update_args(&[Value::DoubleArray(new.clone())]).unwrap();
        assert_eq!(tier, SendTier::PerfectStructural);
        tpl.flush();
        let (got, outcome) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(
            outcome,
            DiffOutcome::Differential {
                reparsed: 1,
                skipped: 1
            }
        );
        assert_eq!(got, &[Value::DoubleArray(new)]);
    }

    #[test]
    fn exact_width_length_change_falls_back_to_full_parse() {
        // Without stuffing, a longer value shifts the message: lengths
        // differ, so the deserializer re-parses from scratch — and adopts
        // the new message as its reference.
        let op = doubles_op();
        let config =
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(vec![1.5, 2.5])]).unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();

        let new = vec![1.25e-300, 2.5];
        tpl.update_args(&[Value::DoubleArray(new.clone())]).unwrap();
        tpl.flush();
        let (got, outcome) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(outcome, DiffOutcome::FullParse);
        assert_eq!(got, &[Value::DoubleArray(new)]);
        assert_eq!(d.stats().full_parses, 2);
    }

    #[test]
    fn resize_falls_back_then_recovers() {
        let op = doubles_op();
        let mut tpl = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(vec![1.5, 2.5])],
        )
        .unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();

        // Grow: full parse.
        tpl.update_args(&[Value::DoubleArray(vec![1.5, 2.5, 3.5])])
            .unwrap();
        tpl.flush();
        let (_, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(o, DiffOutcome::FullParse);

        // Same-shape change afterwards: differential again.
        tpl.update_args(&[Value::DoubleArray(vec![1.5, 9.5, 3.5])])
            .unwrap();
        tpl.flush();
        let (got, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(
            o,
            DiffOutcome::Differential {
                reparsed: 1,
                skipped: 2
            }
        );
        assert_eq!(got, &[Value::DoubleArray(vec![1.5, 9.5, 3.5])]);
    }

    #[test]
    fn all_leaves_changed() {
        let op = doubles_op();
        let mut tpl = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(vec![1.5, 2.5, 3.5, 4.5])],
        )
        .unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();
        let new = vec![5.5, 6.5, 7.5, 8.5];
        tpl.update_args(&[Value::DoubleArray(new.clone())]).unwrap();
        tpl.flush();
        let (got, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(
            o,
            DiffOutcome::Differential {
                reparsed: 4,
                skipped: 0
            }
        );
        assert_eq!(got, &[Value::DoubleArray(new)]);
    }

    #[test]
    fn corrupted_leaf_region_is_rejected_not_misparsed() {
        let op = doubles_op();
        let tpl = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(vec![1.5, 2.5])],
        )
        .unwrap();
        let bytes = tpl.to_bytes();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&bytes).unwrap();
        // Replace a value with same-length garbage.
        let tampered = String::from_utf8(bytes).unwrap().replace("1.5", "zzz");
        assert!(d.deserialize(tampered.as_bytes()).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let op = doubles_op();
        let mut tpl = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(vec![1.5, 2.5])],
        )
        .unwrap();
        let mut d = DiffDeserializer::new(op);
        d.deserialize(&tpl.to_bytes()).unwrap();
        d.deserialize(&tpl.to_bytes()).unwrap();
        tpl.update_args(&[Value::DoubleArray(vec![7.5, 2.5])])
            .unwrap();
        tpl.flush();
        d.deserialize(&tpl.to_bytes()).unwrap();
        let s = d.stats();
        assert_eq!(s.messages, 3);
        assert_eq!(s.full_parses, 1);
        assert_eq!(s.identical, 1);
        assert_eq!(s.differential, 1);
        assert_eq!(s.leaves_reparsed, 1);
        assert_eq!(s.leaves_skipped, 1);
        assert!(d.retained_bytes() > 0);
    }
}
