//! Deserialization error type.

use bsoap_convert::parse::ParseError;
use bsoap_xml::{EscapeError, PullError};
use std::fmt;

/// Anything that can go wrong turning envelope bytes into values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeserError {
    /// The XML tokenizer rejected the input.
    Xml(PullError),
    /// A lexical value failed to parse.
    Lexical {
        /// What was being parsed (element name or context).
        at: String,
        /// The conversion failure.
        err: ParseError,
    },
    /// An entity reference failed to resolve.
    Escape(EscapeError),
    /// The document does not match the expected operation shape.
    Shape {
        /// Human-readable description of the mismatch.
        why: String,
    },
    /// A compact-binary envelope was malformed: truncated, an unknown
    /// tag byte where a record was expected, a length prefix pointing
    /// past the end of the message, or trailing garbage after `END`.
    Binary {
        /// Human-readable description of the framing violation.
        why: String,
    },
}

impl DeserError {
    pub(crate) fn shape(why: impl Into<String>) -> Self {
        DeserError::Shape { why: why.into() }
    }

    pub(crate) fn binary(why: impl Into<String>) -> Self {
        DeserError::Binary { why: why.into() }
    }
}

impl fmt::Display for DeserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeserError::Xml(e) => write!(f, "XML error: {e}"),
            DeserError::Lexical { at, err } => write!(f, "bad lexical value at {at}: {err:?}"),
            DeserError::Escape(e) => write!(f, "bad entity reference: {e:?}"),
            DeserError::Shape { why } => write!(f, "message shape mismatch: {why}"),
            DeserError::Binary { why } => write!(f, "malformed binary envelope: {why}"),
        }
    }
}

impl std::error::Error for DeserError {}

impl From<PullError> for DeserError {
    fn from(e: PullError) -> Self {
        DeserError::Xml(e)
    }
}

impl From<EscapeError> for DeserError {
    fn from(e: EscapeError) -> Self {
        DeserError::Escape(e)
    }
}
