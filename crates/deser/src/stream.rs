//! Incremental pull-parse of a streamed single-array envelope.
//!
//! The receive-side dual of chunk overlaying (§3.3): where the overlay
//! sender's memory is bounded by one window fragment, the
//! [`StreamingDeserializer`]'s memory is bounded by one *item unit* — it
//! consumes decoded body slices as a transport hands them over (e.g. from
//! `bsoap-transport`'s `ChunkedBodyReader`), emits each array element the
//! moment its closing tag arrives, and never materializes the envelope.
//! The carry buffer holds only the bytes of whichever syntactic unit is
//! currently split across slices (prologue, one `<item>`, or epilogue),
//! and a hard cap turns a unit that never completes into a typed error
//! instead of unbounded buffering.
//!
//! Scope matches the overlay sender: operations with exactly one array
//! parameter of scalar or flat-struct items. The depth scanner that
//! delimits item units relies on serialized text never containing a raw
//! `<` — guaranteed for output of this engine (and any conforming XML
//! writer), which escapes `<` in character data.

use crate::envelope::parse_scalar;
use crate::error::DeserError;
use bsoap_convert::parse as lex;
use bsoap_core::{OpDesc, TypeDesc, Value};
use bsoap_xml::{Event, PullParser};

/// Default cap on the carry buffer — the largest prologue, single item,
/// or epilogue the streaming parser will reassemble across slices.
pub const DEFAULT_MAX_CARRY: usize = 1 << 20;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StreamState {
    /// Waiting for the envelope prologue through the array open tag.
    Prologue,
    /// Emitting `<item>` units until the array close tag.
    Items,
    /// Accumulating the trailing close tags.
    Epilogue,
}

/// Summary returned by [`StreamingDeserializer::finish`].
#[derive(Clone, Copy, Debug)]
pub struct StreamSummary {
    /// Array elements emitted.
    pub items: usize,
    /// Length declared by `SOAP-ENC:arrayType="T[N]"`.
    pub declared: usize,
    /// Largest number of bytes ever held in the carry buffer — the
    /// receiver-side parse-memory bound, flat in array size.
    pub peak_carry_bytes: usize,
}

/// Incremental deserializer for one streamed single-array message.
///
/// Feed body slices with [`push`](Self::push) (any fragmentation — the
/// slices need not align with XML structure), then call
/// [`finish`](Self::finish) once the transport reports the body complete.
/// Each completed array element is handed to the `push` callback as
/// `(index, Value)` in document order.
#[derive(Debug)]
pub struct StreamingDeserializer {
    param_name: String,
    item_desc: TypeDesc,
    state: StreamState,
    carry: Vec<u8>,
    /// Declared array length, known once the prologue parses.
    declared: usize,
    seen: usize,
    max_carry: usize,
    peak_carry: usize,
    /// Tag names the prologue must contain (envelope, body, operation).
    op_tag: String,
}

impl StreamingDeserializer {
    /// Streaming parser for `op`, which must have exactly one array
    /// parameter (the overlay sender's contract).
    pub fn new(op: &OpDesc) -> Result<Self, DeserError> {
        Self::with_max_carry(op, DEFAULT_MAX_CARRY)
    }

    /// [`StreamingDeserializer::new`] with an explicit carry cap: a
    /// prologue, single item, or epilogue that does not complete within
    /// `max_carry` bytes fails instead of buffering further.
    pub fn with_max_carry(op: &OpDesc, max_carry: usize) -> Result<Self, DeserError> {
        if op.params.len() != 1 {
            return Err(DeserError::shape(
                "streaming deserialization requires a single-parameter operation",
            ));
        }
        let param = &op.params[0];
        let TypeDesc::Array { item } = &param.desc else {
            return Err(DeserError::shape(
                "streaming deserialization requires an array parameter",
            ));
        };
        Ok(StreamingDeserializer {
            param_name: param.name.clone(),
            item_desc: item.as_ref().clone(),
            state: StreamState::Prologue,
            carry: Vec::with_capacity(4096),
            declared: 0,
            seen: 0,
            max_carry: max_carry.max(64),
            peak_carry: 0,
            op_tag: format!("ns1:{}", op.name),
        })
    }

    /// Declared array length (`0` until the prologue has parsed).
    pub fn declared_len(&self) -> usize {
        self.declared
    }

    /// Elements emitted so far.
    pub fn items_seen(&self) -> usize {
        self.seen
    }

    /// Largest carry-buffer residency so far (the parse-memory bound).
    pub fn peak_carry_bytes(&self) -> usize {
        self.peak_carry
    }

    /// Consume the next body slice, invoking `on_item` for every array
    /// element that completes within it.
    pub fn push(
        &mut self,
        bytes: &[u8],
        mut on_item: impl FnMut(usize, Value) -> Result<(), DeserError>,
    ) -> Result<(), DeserError> {
        if self.carry.len() + bytes.len() > self.max_carry {
            return Err(DeserError::shape(
                "streaming carry buffer cap exceeded (unit never completes)",
            ));
        }
        self.carry.extend_from_slice(bytes);
        self.peak_carry = self.peak_carry.max(self.carry.len());
        let mut pos = 0usize;
        loop {
            match self.state {
                StreamState::Prologue => {
                    let Some(end) = self.try_prologue(pos)? else {
                        break;
                    };
                    pos = end;
                    self.state = StreamState::Items;
                }
                StreamState::Items => {
                    let rest = &self.carry[pos..];
                    let start = match rest.iter().position(|&b| !b.is_ascii_whitespace()) {
                        Some(p) => p,
                        None => {
                            // All whitespace: consumable, nothing to keep.
                            pos = self.carry.len();
                            break;
                        }
                    };
                    let unit = &rest[start..];
                    if looks_like_close(unit, self.param_name.as_bytes()) {
                        // `</param>`: the item run is over.
                        pos += start + 2 + self.param_name.len() + 1;
                        self.state = StreamState::Epilogue;
                        continue;
                    }
                    match find_unit_end(unit)? {
                        Some(len) => {
                            let v = parse_item_unit(&unit[..len], &self.item_desc)?;
                            on_item(self.seen, v)?;
                            self.seen += 1;
                            if self.declared != 0 && self.seen > self.declared {
                                return Err(DeserError::shape(format!(
                                    "array {} declares {} elements but streamed more",
                                    self.param_name, self.declared
                                )));
                            }
                            pos += start + len;
                        }
                        None => break,
                    }
                }
                StreamState::Epilogue => {
                    // Keep accumulating (bounded by max_carry); validated
                    // at finish.
                    break;
                }
            }
        }
        // Drop the consumed prefix; what remains is the partial unit (or,
        // in the epilogue, the close tags awaiting `finish`).
        self.carry.drain(..pos);
        Ok(())
    }

    /// Validate the epilogue and element count once the transport reports
    /// the body complete.
    pub fn finish(self) -> Result<StreamSummary, DeserError> {
        if self.state != StreamState::Epilogue {
            return Err(DeserError::shape("body ended before the array close tag"));
        }
        // Everything after `</param>` must be exactly the operation,
        // body, and envelope close tags (whitespace tolerated).
        let mut rest: &[u8] = &self.carry;
        for tag in [
            format!("</{}>", self.op_tag),
            "</SOAP-ENV:Body>".to_owned(),
            "</SOAP-ENV:Envelope>".to_owned(),
        ] {
            rest = expect_tag(rest, tag.as_bytes())?;
        }
        if !rest.iter().all(|b| b.is_ascii_whitespace()) {
            return Err(DeserError::shape("trailing content after envelope close"));
        }
        if self.seen != self.declared {
            return Err(DeserError::shape(format!(
                "array {} declares {} elements but contains {}",
                self.param_name, self.declared, self.seen
            )));
        }
        Ok(StreamSummary {
            items: self.seen,
            declared: self.declared,
            peak_carry_bytes: self.peak_carry,
        })
    }

    /// Try to consume the prologue (everything through the array open
    /// tag) starting at `pos`. Returns the end offset when complete.
    fn try_prologue(&mut self, pos: usize) -> Result<Option<usize>, DeserError> {
        let buf = &self.carry[pos..];
        // The array open tag is the last tag of the prologue; it is
        // complete once `<{param} ... >` is closed.
        let mut probe = Vec::with_capacity(self.param_name.len() + 1);
        probe.push(b'<');
        probe.extend_from_slice(self.param_name.as_bytes());
        let Some(open_at) = find(buf, &probe) else {
            return Ok(None);
        };
        let Some(gt) = buf[open_at..].iter().position(|&b| b == b'>') else {
            return Ok(None);
        };
        let head = &buf[..open_at];
        for tag in [
            "<SOAP-ENV:Envelope",
            "<SOAP-ENV:Body",
            &format!("<{}", self.op_tag),
        ] {
            if find(head, tag.as_bytes()).is_none() {
                return Err(DeserError::shape(format!(
                    "prologue missing {tag} before the array open tag"
                )));
            }
        }
        let open_tag = &buf[open_at..open_at + gt + 1];
        self.declared = declared_len(open_tag)?;
        Ok(Some(pos + open_at + gt + 1))
    }
}

/// Whether `buf` begins with the complete close tag `</name>`.
fn looks_like_close(buf: &[u8], name: &[u8]) -> bool {
    let need = 2 + name.len() + 1;
    buf.len() >= need
        && buf.starts_with(b"</")
        && &buf[2..2 + name.len()] == name
        && buf[2 + name.len()] == b'>'
}

/// Expect `tag` at the start of `buf` (after optional whitespace);
/// returns the remainder.
fn expect_tag<'a>(buf: &'a [u8], tag: &[u8]) -> Result<&'a [u8], DeserError> {
    let start = buf
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(buf.len());
    let rest = &buf[start..];
    if rest.starts_with(tag) {
        Ok(&rest[tag.len()..])
    } else {
        Err(DeserError::shape(format!(
            "epilogue missing {}",
            String::from_utf8_lossy(tag)
        )))
    }
}

/// Declared length from an array open tag's `SOAP-ENC:arrayType="T[N]"`.
fn declared_len(open_tag: &[u8]) -> Result<usize, DeserError> {
    let attr = find(open_tag, b"SOAP-ENC:arrayType")
        .ok_or_else(|| DeserError::shape("array element missing SOAP-ENC:arrayType"))?;
    let rest = &open_tag[attr..];
    let open = find(rest, b"[").ok_or_else(|| DeserError::shape("arrayType missing '['"))?;
    let close =
        find(&rest[open..], b"]").ok_or_else(|| DeserError::shape("arrayType missing ']'"))?;
    lex::parse_i32(lex::trim_xml_ws(&rest[open + 1..open + close]))
        .map(|n| n as usize)
        .map_err(|err| DeserError::Lexical {
            at: "arrayType length".into(),
            err,
        })
}

/// Length of the complete element starting at `buf[0] == b'<'`, or `None`
/// if the unit is still split across slices. Tag-depth scan: character
/// data never contains a raw `<` (the serializer escapes it), so every
/// `<` opens or closes an element.
fn find_unit_end(buf: &[u8]) -> Result<Option<usize>, DeserError> {
    if buf.first() != Some(&b'<') {
        return Err(DeserError::shape(format!(
            "expected an element, found {:?}",
            String::from_utf8_lossy(&buf[..buf.len().min(16)])
        )));
    }
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < buf.len() {
        if buf[i] != b'<' {
            i += 1;
            continue;
        }
        if i + 1 >= buf.len() {
            return Ok(None);
        }
        let closing = buf[i + 1] == b'/';
        let Some(gt) = buf[i..].iter().position(|&b| b == b'>') else {
            return Ok(None);
        };
        let gt = i + gt;
        if closing {
            depth = depth
                .checked_sub(1)
                .ok_or_else(|| DeserError::shape("unbalanced close tag in array item"))?;
            if depth == 0 {
                return Ok(Some(gt + 1));
            }
        } else {
            depth += 1;
        }
        i = gt + 1;
    }
    Ok(None)
}

/// Parse one complete `<item>…</item>` unit into a [`Value`].
fn parse_item_unit(bytes: &[u8], desc: &TypeDesc) -> Result<Value, DeserError> {
    let mut parser = PullParser::new(bytes);
    let v = parse_element(&mut parser, bytes, b"item", desc)?;
    match next_significant(&mut parser, bytes)? {
        Event::Eof => Ok(v),
        other => Err(DeserError::shape(format!(
            "trailing content in array item: {other:?}"
        ))),
    }
}

/// Next event skipping the XML declaration, comments, and whitespace text.
fn next_significant(parser: &mut PullParser<'_>, input: &[u8]) -> Result<Event, DeserError> {
    loop {
        let e = parser.next_event()?;
        match &e {
            Event::Decl { .. } | Event::Comment { .. } => continue,
            Event::Text { range } => {
                if input[range.clone()].iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                return Ok(e);
            }
            _ => return Ok(e),
        }
    }
}

/// Recursive-descent parse of one element named `name` of shape `desc`.
fn parse_element(
    parser: &mut PullParser<'_>,
    input: &[u8],
    name: &[u8],
    desc: &TypeDesc,
) -> Result<Value, DeserError> {
    match next_significant(parser, input)? {
        Event::Start { name: n, .. } => {
            if &input[n.clone()] != name {
                return Err(DeserError::shape(format!(
                    "expected <{}>, found <{}>",
                    String::from_utf8_lossy(name),
                    String::from_utf8_lossy(&input[n])
                )));
            }
        }
        other => {
            return Err(DeserError::shape(format!(
                "expected <{}>, found {other:?}",
                String::from_utf8_lossy(name)
            )))
        }
    }
    match desc {
        TypeDesc::Scalar(kind) => {
            // Optional text, then the close tag.
            let mut raw: &[u8] = b"";
            let ev = parser.next_event()?;
            let ev = if let Event::Text { range } = &ev {
                raw = &input[range.clone()];
                parser.next_event()?
            } else {
                ev
            };
            match ev {
                Event::End { name: n, .. } if &input[n.clone()] == name => {}
                other => {
                    return Err(DeserError::shape(format!(
                        "expected </{}>, found {other:?}",
                        String::from_utf8_lossy(name)
                    )))
                }
            }
            parse_scalar(raw, *kind, &String::from_utf8_lossy(name))
        }
        TypeDesc::Struct { fields, .. } => {
            let mut vals = Vec::with_capacity(fields.len());
            for (fname, fdesc) in fields {
                vals.push(parse_element(parser, input, fname.as_bytes(), fdesc)?);
            }
            match next_significant(parser, input)? {
                Event::End { name: n, .. } if &input[n.clone()] == name => {}
                other => {
                    return Err(DeserError::shape(format!(
                        "expected </{}>, found {other:?}",
                        String::from_utf8_lossy(name)
                    )))
                }
            }
            Ok(Value::Struct(vals))
        }
        TypeDesc::Array { .. } => Err(DeserError::shape("nested arrays are not supported")),
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}
