//! Compact-binary envelope decoding (the receiving half of the
//! negotiated binary lane, DESIGN §3.15).
//!
//! The decoder is schema-directed like [`crate::envelope`]: given the
//! [`OpDesc`] a service expects, it walks the tagged records of a
//! `BSB1` envelope into [`Value`]s. Wherever a tag or marker byte is
//! expected it first skips any run of pad bytes (`0x20`) — the stuffing
//! a shrunk string region leaves behind, exactly as inter-tag whitespace
//! does on the XML lane. No tag byte collides with the pad, so the skip
//! is unambiguous.
//!
//! Every malformed input — truncation, an unknown tag, a length prefix
//! lying about the remaining bytes, trailing garbage — surfaces as a
//! typed [`DeserError`]; the decoder never panics and never reads past
//! the buffer (fuzzed in `tests/binary_fuzz.rs`).

use crate::diff::DiffOutcome;
use crate::error::DeserError;
use bsoap_convert::ScalarKind;
use bsoap_core::wire;
use bsoap_core::{OpDesc, TypeDesc, Value};

/// Parse a compact-binary envelope into the operation's argument values.
pub fn parse_binary_envelope(bytes: &[u8], op: &OpDesc) -> Result<Vec<Value>, DeserError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let magic = c.take(wire::MAGIC.len(), "magic")?;
    if magic != wire::MAGIC {
        return Err(DeserError::binary("missing BSB1 magic"));
    }
    let name_len = u16::from_le_bytes(c.take(2, "op-name length")?.try_into().unwrap()) as usize;
    let name = c.take(name_len, "op name")?;
    if name != op.name.as_bytes() {
        return Err(DeserError::shape(format!(
            "operation name mismatch: envelope says {:?}, expected {:?}",
            String::from_utf8_lossy(name),
            op.name
        )));
    }
    let param_count = c.byte("param count")? as usize;
    if param_count != op.params.len() {
        return Err(DeserError::shape(format!(
            "param count mismatch: envelope says {param_count}, schema has {}",
            op.params.len()
        )));
    }
    let mut args = Vec::with_capacity(op.params.len());
    for param in &op.params {
        args.push(parse_value(&mut c, &param.desc)?);
    }
    c.skip_pads();
    if c.byte("END marker")? != wire::END {
        return Err(DeserError::binary("expected END marker"));
    }
    c.skip_pads();
    if c.pos != c.buf.len() {
        return Err(DeserError::binary(format!(
            "{} trailing bytes after END",
            c.buf.len() - c.pos
        )));
    }
    Ok(args)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DeserError> {
        if self.remaining() < n {
            return Err(DeserError::binary(format!(
                "truncated: {what} needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn byte(&mut self, what: &str) -> Result<u8, DeserError> {
        Ok(self.take(1, what)?[0])
    }

    /// Skip pad bytes; legal exactly where a tag or marker is expected.
    fn skip_pads(&mut self) {
        while self.pos < self.buf.len() && self.buf[self.pos] == wire::PAD {
            self.pos += 1;
        }
    }
}

fn parse_value(c: &mut Cursor<'_>, desc: &TypeDesc) -> Result<Value, DeserError> {
    match desc {
        TypeDesc::Scalar(kind) => parse_leaf(c, *kind),
        TypeDesc::Struct { fields, .. } => {
            c.skip_pads();
            if c.byte("STRUCT_BEGIN")? != wire::STRUCT_BEGIN {
                return Err(DeserError::binary("expected STRUCT_BEGIN"));
            }
            let mut vals = Vec::with_capacity(fields.len());
            for (_, fdesc) in fields {
                vals.push(parse_value(c, fdesc)?);
            }
            c.skip_pads();
            if c.byte("STRUCT_END")? != wire::STRUCT_END {
                return Err(DeserError::binary("expected STRUCT_END"));
            }
            Ok(Value::Struct(vals))
        }
        TypeDesc::Array { item } => parse_array(c, item),
    }
}

fn parse_array(c: &mut Cursor<'_>, item: &TypeDesc) -> Result<Value, DeserError> {
    c.skip_pads();
    if c.byte("ARRAY_BEGIN")? != wire::ARRAY_BEGIN {
        return Err(DeserError::binary("expected ARRAY_BEGIN"));
    }
    let Value::Int(len) = parse_leaf(c, ScalarKind::Int)? else {
        unreachable!("int leaf parses to Int");
    };
    if len < 0 {
        return Err(DeserError::binary(format!("negative array length {len}")));
    }
    let len = len as usize;
    // A length prefix cannot promise more elements than the remaining
    // bytes could hold — each element costs at least one tag byte. This
    // bounds allocation before the element loop touches anything.
    if len > c.remaining() {
        return Err(DeserError::binary(format!(
            "array length {len} exceeds the {} bytes left in the message",
            c.remaining()
        )));
    }
    let value = match item {
        TypeDesc::Scalar(ScalarKind::Double) => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let Value::Double(x) = parse_leaf(c, ScalarKind::Double)? else {
                    unreachable!("double leaf parses to Double");
                };
                v.push(x);
            }
            Value::DoubleArray(v)
        }
        TypeDesc::Scalar(ScalarKind::Int) => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let Value::Int(x) = parse_leaf(c, ScalarKind::Int)? else {
                    unreachable!("int leaf parses to Int");
                };
                v.push(x);
            }
            Value::IntArray(v)
        }
        _ => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(parse_value(c, item)?);
            }
            Value::Array(v)
        }
    };
    c.skip_pads();
    if c.byte("ARRAY_END")? != wire::ARRAY_END {
        return Err(DeserError::binary("expected ARRAY_END"));
    }
    Ok(value)
}

fn parse_leaf(c: &mut Cursor<'_>, kind: ScalarKind) -> Result<Value, DeserError> {
    c.skip_pads();
    let tag = c.byte("leaf tag")?;
    let expected = match kind {
        ScalarKind::Int => wire::TAG_INT,
        ScalarKind::Long => wire::TAG_LONG,
        ScalarKind::Double => wire::TAG_DOUBLE,
        ScalarKind::Bool => wire::TAG_BOOL,
        ScalarKind::Str => wire::TAG_STR,
    };
    if tag != expected {
        return Err(DeserError::binary(format!(
            "leaf tag {tag:#04x} where {kind:?} ({expected:#04x}) was expected"
        )));
    }
    Ok(match kind {
        ScalarKind::Int => Value::Int(i32::from_le_bytes(
            c.take(4, "int payload")?.try_into().unwrap(),
        )),
        ScalarKind::Long => Value::Long(i64::from_le_bytes(
            c.take(8, "long payload")?.try_into().unwrap(),
        )),
        ScalarKind::Double => Value::Double(f64::from_bits(u64::from_le_bytes(
            c.take(8, "double payload")?.try_into().unwrap(),
        ))),
        ScalarKind::Bool => match c.byte("bool payload")? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            b => return Err(DeserError::binary(format!("bool payload {b:#04x}"))),
        },
        ScalarKind::Str => {
            let n = u32::from_le_bytes(c.take(4, "string length")?.try_into().unwrap()) as usize;
            if n > c.remaining() {
                return Err(DeserError::binary(format!(
                    "string length {n} exceeds the {} bytes left in the message",
                    c.remaining()
                )));
            }
            let raw = c.take(n, "string payload")?;
            let s = std::str::from_utf8(raw)
                .map_err(|e| DeserError::binary(format!("string payload not UTF-8: {e}")))?;
            Value::Str(s.to_owned())
        }
    })
}

/// Differential deserializer for the binary lane: the byte-identical
/// fast path mirrors [`crate::DiffDeserializer`]'s content-match
/// shortcut; anything else is a full decode. Binary decoding is already
/// a single schema walk over fixed-width records — there is no per-leaf
/// lexical parse worth skipping, so the leaf-level differential tier
/// intentionally does not exist on this lane.
#[derive(Debug)]
pub struct BinaryDiffDeserializer {
    op: OpDesc,
    prev_bytes: Vec<u8>,
    prev_args: Vec<Value>,
    stats: crate::DeserStats,
}

impl BinaryDiffDeserializer {
    /// Deserializer expecting binary envelopes for `op`.
    pub fn new(op: OpDesc) -> Self {
        BinaryDiffDeserializer {
            op,
            prev_bytes: Vec::new(),
            prev_args: Vec::new(),
            stats: crate::DeserStats::default(),
        }
    }

    /// The operation this deserializer serves.
    pub fn op(&self) -> &OpDesc {
        &self.op
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> crate::DeserStats {
        self.stats
    }

    /// Bytes retained as the reference message.
    pub fn retained_bytes(&self) -> usize {
        self.prev_bytes.len()
    }

    /// Decode `bytes`, short-circuiting when they are identical to the
    /// previous message.
    pub fn deserialize(&mut self, bytes: &[u8]) -> Result<(&[Value], DiffOutcome), DeserError> {
        self.stats.messages += 1;
        if !self.prev_bytes.is_empty() && self.prev_bytes == bytes {
            self.stats.identical += 1;
            return Ok((&self.prev_args, DiffOutcome::Identical));
        }
        let args = parse_binary_envelope(bytes, &self.op)?;
        self.stats.full_parses += 1;
        self.prev_bytes.clear();
        self.prev_bytes.extend_from_slice(bytes);
        self.prev_args = args;
        Ok((&self.prev_args, DiffOutcome::FullParse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_core::value::mio;
    use bsoap_core::{EngineConfig, MessageTemplate, WireFormat};

    fn bin_cfg() -> EngineConfig {
        EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary)
    }

    fn mios_op() -> OpDesc {
        OpDesc::single(
            "sendMios",
            "urn:mesh",
            "mios",
            TypeDesc::array_of(TypeDesc::mio()),
        )
    }

    #[test]
    fn round_trips_every_scalar_kind() {
        let op = OpDesc::new(
            "kinds",
            "urn:t",
            vec![
                bsoap_core::ParamDesc {
                    name: "i".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Int),
                },
                bsoap_core::ParamDesc {
                    name: "l".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Long),
                },
                bsoap_core::ParamDesc {
                    name: "d".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Double),
                },
                bsoap_core::ParamDesc {
                    name: "b".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Bool),
                },
                bsoap_core::ParamDesc {
                    name: "s".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Str),
                },
            ],
        );
        let args = vec![
            Value::Int(i32::MIN),
            Value::Long(i64::MAX),
            Value::Double(-0.0),
            Value::Bool(true),
            // Unescaped on the binary lane: markup characters survive.
            Value::Str("a<b&c>\"d\"".to_owned()),
        ];
        let bytes = MessageTemplate::build(bin_cfg(), &op, &args)
            .unwrap()
            .to_bytes();
        let got = parse_binary_envelope(&bytes, &op).unwrap();
        assert_eq!(got, args);
    }

    #[test]
    fn round_trips_struct_arrays_and_padded_strings() {
        let op = mios_op();
        let args = vec![Value::Array(vec![mio(1, 2, 0.5), mio(-3, 4, f64::NAN)])];
        let mut tpl = MessageTemplate::build(bin_cfg(), &op, &args).unwrap();
        let got = parse_binary_envelope(&tpl.to_bytes(), &op).unwrap();
        // NaN != NaN under PartialEq; compare the bit pattern by hand.
        let Value::Array(elems) = &got[0] else {
            panic!()
        };
        assert_eq!(elems.len(), 2);
        assert_eq!(elems[0], mio(1, 2, 0.5));

        // A resize must stay decodable (length leaf rewritten in place).
        tpl.update_args(&[Value::Array(vec![mio(9, 9, 9.0)])])
            .unwrap();
        tpl.flush();
        let got = parse_binary_envelope(&tpl.to_bytes(), &op).unwrap();
        assert_eq!(got[0], Value::Array(vec![mio(9, 9, 9.0)]));
    }

    #[test]
    fn shrunk_string_pads_are_skipped() {
        let op = OpDesc::single("tag", "urn:t", "s", TypeDesc::Scalar(ScalarKind::Str));
        let mut tpl =
            MessageTemplate::build(bin_cfg(), &op, &[Value::Str("abcdef".into())]).unwrap();
        tpl.update_args(&[Value::Str("ab".into())]).unwrap();
        tpl.flush();
        let bytes = tpl.to_bytes();
        // The shrunk region leaves a pad run before END.
        assert!(bytes.windows(2).any(|w| w == [wire::PAD, wire::PAD]));
        let got = parse_binary_envelope(&bytes, &op).unwrap();
        assert_eq!(got, vec![Value::Str("ab".into())]);
    }

    #[test]
    fn diff_wrapper_short_circuits_identical() {
        let op = mios_op();
        let mut tpl =
            MessageTemplate::build(bin_cfg(), &op, &[Value::Array(vec![mio(1, 2, 3.0)])]).unwrap();
        let mut d = BinaryDiffDeserializer::new(op);
        let (_, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(o, DiffOutcome::FullParse);
        let (_, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(o, DiffOutcome::Identical);
        tpl.update_args(&[Value::Array(vec![mio(1, 2, 4.0)])])
            .unwrap();
        tpl.flush();
        let (got, o) = d.deserialize(&tpl.to_bytes()).unwrap();
        assert_eq!(o, DiffOutcome::FullParse);
        assert_eq!(got, &[Value::Array(vec![mio(1, 2, 4.0)])]);
        assert_eq!(d.stats().messages, 3);
        assert!(d.retained_bytes() > 0);
    }

    #[test]
    fn malformed_envelopes_are_typed_errors() {
        let op = mios_op();
        let bytes = MessageTemplate::build(bin_cfg(), &op, &[Value::Array(vec![mio(1, 2, 3.0)])])
            .unwrap()
            .to_bytes();

        // Truncations at every prefix length: error, never panic.
        for n in 0..bytes.len() {
            assert!(parse_binary_envelope(&bytes[..n], &op).is_err(), "len {n}");
        }
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            parse_binary_envelope(&bad, &op),
            Err(DeserError::Binary { .. })
        ));
        // Length prefix lying about the element count.
        let mut bad = bytes.clone();
        let len_pos = bad.iter().position(|&b| b == wire::TAG_INT).unwrap() + 1;
        bad[len_pos..len_pos + 4].copy_from_slice(&i32::MAX.to_le_bytes());
        assert!(matches!(
            parse_binary_envelope(&bad, &op),
            Err(DeserError::Binary { .. })
        ));
        // Trailing garbage after END.
        let mut bad = bytes.clone();
        bad.push(0xFF);
        assert!(matches!(
            parse_binary_envelope(&bad, &op),
            Err(DeserError::Binary { .. })
        ));
        // Wrong operation for the schema.
        let other = OpDesc::single("other", "urn:t", "v", TypeDesc::Scalar(ScalarKind::Int));
        assert!(matches!(
            parse_binary_envelope(&bytes, &other),
            Err(DeserError::Shape { .. })
        ));
    }
}
