//! # bsoap-deser — SOAP deserialization, full and differential
//!
//! The receiving half of the stack. [`envelope`] is a schema-directed
//! deserializer: given the [`OpDesc`](bsoap_core::OpDesc) a service
//! expects, it parses an incoming SOAP 1.1 envelope into
//! [`Value`](bsoap_core::Value)s, tolerating the whitespace padding that
//! differential *serialization* deliberately leaves behind.
//!
//! [`diff`] implements the paper's closing suggestion (§6): "storing
//! messages at a SOAP server could help … by suggesting the structure of
//! future message arrivals. This could help avoid complete server-side
//! parsing and improve performance, through **differential
//! deserialization**." A [`DiffDeserializer`] keeps the previous message's
//! bytes plus a map from every leaf to its byte region; when the next
//! message lands with identical skeleton bytes (all tags in the same
//! places), only the leaf regions whose bytes changed are re-parsed —
//! the mirror image of the client's perfect structural match.
//!
//! ```
//! use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value, WidthPolicy};
//! use bsoap_convert::ScalarKind;
//! use bsoap_deser::{DiffDeserializer, DiffOutcome};
//!
//! let op = OpDesc::single(
//!     "push", "urn:x", "xs",
//!     TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
//! );
//! // Stuffed sender: value changes never move tags, so the receiver's
//! // differential path stays available.
//! let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml).with_width(WidthPolicy::Max);
//! let mut tpl =
//!     MessageTemplate::build(config, &op, &[Value::DoubleArray(vec![1.5, 2.5])]).unwrap();
//!
//! let mut server = DiffDeserializer::new(op);
//! let (_, o) = server.deserialize(&tpl.to_bytes()).unwrap();
//! assert_eq!(o, DiffOutcome::FullParse); // first arrival
//!
//! tpl.update_args(&[Value::DoubleArray(vec![9.5, 2.5])]).unwrap();
//! tpl.flush();
//! let (args, o) = server.deserialize(&tpl.to_bytes()).unwrap();
//! assert_eq!(o, DiffOutcome::Differential { reparsed: 1, skipped: 1 });
//! assert_eq!(args[0], Value::DoubleArray(vec![9.5, 2.5]));
//! ```

pub mod binary;
pub mod diff;
pub mod envelope;
pub mod error;
pub mod stream;

pub use binary::{parse_binary_envelope, BinaryDiffDeserializer};
pub use diff::{DeserStats, DiffDeserializer, DiffOutcome};
pub use envelope::{parse_envelope, parse_envelope_mapped, LeafRegion, MappedMessage};
pub use error::DeserError;
pub use stream::{StreamSummary, StreamingDeserializer};
