//! Maximum-serialized-width metadata and field padding.
//!
//! The paper's *stuffing* technique (§3.2, §4.4) allocates each field its
//! type's maximum possible serialized width so updates never shift. These
//! are the widths the paper quotes:
//!
//! * `xsd:int` — 11 characters (`-2147483648`),
//! * `xsd:double` — 24 characters (e.g. `-2.2250738585072014E-308`),
//! * a MIO (`[int, int, double]`, §4.1) — 46 characters of values
//!   (11 + 11 + 24), with a minimum of 3 (`1`,`1`,`1`).
//!
//! Strings have no maximum ("there is no maximum size string" — paper
//! footnote 2) and therefore can never be stuffed.

/// Maximum serialized width of an `xsd:int` (`i32`): `-2147483648`.
pub const INT_MAX_WIDTH: usize = 11;
/// Minimum serialized width of an `xsd:int`: a single digit.
pub const INT_MIN_WIDTH: usize = 1;
/// Maximum serialized width of an `xsd:long` (`i64`): `-9223372036854775808`.
pub const LONG_MAX_WIDTH: usize = 20;
/// Maximum serialized width of an `xsd:double` produced by [`crate::dtoa`].
///
/// Worst case is sign + 17 significant digits + decimal point + `E-` + a
/// three-digit exponent, e.g. `-2.2250738585072011E-308`.
pub const DOUBLE_MAX_WIDTH: usize = 24;
/// Minimum serialized width of an `xsd:double`: a single digit (paper §4.3:
/// "the smallest possible double (one character)").
pub const DOUBLE_MIN_WIDTH: usize = 1;
/// Maximum serialized width of an `xsd:boolean` (`false`).
pub const BOOL_MAX_WIDTH: usize = 5;
/// Maximum *value* width of a mesh interface object `[int, int, double]`
/// (paper §4.3: "the largest possible MIO (46 characters)").
pub const MIO_MAX_WIDTH: usize = INT_MAX_WIDTH + INT_MAX_WIDTH + DOUBLE_MAX_WIDTH;
/// Minimum *value* width of a MIO (paper §4.3: "the smallest possible MIO
/// (three characters)").
pub const MIO_MIN_WIDTH: usize = 3;

/// The scalar leaf kinds the serialization engine distinguishes.
///
/// Each kind knows its maximum serialized width — the datum the paper's DUT
/// table stores via "a pointer to a data structure that contains information
/// about the data item's type, including the maximum size of its serialized
/// form" (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// `xsd:int` (`i32`).
    Int,
    /// `xsd:long` (`i64`).
    Long,
    /// `xsd:double` (`f64`).
    Double,
    /// `xsd:boolean`.
    Bool,
    /// `xsd:string` — unbounded; cannot be stuffed.
    Str,
}

impl ScalarKind {
    /// Maximum serialized width, or `None` for unbounded kinds (strings).
    pub fn max_width(self) -> Option<usize> {
        match self {
            ScalarKind::Int => Some(INT_MAX_WIDTH),
            ScalarKind::Long => Some(LONG_MAX_WIDTH),
            ScalarKind::Double => Some(DOUBLE_MAX_WIDTH),
            ScalarKind::Bool => Some(BOOL_MAX_WIDTH),
            ScalarKind::Str => None,
        }
    }

    /// The `xsi:type` attribute value for this kind.
    pub fn xsi_type(self) -> &'static str {
        match self {
            ScalarKind::Int => "xsd:int",
            ScalarKind::Long => "xsd:long",
            ScalarKind::Double => "xsd:double",
            ScalarKind::Bool => "xsd:boolean",
            ScalarKind::Str => "xsd:string",
        }
    }
}

/// Fill `buf` with ASCII spaces — the whitespace stuffing primitive.
///
/// Whitespace between an element's closing tag and the next opening tag "is
/// explicitly legal in XML (and therefore SOAP)" (paper §3).
#[inline]
pub fn pad_spaces(buf: &mut [u8]) {
    buf.fill(b' ');
}

/// Wide-store space fill: pads a stuffed field in at most two overlapping
/// unaligned stores for every width up to 32 bytes (every stuffed scalar —
/// the widest field is a 24-byte double), instead of a length-dispatched
/// `memset`. Byte-identical to [`pad_spaces`].
///
/// Uses plain `u64`/`u128` unaligned stores, which lower to `movups`-class
/// instructions on x86_64 and stay portable elsewhere.
#[inline]
pub fn pad_spaces_wide(buf: &mut [u8]) {
    const SP8: u64 = 0x2020_2020_2020_2020;
    const SP16: u128 = (SP8 as u128) << 64 | SP8 as u128;
    let len = buf.len();
    if len < 8 {
        buf.fill(b' ');
        return;
    }
    let p = buf.as_mut_ptr();
    // SAFETY: `len >= 8` here, so stores at offsets 0 and `len - 8` (and,
    // in the ≥16 branches, `i + 16 <= len` and `len - 16`) are all fully
    // inside `buf`. Overlap between the paired stores is harmless — both
    // write the same byte pattern.
    unsafe {
        if len <= 16 {
            (p as *mut u64).write_unaligned(SP8);
            (p.add(len - 8) as *mut u64).write_unaligned(SP8);
        } else {
            let mut i = 0;
            while i + 16 <= len {
                (p.add(i) as *mut u128).write_unaligned(SP16);
                i += 16;
            }
            (p.add(len - 16) as *mut u128).write_unaligned(SP16);
        }
    }
}

/// Policy-dispatched space fill: the wide-store kernel when `policy`
/// resolves to a SIMD level, plain `memset` otherwise.
#[inline]
pub fn pad_spaces_with(buf: &mut [u8], policy: bsoap_kernels::KernelPolicy) {
    if bsoap_kernels::resolve(policy).is_simd() {
        if buf.len() >= 8 {
            bsoap_kernels::record_simd_hits(1);
        }
        pad_spaces_wide(buf);
    } else {
        pad_spaces(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_width_constants() {
        assert_eq!(INT_MAX_WIDTH, 11);
        assert_eq!(DOUBLE_MAX_WIDTH, 24);
        assert_eq!(MIO_MAX_WIDTH, 46);
        assert_eq!(MIO_MIN_WIDTH, 3);
    }

    #[test]
    fn max_width_by_kind() {
        assert_eq!(ScalarKind::Int.max_width(), Some(11));
        assert_eq!(ScalarKind::Long.max_width(), Some(20));
        assert_eq!(ScalarKind::Double.max_width(), Some(24));
        assert_eq!(ScalarKind::Bool.max_width(), Some(5));
        assert_eq!(ScalarKind::Str.max_width(), None);
    }

    #[test]
    fn xsi_types() {
        assert_eq!(ScalarKind::Double.xsi_type(), "xsd:double");
        assert_eq!(ScalarKind::Int.xsi_type(), "xsd:int");
    }

    #[test]
    fn pad_fills_spaces() {
        let mut buf = [0u8; 7];
        pad_spaces(&mut buf);
        assert_eq!(&buf, b"       ");
    }

    #[test]
    fn wide_pad_matches_scalar_for_every_stuffed_width() {
        // 0..=64 covers every pad a stuffed field can need (max field is a
        // 24-byte double; 64 exercises the loop + overlapping tail).
        for len in 0..=64usize {
            let mut scalar = vec![0xAAu8; len + 2];
            let mut wide = vec![0xAAu8; len + 2];
            pad_spaces(&mut scalar[1..1 + len]);
            pad_spaces_wide(&mut wide[1..1 + len]);
            assert_eq!(scalar, wide, "len {len}");
            // Guard bytes untouched on both sides.
            assert_eq!(wide[0], 0xAA);
            assert_eq!(wide[len + 1], 0xAA);
        }
    }

    #[test]
    fn pad_dispatch_matches_under_both_policies() {
        use bsoap_kernels::KernelPolicy;
        for len in [0usize, 5, 8, 11, 16, 23, 24, 33] {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            pad_spaces_with(&mut a, KernelPolicy::Scalar);
            pad_spaces_with(&mut b, KernelPolicy::ForcedSimd);
            assert_eq!(a, b, "len {len}");
            assert!(a.iter().all(|&c| c == b' '));
        }
    }
}
