//! Fast-path `f64` → ASCII conversion: a Grisu3 kernel with exact fallback.
//!
//! ## Why a second kernel
//!
//! [`crate::dtoa`] deliberately reproduces the paper's 2004-era conversion
//! cost model: an exact big-integer Dragon scheme, ~µs per double. That is
//! the right default for figure reproduction, but the ROADMAP's north star
//! is "as fast as the hardware allows". This module adds
//! [`write_f64_fast`]: Loitsch's Grisu3 algorithm — pure 64/128-bit integer
//! arithmetic against a precomputed table of normalized powers of ten, no
//! heap allocation, no big-integer work on the hot path.
//!
//! ## Algorithm
//!
//! A finite positive double `v = m × 2^e` is normalized to a `DiyFp`
//! (64-bit significand, MSB set) together with its two rounding boundaries
//! `m⁻`/`m⁺` (any decimal strictly between them parses back to `v`). All
//! three are scaled by a cached power of ten chosen so the product's binary
//! exponent lands in `[ALPHA, GAMMA]`, which makes digit extraction a
//! sequence of shifts and single-digit divisions. Digits are generated from
//! the upper boundary until the remainder provably lies inside the safe
//! interval; a final weeding step moves the last digit toward `v` until it
//! is the *closest* shortest representation.
//!
//! Because the cached power and the two 128-bit multiplications each carry
//! ≤ ½ ulp of error, the interval is tracked conservatively (±1 unit in the
//! last place). When the digits cannot be *proven* shortest-and-closest —
//! about 0.5% of random inputs, including all exact half-ulp ties — Grisu3
//! reports failure and [`write_f64_fast`] falls back to the exact Dragon
//! path. The fallback preserves the kernel's contract: output is
//! **byte-identical** to [`crate::dtoa::write_f64`] on every input
//! (property-tested over random bit patterns; see `tests/prop_convert.rs`).
//!
//! ## The power table
//!
//! Grisu needs normalized 64-bit approximations of `10^k` for
//! `k ∈ [-348, 340]` in steps of 8. Rather than embedding 87 magic
//! constants, the table is computed once at first use (`OnceLock`) with a
//! small exact integer routine: positive powers by repeated multiplication,
//! negative powers by shift-subtract long division of `2^n` — both
//! correctly rounded to 64 bits, which is exactly the ≤ ½ ulp contract the
//! error analysis assumes. Init costs ~1 ms once per process; the hot path
//! never touches it again.

use crate::dtoa;
use std::sync::OnceLock;

/// Selects the `f64` → ASCII kernel used by a serialization engine.
///
/// Both kernels emit identical bytes (shortest round-trip `xsd:double`
/// lexical form); they differ only in cost. `Exact2004` is the paper's
/// measured cost model; `Fast` is the hardware-speed Grisu3 kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FloatFormatter {
    /// Exact Dragon-style big-integer conversion (~µs per double) — the
    /// 2004-era `sprintf("%.17g")` cost model the paper's figures assume.
    Exact2004,
    /// Grisu3 table-driven conversion with exact fallback (~tens of ns).
    #[default]
    Fast,
}

impl FloatFormatter {
    /// Write `v` in shortest round-trip `xsd:double` form with this
    /// kernel; returns bytes written. `buf` must be ≥ [`dtoa::MAX_LEN`].
    #[inline]
    pub fn write_f64(self, buf: &mut [u8], v: f64) -> usize {
        match self {
            FloatFormatter::Exact2004 => dtoa::write_f64(buf, v),
            FloatFormatter::Fast => write_f64_fast(buf, v),
        }
    }
}

/// Write `v` in shortest round-trip `xsd:double` form; returns bytes
/// written. Byte-identical to [`crate::dtoa::write_f64`], ~50× faster on
/// typical inputs.
///
/// `buf` must be at least [`dtoa::MAX_LEN`] (24) bytes.
pub fn write_f64_fast(buf: &mut [u8], v: f64) -> usize {
    if let Some(n) = dtoa::write_fixed_forms(buf, v) {
        return n;
    }
    let neg = v < 0.0;
    let pos = v.abs();
    let mut digits = [0u8; 20];
    match grisu3_shortest(pos, &mut digits) {
        Some((len, k)) => dtoa::format_parts(buf, neg, &digits[..len], k),
        None => {
            // Rare uncertain case (~0.5%): exact Dragon fallback.
            let (digits, k) = dtoa::shortest_digits_abs(pos);
            dtoa::format_parts(buf, neg, &digits, k)
        }
    }
}

/// Format `v` into a fresh `String` (convenience wrapper over
/// [`write_f64_fast`]).
pub fn format_f64_fast(v: f64) -> String {
    let mut buf = [0u8; dtoa::MAX_LEN];
    let n = write_f64_fast(&mut buf, v);
    // The writer only emits ASCII.
    unsafe { std::str::from_utf8_unchecked(&buf[..n]) }.to_owned()
}

// ---------------------------------------------------------------------
// DiyFp: the "do-it-yourself floating point" of Loitsch's paper.
// ---------------------------------------------------------------------

/// Unnormalized binary float `f × 2^e` with a full 64-bit significand.
#[derive(Clone, Copy, Debug)]
struct DiyFp {
    f: u64,
    e: i32,
}

impl DiyFp {
    /// Round-to-nearest product keeping the top 64 bits. Cannot overflow:
    /// `(2^64−1)² < 2^128 − 2^64`, so the rounded high half stays < 2^64.
    #[inline]
    fn mul(self, rhs: DiyFp) -> DiyFp {
        let p = self.f as u128 * rhs.f as u128;
        let f = ((p >> 64) as u64) + (((p >> 63) & 1) as u64);
        DiyFp {
            f,
            e: self.e + rhs.e + 64,
        }
    }
}

/// Normalize `(m, e)` so the significand's MSB is set.
#[inline]
fn normalize(m: u64, e: i32) -> DiyFp {
    debug_assert!(m != 0);
    let shift = m.leading_zeros() as i32;
    DiyFp {
        f: m << shift,
        e: e - shift,
    }
}

/// The rounding boundaries of `v = m × 2^e`, both normalized to the same
/// exponent (which equals `normalize(m, e).e`).
///
/// The lower boundary is closer when `m` is a power of two (the binade
/// below has half the spacing) — except at the smallest exponent, where
/// subnormal spacing continues unchanged.
fn normalized_boundaries(m: u64, e: i32) -> (DiyFp, DiyFp) {
    let plus_raw = DiyFp {
        f: (m << 1) + 1,
        e: e - 1,
    };
    let shift = plus_raw.f.leading_zeros() as i32;
    let plus = DiyFp {
        f: plus_raw.f << shift,
        e: plus_raw.e - shift,
    };
    let (mf, me) = if m == (1u64 << 52) && e > -1074 {
        ((m << 2) - 1, e - 2)
    } else {
        ((m << 1) - 1, e - 1)
    };
    let minus = DiyFp {
        f: mf << (me - plus.e),
        e: plus.e,
    };
    (minus, plus)
}

// ---------------------------------------------------------------------
// Cached powers of ten.
// ---------------------------------------------------------------------

/// Target window for the scaled exponent: with `e(w·10^k) ∈ [ALPHA, GAMMA]`
/// the integral part of the scaled value fits a u32 and fractional digit
/// extraction is a shift. Window width 28 > 8·log₂10 ≈ 26.6, so a table
/// step of 8 decimal exponents always has an entry inside the window.
const ALPHA: i32 = -60;
/// Upper end of the scaled-exponent window.
const GAMMA: i32 = -32;

const CACHE_MIN_K: i32 = -348;
const CACHE_STEP: i32 = 8;
const CACHE_ENTRIES: usize = 87; // 10^-348 ..= 10^340

/// One normalized power of ten: `10^k ≈ f × 2^e`, `f ∈ [2^63, 2^64)`,
/// correctly rounded (error ≤ ½ ulp — the bound the algorithm assumes).
struct CachedPow {
    f: u64,
    e: i32,
    k: i32,
}

static CACHED_POWS: OnceLock<Vec<CachedPow>> = OnceLock::new();

fn cached_pows() -> &'static [CachedPow] {
    CACHED_POWS.get_or_init(|| {
        (0..CACHE_ENTRIES)
            .map(|i| compute_pow10(CACHE_MIN_K + i as i32 * CACHE_STEP))
            .collect()
    })
}

/// `log10(2)` — used only to pick a table index, never for digit values.
const LOG10_2: f64 = std::f64::consts::LOG10_2;

/// Table entry for scaling a `DiyFp` with exponent `e` into the window:
/// the smallest grid `k` with `e(10^k) + e + 64 ≥ ALPHA`.
fn cached_power_for_exponent(e: i32) -> &'static CachedPow {
    let k_min = ((ALPHA - e - 1) as f64 * LOG10_2).ceil() as i32;
    let idx = (k_min - CACHE_MIN_K + CACHE_STEP - 1) / CACHE_STEP;
    &cached_pows()[(idx.max(0) as usize).min(CACHE_ENTRIES - 1)]
}

/// Exact, correctly rounded normalized approximation of `10^k`.
///
/// Init-only code (runs once per process): positive powers via repeated
/// small multiplication, negative powers via bit-by-bit long division of a
/// power of two — both rounded half-to-even from a 65-bit quotient plus a
/// sticky bit.
fn compute_pow10(k: i32) -> CachedPow {
    if k >= 0 {
        let d = pow10_limbs(k as u32);
        let m = bit_len(&d);
        if m <= 64 {
            // Small powers are exactly representable: shift into place.
            let v = d.iter().rev().fold(0u64, |acc, &l| (acc << 63) << 1 | l);
            CachedPow {
                f: v << (64 - m),
                e: m as i32 - 64,
                k,
            }
        } else {
            let (top65, sticky) = top_bits_65(&d, m);
            let (f, carry) = round_65_to_64(top65, sticky);
            CachedPow {
                f,
                e: m as i32 - 64 + carry,
                k,
            }
        }
    } else {
        // 10^k = 2^(m+63) / 10^|k| × 2^-(m+63) with 2^(m-1) ≤ 10^|k| < 2^m,
        // so the 65-bit quotient of 2^(m+64) / 10^|k| normalizes exactly.
        let d = pow10_limbs((-k) as u32);
        let m = bit_len(&d);
        let (q, rem_nonzero) = div_pow2_by(&d, m as u32 + 64);
        let (f, carry) = round_65_to_64(q, rem_nonzero);
        CachedPow {
            f,
            e: -(m as i32 + 63) + carry,
            k,
        }
    }
}

/// Round a 65-bit value to 64 bits, half-to-even against `sticky`.
/// Returns the significand and an exponent carry (1 when rounding
/// overflowed to 2^64).
fn round_65_to_64(x: u128, sticky: bool) -> (u64, i32) {
    debug_assert!(x >> 64 == 1, "expected exactly 65 bits");
    let mut f = x >> 1;
    if (x & 1) != 0 && (sticky || (f & 1) != 0) {
        f += 1;
    }
    if f >> 64 != 0 {
        (1u64 << 63, 1)
    } else {
        (f as u64, 0)
    }
}

// Little-endian u64-limb helpers for the init-time computation.

fn pow10_limbs(k: u32) -> Vec<u64> {
    let mut v = vec![1u64];
    for _ in 0..k {
        let mut carry: u128 = 0;
        for limb in v.iter_mut() {
            let p = *limb as u128 * 10 + carry;
            *limb = p as u64;
            carry = p >> 64;
        }
        if carry != 0 {
            v.push(carry as u64);
        }
    }
    v
}

fn bit_len(d: &[u64]) -> usize {
    let top = *d.last().expect("non-zero value");
    (d.len() - 1) * 64 + (64 - top.leading_zeros() as usize)
}

/// Bits `[m-65, m)` of `d` (MSB-first) plus a sticky bit for everything
/// below. Requires `bit_len(d) == m > 64`.
fn top_bits_65(d: &[u64], m: usize) -> (u128, bool) {
    let bit = |i: usize| (d[i / 64] >> (i % 64)) & 1;
    let mut top: u128 = 0;
    for j in 0..65 {
        top = (top << 1) | bit(m - 1 - j) as u128;
    }
    let cutoff = m - 65;
    let full = cutoff / 64;
    let mut sticky = d[..full].iter().any(|&l| l != 0);
    if !cutoff.is_multiple_of(64) {
        sticky |= d[full] & ((1u64 << (cutoff % 64)) - 1) != 0;
    }
    (top, sticky)
}

/// `floor(2^nbits / d)` by shift-subtract long division, plus whether the
/// remainder is non-zero. The quotient must fit in 128 bits (callers pass
/// `nbits = bit_len(d) + 64`, giving a 65-bit quotient).
fn div_pow2_by(d: &[u64], nbits: u32) -> (u128, bool) {
    let mut rem = vec![0u64; d.len() + 1];
    rem[0] = 1; // the numerator's leading 1-bit, pre-consumed
    let mut q: u128 = 0;
    for _ in 0..nbits {
        // rem <<= 1
        let mut carry = 0u64;
        for limb in rem.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        debug_assert_eq!(carry, 0, "remainder overflow");
        q <<= 1;
        if cmp_limbs(&rem, d) != std::cmp::Ordering::Less {
            sub_limbs(&mut rem, d);
            q |= 1;
        }
    }
    (q, rem.iter().any(|&l| l != 0))
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    let limb = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
    for i in (0..a.len().max(b.len())).rev() {
        match limb(a, i).cmp(&limb(b, i)) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

fn sub_limbs(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0) as u128 + borrow as u128;
        let lhs = *limb as u128;
        if lhs >= rhs {
            *limb = (lhs - rhs) as u64;
            borrow = 0;
        } else {
            *limb = ((1u128 << 64) + lhs - rhs) as u64;
            borrow = 1;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

// ---------------------------------------------------------------------
// Digit generation (Grisu3 proper).
// ---------------------------------------------------------------------

/// Shortest correctly-rounded digits of finite positive `pos`.
///
/// On success returns `(len, K)` with digits in `out[..len]` (no leading or
/// trailing zeros) and `pos = 0.digits × 10^K` — the convention
/// [`dtoa::format_parts`] renders. Returns `None` when shortest-and-closest
/// cannot be proven (caller falls back to the exact path).
fn grisu3_shortest(pos: f64, out: &mut [u8; 20]) -> Option<(usize, i32)> {
    let (m, e) = dtoa::decompose(pos);
    let w = normalize(m, e);
    let (w_minus, w_plus) = normalized_boundaries(m, e);
    debug_assert_eq!(w.e, w_plus.e);

    let c = cached_power_for_exponent(w_plus.e);
    let cp = DiyFp { f: c.f, e: c.e };
    let scaled_e = c.e + w_plus.e + 64;
    if !(ALPHA..=GAMMA).contains(&scaled_e) {
        return None; // table-selection edge: let the exact path decide
    }
    let scaled_w = w.mul(cp);
    let low = w_minus.mul(cp);
    let high = w_plus.mul(cp);

    let (len, kappa) = digit_gen(low, scaled_w, high, out)?;
    // digits × 10^kappa ≈ pos × 10^c.k  ⇒  pos = 0.digits × 10^K.
    Some((len, kappa - c.k + len as i32))
}

/// Largest `(10^x, x)` with `10^x ≤ n` (`n ≥ 1`).
fn biggest_pow10(n: u32) -> (u32, i32) {
    debug_assert!(n >= 1);
    const POW10: [u32; 10] = [
        1,
        10,
        100,
        1000,
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
        1_000_000_000,
    ];
    let mut x = 9;
    while POW10[x] > n {
        x -= 1;
    }
    (POW10[x], x as i32)
}

/// Generate digits of `too_high = high + 1unit` until the remainder lies
/// inside the safe interval, then weed toward `w`. All three inputs share
/// one exponent in `[ALPHA, GAMMA]`.
fn digit_gen(low: DiyFp, w: DiyFp, high: DiyFp, buf: &mut [u8; 20]) -> Option<(usize, i32)> {
    debug_assert!(low.e == w.e && w.e == high.e);
    debug_assert!((ALPHA..=GAMMA).contains(&w.e));
    let mut unit: u64 = 1;
    if high.f > u64::MAX - 1 {
        return None; // widening would wrap; vanishingly rare
    }
    let too_low_f = low.f - unit;
    let too_high_f = high.f + unit;
    let mut unsafe_f = too_high_f - too_low_f;
    let shift = (-w.e) as u32; // 32..=60
    let one_f = 1u64 << shift;
    let mut integrals = (too_high_f >> shift) as u32;
    let mut fractionals = too_high_f & (one_f - 1);
    let wp_w_f = too_high_f - w.f;

    let (mut divisor, div_exp) = biggest_pow10(integrals);
    let mut kappa = div_exp + 1;
    let mut len = 0usize;

    // Integral digits: single u32 divisions.
    while kappa > 0 {
        let digit = integrals / divisor;
        debug_assert!(digit < 10);
        buf[len] = b'0' + digit as u8;
        len += 1;
        integrals %= divisor;
        kappa -= 1;
        let rest = ((integrals as u64) << shift) + fractionals;
        if rest < unsafe_f {
            // `divisor << shift` cannot overflow: divisor ≤ integrals and
            // `integrals << shift ≤ too_high < 2^64`.
            let ok = round_weed(
                &mut buf[..len],
                wp_w_f,
                unsafe_f,
                rest,
                (divisor as u64) << shift,
                unit,
            );
            return ok.then_some((len, kappa));
        }
        divisor /= 10;
    }

    // Fractional digits: multiply the remainder (and the interval, in
    // lockstep) by 10 and shift the next digit out.
    loop {
        debug_assert!(fractionals < one_f);
        fractionals *= 10;
        unit *= 10;
        unsafe_f *= 10;
        let digit = (fractionals >> shift) as u8;
        debug_assert!(digit < 10);
        if len >= buf.len() {
            return None; // defensive: cannot happen within the error bounds
        }
        buf[len] = b'0' + digit;
        len += 1;
        fractionals &= one_f - 1;
        kappa -= 1;
        if fractionals < unsafe_f {
            // `wp_w_f * unit ≤ unsafe_f < 2^64`: no overflow.
            let ok = round_weed(
                &mut buf[..len],
                wp_w_f * unit,
                unsafe_f,
                fractionals,
                one_f,
                unit,
            );
            return ok.then_some((len, kappa));
        }
    }
}

/// Move the last generated digit toward `w` while staying inside the safe
/// interval, then certify the result is provably the closest shortest
/// representation (Loitsch's `round_weed`).
///
/// `wp_w` is the distance `too_high − w`, `delta` the unsafe-interval
/// width, `rest` the current distance `too_high − digits`, `ten_kappa` the
/// weight of the last digit, `unit` the accumulated error unit. All five
/// share one scale.
fn round_weed(
    buf: &mut [u8],
    wp_w: u64,
    delta: u64,
    mut rest: u64,
    ten_kappa: u64,
    unit: u64,
) -> bool {
    let small = wp_w - unit; // distance that is certainly past w
    let big = wp_w + unit; // distance that may still be short of w
    while rest < small
        && delta - rest >= ten_kappa
        && (rest + ten_kappa < small || small - rest >= rest + ten_kappa - small)
    {
        let last = buf.last_mut().expect("at least one digit");
        if *last == b'0' {
            return false; // would borrow across digits: give up, fall back
        }
        *last -= 1;
        rest += ten_kappa;
    }
    // If the next decrement would be just as defensible, the choice is
    // ambiguous within the error margin: fail and let the exact path pick.
    if rest < big
        && delta - rest >= ten_kappa
        && (rest + ten_kappa < big || big - rest > rest + ten_kappa - big)
    {
        return false;
    }
    2 * unit <= rest && rest <= delta.saturating_sub(4 * unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtoa::format_f64;

    #[test]
    fn cached_powers_are_normalized_and_accurate() {
        for c in cached_pows() {
            assert!(c.f >= 1u64 << 63, "10^{} not normalized", c.k);
            // Compare against f64 arithmetic where it is exact enough.
            if (-300..=300).contains(&c.k) {
                let approx = c.f as f64 * (c.e as f64).exp2();
                let exact = 10f64.powi(c.k);
                let rel = ((approx - exact) / exact).abs();
                assert!(rel < 1e-14, "10^{}: rel err {rel}", c.k);
            }
        }
    }

    #[test]
    fn small_positive_powers_are_exact() {
        // 10^4 = 0x2710, 14 bits: f = 0x2710 << 50.
        let c = compute_pow10(4);
        assert_eq!(c.f, 0x2710u64 << 50);
        assert_eq!(c.e, -50);
    }

    #[test]
    fn window_selection_covers_full_f64_range() {
        // All normalized exponents a finite non-zero double can produce.
        for e in -1137..=960 {
            let c = cached_power_for_exponent(e);
            let scaled = c.e + e + 64;
            assert!(
                (ALPHA..=GAMMA).contains(&scaled),
                "e={e}: k={} gives scaled exponent {scaled}",
                c.k
            );
        }
    }

    #[test]
    #[allow(clippy::approx_constant, clippy::excessive_precision)] // literal corpus
    fn matches_exact_on_knowns() {
        for v in [
            0.1,
            0.3,
            1.0 / 3.0,
            3.14,
            1234.5678,
            12.345678901234567,
            1.5e300,
            2.5e-10,
            5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            2.225_073_858_507_201e-308,
            9.881312916824931e-324,
            1e16,
            1e-5,
            123_456_789.123_456_79,
        ] {
            for s in [1.0, -1.0] {
                let v = v * s;
                assert_eq!(format_f64_fast(v), format_f64(v), "value {v:?}");
            }
        }
    }

    #[test]
    fn specials_match_exact() {
        assert_eq!(format_f64_fast(f64::NAN), "NaN");
        assert_eq!(format_f64_fast(f64::INFINITY), "INF");
        assert_eq!(format_f64_fast(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_f64_fast(0.0), "0");
        assert_eq!(format_f64_fast(-0.0), "-0");
        assert_eq!(format_f64_fast(42.0), "42");
    }

    #[test]
    fn random_bit_patterns_match_exact() {
        // Dense differential sweep; the tests/prop_convert.rs property test
        // covers far more cases — this is the in-crate smoke version.
        let mut state = 0x5DEECE66Du64;
        let mut tested = 0;
        while tested < 20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = f64::from_bits(state);
            if v.is_finite() {
                assert_eq!(
                    format_f64_fast(v),
                    format_f64(v),
                    "bits 0x{state:016X} value {v:?}"
                );
                tested += 1;
            }
        }
    }

    #[test]
    fn formatter_dispatch() {
        let mut a = [0u8; dtoa::MAX_LEN];
        let mut b = [0u8; dtoa::MAX_LEN];
        let v = 6.02214076e23;
        let na = FloatFormatter::Exact2004.write_f64(&mut a, v);
        let nb = FloatFormatter::Fast.write_f64(&mut b, v);
        assert_eq!(&a[..na], &b[..nb]);
        assert_eq!(FloatFormatter::default(), FloatFormatter::Fast);
    }
}
