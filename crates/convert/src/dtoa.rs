//! `f64` → ASCII conversion: exact, shortest round-trip decimal output.
//!
//! ## Algorithm
//!
//! A finite positive double is `m × 2^e` (`m < 2^53`). Its *exact* decimal
//! digits are computed with the small big-integer in [`crate::bignum`]:
//!
//! * `e ≥ 0`: the value is the integer `m << e`,
//! * `e < 0`: `m × 2^e = (m × 5^|e|) × 10^e`, so the digits of `m × 5^|e|`
//!   are the value's digits with the decimal point shifted `|e|` places.
//!
//! The exact digit string is then rounded (half-to-even) to `p` significant
//! digits, and the smallest `p ∈ 1..=17` with a round-tripping `p`-digit
//! decimal is selected by binary search (17 significant digits always
//! round-trip an IEEE-754 double, so the search is well-founded; a final
//! verification step guards against any non-monotonicity). At each `p` the
//! nearest rounding is tried first, then its ulp neighbors — the rounding
//! interval of a power of two is asymmetric, so the shortest form is
//! occasionally *not* the nearest rounding (see [`best_at_precision`]).
//!
//! This is a Dragon-style fixed-point scheme rather than Grisu/Ryu: it
//! trades speed for unconditional exactness with no precomputed power
//! tables. That trade is deliberate — in the paper's setting the conversion
//! routine *is* the serialization bottleneck being optimized around, and a
//! ~microsecond conversion is faithful to the 2004-era `sprintf("%.17g")`
//! cost model while remaining provably correct (see the property tests).
//!
//! ## Lexical form
//!
//! Output follows the `xsd:double` lexical space: plain decimal for decimal
//! exponents in `[-3, 16]`, scientific (`dE±x`) otherwise, `INF` / `-INF` /
//! `NaN` for specials. Output length never exceeds
//! [`crate::widths::DOUBLE_MAX_WIDTH`] (24 bytes).

use crate::bignum::BigUint;

/// Upper bound on the bytes [`write_f64`] may produce.
pub const MAX_LEN: usize = crate::widths::DOUBLE_MAX_WIDTH;

/// Write `v` in shortest round-trip `xsd:double` form; returns bytes written.
///
/// `buf` must be at least [`MAX_LEN`] (24) bytes.
pub fn write_f64(buf: &mut [u8], v: f64) -> usize {
    if let Some(n) = write_fixed_forms(buf, v) {
        return n;
    }
    let neg = v < 0.0;
    let pos = v.abs();
    let (digits, k) = shortest_digits_abs(pos);
    format_parts(buf, neg, &digits, k)
}

/// Handle the lexical forms shared verbatim by the exact and fast kernels:
/// specials (`NaN`/`INF`/`-INF`), signed zero, and exact small integers
/// (which print via itoa and coincide byte-for-byte with the general path —
/// trailing zeros collapse into the same plain-integer form).
///
/// Returns `None` when general shortest-digit generation is required.
pub(crate) fn write_fixed_forms(buf: &mut [u8], v: f64) -> Option<usize> {
    if v.is_nan() {
        buf[..3].copy_from_slice(b"NaN");
        return Some(3);
    }
    if v.is_infinite() {
        return Some(if v > 0.0 {
            buf[..3].copy_from_slice(b"INF");
            3
        } else {
            buf[..4].copy_from_slice(b"-INF");
            4
        });
    }
    if v == 0.0 {
        return Some(if v.is_sign_negative() {
            buf[..2].copy_from_slice(b"-0");
            2
        } else {
            buf[0] = b'0';
            1
        });
    }

    let neg = v < 0.0;
    let pos = v.abs();
    if pos < 9_007_199_254_740_992.0 /* 2^53 */ && pos.trunc() == pos {
        let mut n = 0;
        if neg {
            buf[0] = b'-';
            n = 1;
        }
        return Some(n + crate::itoa::write_u64(&mut buf[n..], pos as u64));
    }
    None
}

/// Format `v` into a fresh `String` (convenience wrapper over [`write_f64`]).
pub fn format_f64(v: f64) -> String {
    let mut buf = [0u8; MAX_LEN];
    let n = write_f64(&mut buf, v);
    // The writer only emits ASCII.
    unsafe { std::str::from_utf8_unchecked(&buf[..n]) }.to_owned()
}

/// Shortest-digit decomposition of a finite non-zero `f64`.
///
/// Returns `(negative, digits, k)` where `digits` has no trailing zeros and
/// the value equals `±0.digits × 10^k`. Exposed so workload generators can
/// craft values of specific serialized lengths (the paper's intermediate
/// field-width experiments).
pub fn shortest_digits(v: f64) -> (bool, Vec<u8>, i32) {
    assert!(
        v.is_finite() && v != 0.0,
        "shortest_digits needs finite non-zero input"
    );
    let (digits, k) = shortest_digits_abs(v.abs());
    (v < 0.0, digits, k)
}

/// Exact decimal expansion of `|v|` rounded to the shortest round-tripping
/// digit count. Returns `(digits, k)` with the value `0.digits × 10^k`.
pub(crate) fn shortest_digits_abs(pos: f64) -> (Vec<u8>, i32) {
    let (m, e) = decompose(pos);

    // Exact decimal digits of the value (with the decimal exponent k such
    // that value = 0.DIGITS × 10^k).
    let mut big = BigUint::from_u64(m);
    let k: i32;
    if e >= 0 {
        big.shl_bits(e as u32);
        let exact = big.to_decimal_digits();
        k = exact.len() as i32;
        round_shortest(pos, exact, k)
    } else {
        big.mul_pow5((-e) as u32);
        let exact = big.to_decimal_digits();
        k = exact.len() as i32 + e;
        round_shortest(pos, exact, k)
    }
}

/// Split a finite positive double into `(mantissa, binary_exponent)` with
/// `value = m × 2^e`.
pub(crate) fn decompose(v: f64) -> (u64, i32) {
    let bits = v.to_bits();
    let exp_field = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if exp_field == 0 {
        (frac, -1074) // subnormal
    } else {
        (frac | (1u64 << 52), exp_field - 1075)
    }
}

/// Given the exact digits of `pos`, find the shortest prefix rounding that
/// re-parses to `pos` exactly.
fn round_shortest(pos: f64, exact: Vec<u8>, k: i32) -> (Vec<u8>, i32) {
    debug_assert!(!exact.is_empty());
    // Binary search the smallest p in 1..=17 that round-trips. Monotonicity
    // holds in practice; the verification loop below repairs any exception.
    let mut lo = 1usize;
    let mut hi = 17usize.min(exact.len());
    if hi < 17 {
        // The exact expansion is itself ≤ 17 digits, which trivially
        // round-trips (it IS the value).
        // Still search below it for a shorter representation.
    } else {
        hi = 17;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if best_at_precision(pos, &exact, k, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut p = lo;
    loop {
        if let Some(best) = best_at_precision(pos, &exact, k, p) {
            return best;
        }
        p += 1;
        assert!(
            p <= 17,
            "no 17-digit rounding round-trips {pos:?} — impossible for IEEE-754"
        );
    }
}

/// The `p`-significant-digit decimal `pos` prints as, if any round-trips.
///
/// The nearest `p`-digit decimal (half-to-even against the exact tail) is
/// preferred. At a binade boundary the rounding interval is *asymmetric*
/// (the gap below a power of two is half the gap above), so the nearest
/// decimal can fall outside the interval while one of its
/// unit-in-the-last-place neighbors lies inside — e.g. `2^-1017` is
/// `7.1202363472230444…E-307` but its shortest form is the 16-digit
/// `7.120236347223045E-307`, one ulp *above* the nearest 16-digit
/// rounding. At most one neighbor can round-trip when the nearest fails
/// (the interval is contiguous and contains `pos`).
fn best_at_precision(pos: f64, exact: &[u8], k: i32, p: usize) -> Option<(Vec<u8>, i32)> {
    let (digits, kk) = rounded_prefix(exact, k, p);
    if reparses_to(pos, &digits, kk) {
        return Some((digits, kk));
    }
    ulp_neighbors(&digits, kk, p)
        .into_iter()
        .find(|(d, nk)| reparses_to(pos, d, *nk))
}

/// The decimals one unit-in-the-last-place (at `p` significant digits)
/// above and below `digits` (value `0.digits × 10^k`), trailing zeros
/// trimmed. The lower neighbor is omitted when it would be zero.
fn ulp_neighbors(digits: &[u8], k: i32, p: usize) -> Vec<(Vec<u8>, i32)> {
    let mut base = digits.to_vec();
    base.resize(p, b'0');
    let trim = |d: &mut Vec<u8>| {
        while d.last() == Some(&b'0') {
            d.pop();
        }
    };
    let mut out = Vec::with_capacity(2);

    let mut up = base.clone();
    let mut up_k = k;
    let mut i = p;
    loop {
        if i == 0 {
            // Carry out of the most significant digit: 999→1000.
            up.insert(0, b'1');
            up.truncate(p);
            up_k += 1;
            break;
        }
        i -= 1;
        if up[i] == b'9' {
            up[i] = b'0';
        } else {
            up[i] += 1;
            break;
        }
    }
    trim(&mut up);
    out.push((up, up_k));

    let mut down = base;
    let mut down_k = k;
    let mut i = p;
    while i > 0 {
        i -= 1;
        if down[i] == b'0' {
            down[i] = b'9';
        } else {
            down[i] -= 1;
            break;
        }
    }
    if down[0] == b'0' {
        // Borrow across the decade: 1000→0999, i.e. 999 one place lower.
        down.remove(0);
        down_k -= 1;
    }
    if down.iter().any(|&c| c != b'0') {
        trim(&mut down);
        out.push((down, down_k));
    }
    out
}

/// Round `exact` to `p` significant digits (half-to-even against the exact
/// tail) and trim trailing zeros. Returns the digits and adjusted exponent.
fn rounded_prefix(exact: &[u8], k: i32, p: usize) -> (Vec<u8>, i32) {
    let mut k = k;
    let mut digits: Vec<u8>;
    if exact.len() <= p {
        digits = exact.to_vec();
    } else {
        digits = exact[..p].to_vec();
        let next = exact[p];
        let tail_nonzero = exact[p + 1..].iter().any(|&d| d != b'0');
        let round_up = match next.cmp(&b'5') {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tail_nonzero || (digits[p - 1] - b'0') % 2 == 1,
        };
        if round_up {
            let mut i = p;
            loop {
                if i == 0 {
                    // Carry out of the most significant digit: 999→1000.
                    digits.insert(0, b'1');
                    digits.truncate(p); // keep p significant digits
                    k += 1;
                    break;
                }
                i -= 1;
                if digits[i] == b'9' {
                    digits[i] = b'0';
                } else {
                    digits[i] += 1;
                    break;
                }
            }
        }
    }
    while digits.last() == Some(&b'0') {
        digits.pop();
    }
    debug_assert!(!digits.is_empty());
    (digits, k)
}

/// Check whether `0.digits × 10^k` re-parses to `pos` exactly.
fn reparses_to(pos: f64, digits: &[u8], k: i32) -> bool {
    // Reconstruct as DIGITSe(k - len) and parse with the (correctly
    // rounded) standard library parser.
    let mut s = String::with_capacity(digits.len() + 8);
    s.push_str(std::str::from_utf8(digits).expect("ASCII digits"));
    s.push('e');
    let exp10 = k - digits.len() as i32;
    s.push_str(&exp10.to_string());
    match s.parse::<f64>() {
        Ok(back) => back.to_bits() == pos.to_bits(),
        Err(_) => false,
    }
}

/// Render `(neg, digits, k)` — value `±0.digits × 10^k` — into `buf`.
pub(crate) fn format_parts(buf: &mut [u8], neg: bool, digits: &[u8], k: i32) -> usize {
    let n = digits.len();
    let mut pos = 0;
    if neg {
        buf[0] = b'-';
        pos = 1;
    }
    if (-3..=16).contains(&k) {
        if k <= 0 {
            // 0.000ddd
            buf[pos] = b'0';
            buf[pos + 1] = b'.';
            pos += 2;
            for _ in 0..(-k) {
                buf[pos] = b'0';
                pos += 1;
            }
            buf[pos..pos + n].copy_from_slice(digits);
            pos += n;
        } else if k as usize >= n {
            // Integer with trailing zeros: ddd000
            buf[pos..pos + n].copy_from_slice(digits);
            pos += n;
            for _ in 0..(k as usize - n) {
                buf[pos] = b'0';
                pos += 1;
            }
        } else {
            // dd.ddd
            let split = k as usize;
            buf[pos..pos + split].copy_from_slice(&digits[..split]);
            pos += split;
            buf[pos] = b'.';
            pos += 1;
            buf[pos..pos + (n - split)].copy_from_slice(&digits[split..]);
            pos += n - split;
        }
    } else {
        // Scientific: d.dddE±x with exponent k-1.
        buf[pos] = digits[0];
        pos += 1;
        if n > 1 {
            buf[pos] = b'.';
            pos += 1;
            buf[pos..pos + n - 1].copy_from_slice(&digits[1..]);
            pos += n - 1;
        }
        buf[pos] = b'E';
        pos += 1;
        pos += crate::itoa::write_i64(&mut buf[pos..], (k - 1) as i64);
    }
    debug_assert!(pos <= MAX_LEN, "dtoa exceeded MAX_LEN: {pos}");
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: f64) {
        let s = format_f64(v);
        assert!(s.len() <= MAX_LEN, "{s} exceeds {MAX_LEN} bytes");
        let back: f64 = s.parse().unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "value {v:?} formatted as {s}");
    }

    #[test]
    fn specials() {
        assert_eq!(format_f64(f64::NAN), "NaN");
        assert_eq!(format_f64(f64::INFINITY), "INF");
        assert_eq!(format_f64(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_f64(0.0), "0");
        assert_eq!(format_f64(-0.0), "-0");
    }

    #[test]
    fn small_integers_one_char() {
        // The paper's minimum-width double is a single character.
        assert_eq!(format_f64(1.0), "1");
        assert_eq!(format_f64(9.0), "9");
        assert_eq!(format_f64(-1.0), "-1");
    }

    #[test]
    #[allow(clippy::approx_constant)] // 3.14 is a formatting case, not pi
    fn simple_decimals() {
        assert_eq!(format_f64(0.5), "0.5");
        assert_eq!(format_f64(3.14), "3.14");
        assert_eq!(format_f64(-3.14), "-3.14");
        assert_eq!(format_f64(0.001), "0.001");
        assert_eq!(format_f64(100.0), "100");
        assert_eq!(format_f64(1.5e300), "1.5E300");
        assert_eq!(format_f64(2.5e-10), "2.5E-10");
    }

    #[test]
    fn extreme_values_round_trip_within_width() {
        for v in [
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -5e-324,
            2.225_073_858_507_201e-308, // largest subnormal
            1.7976931348623157e308,
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            std::f64::consts::E,
            2f64.powi(53),
            2f64.powi(53) - 1.0,
            2f64.powi(53) + 2.0,
            1e15,
            1e16,
            1e17,
            123_456_789.123_456_79,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn shortest_known_cases() {
        // 0.1 is famously 0.1000000000000000055511151231257827…; shortest is "0.1".
        assert_eq!(format_f64(0.1), "0.1");
        assert_eq!(format_f64(0.3), "0.3");
        // 1/3 needs 16 digits.
        assert_eq!(format_f64(1.0 / 3.0), "0.3333333333333333");
    }

    #[test]
    fn max_width_is_achievable_and_never_exceeded() {
        // Scan negative values with three-digit exponents for one whose
        // shortest form needs all 17 digits: sign + d.16 digits + E-3xx = 24.
        let mut found_24 = false;
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Force sign bit on, pick exponent field in the subnormal/small
            // normal range so the decimal exponent has three digits.
            let bits = (state & 0x000F_FFFF_FFFF_FFFF) | (1u64 << 63) | (0x010u64 << 52);
            let v = f64::from_bits(bits);
            let s = format_f64(v);
            assert!(s.len() <= MAX_LEN, "{s}");
            if s.len() == MAX_LEN {
                found_24 = true;
            }
        }
        assert!(
            found_24,
            "no 24-char double found in sample — width bound untested"
        );
    }

    #[test]
    fn random_bit_patterns_round_trip() {
        // Cheap LCG over raw bit patterns; filters non-finite.
        let mut state = 0x243F6A8885A308D3u64;
        let mut tested = 0;
        while tested < 2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = f64::from_bits(state);
            if v.is_finite() {
                roundtrip(v);
                tested += 1;
            }
        }
    }

    #[test]
    fn integral_fast_path_matches_general_path() {
        // The fast path must produce byte-identical output to the bignum path.
        for v in [1.0f64, 42.0, 100.0, 1e6, 123456.0, 9007199254740991.0] {
            let fast = format_f64(v);
            let (digits, k) = shortest_digits_abs(v);
            let mut buf = [0u8; MAX_LEN];
            let n = format_parts(&mut buf, false, &digits, k);
            assert_eq!(fast.as_bytes(), &buf[..n], "value {v}");
        }
    }

    #[test]
    fn exponent_form_thresholds() {
        // Plain decimal spans decimal exponents -3..=16 (values < 10^16);
        // 1e16 has k = 17 and switches to scientific.
        assert_eq!(format_f64(1e15), "1000000000000000");
        assert_eq!(format_f64(1e16), "1E16");
        assert_eq!(format_f64(1e-3), "0.001");
        assert_eq!(format_f64(1e-4), "0.0001"); // k = -3, still plain
        assert_eq!(format_f64(1e-5), "1E-5"); // k = -4, scientific
    }

    #[test]
    fn shortest_digits_exposed_form() {
        let (neg, digits, k) = shortest_digits(-0.25);
        assert!(neg);
        assert_eq!(digits, b"25".to_vec());
        assert_eq!(k, 0);
    }

    #[test]
    fn subnormal_shortest() {
        assert_eq!(format_f64(5e-324), "5E-324");
    }
}
