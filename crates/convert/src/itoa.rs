//! Integer → ASCII conversion with a two-digit lookup table.
//!
//! This is the `xsd:int` / `xsd:long` serialization path. The two-digit
//! table halves the number of divisions compared to the naive digit loop —
//! the classic technique used by the C toolkits the paper benchmarks
//! against.
//!
//! Two generations coexist (DESIGN.md §3.11):
//!
//! * the original scratch-buffer writers ([`write_u64`] / [`write_i64`])
//!   and loop-based [`i32_width`] — the scalar oracle, and
//! * the *branchless* kernel ([`digit_count_u64`] computes the digit count
//!   with `lzcnt` + one table probe, [`write_u64_branchless`] then writes
//!   the two-digit pairs backwards from the known end directly into the
//!   destination, skipping the scratch copy). Tier-2 in-width overwrites
//!   dispatch here via [`write_i64_with`] when the kernel policy resolves
//!   to a SIMD level.
//!
//! Byte-identity between the two generations is property-tested.

use bsoap_kernels::{resolve, KernelPolicy};

/// Lookup table of all two-digit pairs `"00"… "99"`.
static DIGIT_PAIRS: &[u8; 200] = b"\
0001020304050607080910111213141516171819\
2021222324252627282930313233343536373839\
4041424344454647484950515253545556575859\
6061626364656667686970717273747576777879\
8081828384858687888990919293949596979899";

/// Write an unsigned 64-bit integer; returns the number of bytes written.
///
/// `buf` must be at least 20 bytes.
pub fn write_u64(buf: &mut [u8], mut v: u64) -> usize {
    // Generate digits into a 20-byte scratch from the rear, then copy.
    let mut scratch = [0u8; 20];
    let mut pos = scratch.len();
    while v >= 100 {
        let pair = ((v % 100) as usize) * 2;
        v /= 100;
        pos -= 2;
        scratch[pos] = DIGIT_PAIRS[pair];
        scratch[pos + 1] = DIGIT_PAIRS[pair + 1];
    }
    if v >= 10 {
        let pair = (v as usize) * 2;
        pos -= 2;
        scratch[pos] = DIGIT_PAIRS[pair];
        scratch[pos + 1] = DIGIT_PAIRS[pair + 1];
    } else {
        pos -= 1;
        scratch[pos] = b'0' + v as u8;
    }
    let len = scratch.len() - pos;
    buf[..len].copy_from_slice(&scratch[pos..]);
    len
}

/// Write a signed 32-bit integer (`xsd:int`); returns bytes written (≤ 11).
pub fn write_i32(buf: &mut [u8], v: i32) -> usize {
    write_i64(buf, v as i64)
}

/// Powers of ten up to `10^19` (the largest that fits a `u64`), indexed by
/// exponent — the lookup half of the branchless digit count.
static POW10: [u64; 20] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
    10_000_000_000_000_000_000,
];

/// Decimal digit count of `v`, computed without a loop or division.
///
/// `bits · log10(2)` approximated as `bits · 1233 / 4096` gives the digit
/// count to within one; a single power-of-ten table probe corrects it.
/// `v | 1` makes zero well-defined (and can never change the digit count:
/// crossing a power of ten from below requires an odd value `…99`).
#[inline]
pub fn digit_count_u64(v: u64) -> usize {
    let bits = 64 - (v | 1).leading_zeros() as usize;
    let approx = (bits * 1233) >> 12;
    approx + ((v | 1) >= POW10[approx]) as usize
}

/// Decimal digit count of a `u32`, branchless.
#[inline]
pub fn digit_count_u32(v: u32) -> usize {
    digit_count_u64(v as u64)
}

/// Write the digits of `v` ending exactly at `buf[len]` (two-digit pairs,
/// back to front). `len` must equal `digit_count_u64(v)` and `buf.len()`
/// must be ≥ `len`.
#[inline]
fn write_digits_backward(buf: &mut [u8], mut v: u64, len: usize) {
    let mut pos = len;
    while v >= 100 {
        let pair = ((v % 100) as usize) * 2;
        v /= 100;
        pos -= 2;
        buf[pos] = DIGIT_PAIRS[pair];
        buf[pos + 1] = DIGIT_PAIRS[pair + 1];
    }
    if v >= 10 {
        let pair = (v as usize) * 2;
        buf[pos - 2] = DIGIT_PAIRS[pair];
        buf[pos - 1] = DIGIT_PAIRS[pair + 1];
    } else {
        buf[pos - 1] = b'0' + v as u8;
    }
}

/// Branchless-width `u64` writer: digit count via [`digit_count_u64`], then
/// digits written directly into `buf` from the rear — no scratch buffer, no
/// final copy. Byte-identical to [`write_u64`].
#[inline]
pub fn write_u64_branchless(buf: &mut [u8], v: u64) -> usize {
    let len = digit_count_u64(v);
    write_digits_backward(buf, v, len);
    len
}

/// Branchless-width `i64` writer, byte-identical to [`write_i64`]. The sign
/// is written unconditionally and overwritten by the first digit when the
/// value is non-negative.
#[inline]
pub fn write_i64_branchless(buf: &mut [u8], v: i64) -> usize {
    let neg = (v < 0) as usize;
    let mag = if v < 0 {
        (v as u64).wrapping_neg()
    } else {
        v as u64
    };
    buf[0] = b'-';
    let len = digit_count_u64(mag);
    write_digits_backward(&mut buf[neg..], mag, len);
    neg + len
}

/// Branchless-width `i32` writer, byte-identical to [`write_i32`].
#[inline]
pub fn write_i32_branchless(buf: &mut [u8], v: i32) -> usize {
    write_i64_branchless(buf, v as i64)
}

/// Policy-dispatched `i64` writer: the branchless kernel when `policy`
/// resolves to a SIMD level, the scalar oracle otherwise.
#[inline]
pub fn write_i64_with(buf: &mut [u8], v: i64, policy: KernelPolicy) -> usize {
    if resolve(policy).is_simd() {
        bsoap_kernels::record_simd_hits(1);
        write_i64_branchless(buf, v)
    } else {
        write_i64(buf, v)
    }
}

/// Policy-dispatched `i32` writer (see [`write_i64_with`]).
#[inline]
pub fn write_i32_with(buf: &mut [u8], v: i32, policy: KernelPolicy) -> usize {
    write_i64_with(buf, v as i64, policy)
}

/// Write a signed 64-bit integer (`xsd:long`); returns bytes written (≤ 20).
pub fn write_i64(buf: &mut [u8], v: i64) -> usize {
    if v < 0 {
        buf[0] = b'-';
        // Negating in unsigned space handles i64::MIN without overflow.
        1 + write_u64(&mut buf[1..], (v as u64).wrapping_neg())
    } else {
        write_u64(buf, v as u64)
    }
}

/// Format an `i32` into a fresh `String`.
pub fn format_i32(v: i32) -> String {
    let mut buf = [0u8; 11];
    let n = write_i32(&mut buf, v);
    // The writer only emits ASCII.
    unsafe { std::str::from_utf8_unchecked(&buf[..n]) }.to_owned()
}

/// Format an `i64` into a fresh `String`.
pub fn format_i64(v: i64) -> String {
    let mut buf = [0u8; 20];
    let n = write_i64(&mut buf, v);
    unsafe { std::str::from_utf8_unchecked(&buf[..n]) }.to_owned()
}

/// Format a `u64` into a fresh `String`.
pub fn format_u64(v: u64) -> String {
    let mut buf = [0u8; 20];
    let n = write_u64(&mut buf, v);
    unsafe { std::str::from_utf8_unchecked(&buf[..n]) }.to_owned()
}

/// The number of bytes [`write_i32`] would produce for `v`, without writing.
///
/// Used by the differential engine to size fields before serializing.
pub fn i32_width(v: i32) -> usize {
    let (neg, mut u) = if v < 0 {
        (1, (v as i64).unsigned_abs())
    } else {
        (0, v as u64)
    };
    let mut digits = 1;
    while u >= 10 {
        u /= 10;
        digits += 1;
    }
    neg + digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_boundaries() {
        for v in [0u64, 1, 9, 10, 99, 100, 999, 12345, u64::MAX, u64::MAX - 1] {
            assert_eq!(format_u64(v), v.to_string());
        }
    }

    #[test]
    fn i32_boundaries() {
        for v in [0i32, 1, -1, 9, -9, 10, -10, 13902, i32::MIN, i32::MAX] {
            assert_eq!(format_i32(v), v.to_string());
        }
    }

    #[test]
    fn i64_boundaries() {
        for v in [0i64, -1, i64::MIN, i64::MAX, 1_000_000_000_000] {
            assert_eq!(format_i64(v), v.to_string());
        }
    }

    #[test]
    fn i32_max_width_is_11() {
        assert_eq!(format_i32(i32::MIN).len(), 11);
        assert_eq!(format_i32(i32::MIN).len(), crate::widths::INT_MAX_WIDTH);
    }

    #[test]
    fn i64_max_width_is_20() {
        assert_eq!(format_i64(i64::MIN).len(), 20);
        assert_eq!(format_i64(i64::MIN).len(), crate::widths::LONG_MAX_WIDTH);
    }

    #[test]
    fn width_predicts_writer() {
        for v in [0i32, 5, -5, 99, -99, 100, 12345, -12345, i32::MIN, i32::MAX] {
            assert_eq!(i32_width(v), format_i32(v).len(), "value {v}");
        }
    }

    #[test]
    fn paper_example_widths() {
        // §3 of the paper: "encoding the integer 1 requires only one
        // character, whereas 13902 requires five."
        assert_eq!(format_i32(1).len(), 1);
        assert_eq!(format_i32(13902).len(), 5);
    }

    #[test]
    fn every_two_digit_pair() {
        for v in 0..100u64 {
            assert_eq!(format_u64(v), v.to_string());
        }
    }

    #[test]
    fn powers_of_ten() {
        let mut v: u64 = 1;
        for _ in 0..19 {
            assert_eq!(format_u64(v), v.to_string());
            assert_eq!(format_u64(v - 1), (v - 1).to_string());
            assert_eq!(format_u64(v + 1), (v + 1).to_string());
            v *= 10;
        }
    }

    #[test]
    fn digit_count_matches_format_at_boundaries() {
        let mut cases = vec![0u64, 1, 9, u64::MAX, u64::MAX - 1];
        let mut p: u64 = 1;
        for _ in 0..19 {
            p *= 10;
            cases.extend([p - 1, p, p + 1]);
        }
        for v in cases {
            assert_eq!(digit_count_u64(v), v.to_string().len(), "value {v}");
        }
        for v in 0..=2048u64 {
            assert_eq!(digit_count_u64(v), v.to_string().len(), "value {v}");
        }
        assert_eq!(digit_count_u32(u32::MAX), 10);
    }

    #[test]
    fn branchless_matches_scalar_oracle() {
        let mut a = [0u8; 24];
        let mut b = [0u8; 24];
        for v in [
            0i64,
            1,
            -1,
            9,
            -9,
            10,
            99,
            100,
            13902,
            -13902,
            i32::MIN as i64,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ] {
            let na = write_i64(&mut a, v);
            let nb = write_i64_branchless(&mut b, v);
            assert_eq!(&a[..na], &b[..nb], "value {v}");
        }
        for v in [0u64, 7, 42, 10_000_000_000, u64::MAX] {
            let na = write_u64(&mut a, v);
            let nb = write_u64_branchless(&mut b, v);
            assert_eq!(&a[..na], &b[..nb], "value {v}");
        }
    }

    #[test]
    fn dispatch_wrappers_agree_with_oracle() {
        use bsoap_kernels::KernelPolicy;
        let mut a = [0u8; 24];
        let mut b = [0u8; 24];
        for v in [0i32, -5, 13902, i32::MIN, i32::MAX] {
            let na = write_i32_with(&mut a, v, KernelPolicy::Scalar);
            let nb = write_i32_with(&mut b, v, KernelPolicy::ForcedSimd);
            assert_eq!(&a[..na], &b[..nb], "value {v}");
        }
    }
}
