//! ASCII → number conversion: the deserialization direction.
//!
//! The server-side substrate (crate `bsoap-deser`) slices text content out
//! of incoming SOAP messages and hands the byte ranges here. Integer and
//! boolean parsing are implemented from scratch with explicit overflow
//! checks; `f64` parsing delegates to the standard library's correctly
//! rounded parser after lexical validation (writing a correctly rounded
//! strtod is out of scope for the paper, which never measures the parse
//! direction of the client).

/// Errors produced when a lexical form does not belong to the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Input was empty after trimming XML whitespace.
    Empty,
    /// A character outside the lexical space was found.
    InvalidChar { at: usize },
    /// The value does not fit in the target integer type.
    Overflow,
    /// The floating-point lexical form was malformed.
    BadFloat,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty lexical value"),
            ParseError::InvalidChar { at } => write!(f, "invalid character at byte {at}"),
            ParseError::Overflow => write!(f, "integer overflow"),
            ParseError::BadFloat => write!(f, "malformed floating-point value"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Strip leading/trailing XML whitespace (space, tab, CR, LF).
///
/// The stuffing technique pads fields with spaces, so every parse must
/// tolerate surrounding whitespace — this is what makes stuffing legal.
pub fn trim_xml_ws(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if matches!(first, b' ' | b'\t' | b'\r' | b'\n') {
            s = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = s {
        if matches!(last, b' ' | b'\t' | b'\r' | b'\n') {
            s = rest;
        } else {
            break;
        }
    }
    s
}

/// Parse an `xsd:int` lexical form into an `i32`.
pub fn parse_i32(s: &[u8]) -> Result<i32, ParseError> {
    let v = parse_i64(s)?;
    i32::try_from(v).map_err(|_| ParseError::Overflow)
}

/// Parse an `xsd:long` lexical form into an `i64`.
pub fn parse_i64(s: &[u8]) -> Result<i64, ParseError> {
    let s = trim_xml_ws(s);
    if s.is_empty() {
        return Err(ParseError::Empty);
    }
    let (neg, body) = match s[0] {
        b'-' => (true, &s[1..]),
        b'+' => (false, &s[1..]),
        _ => (false, s),
    };
    if body.is_empty() {
        return Err(ParseError::Empty);
    }
    // Accumulate negative to cover i64::MIN.
    let mut acc: i64 = 0;
    for (i, &c) in body.iter().enumerate() {
        if !c.is_ascii_digit() {
            return Err(ParseError::InvalidChar { at: i });
        }
        acc = acc
            .checked_mul(10)
            .and_then(|a| a.checked_sub((c - b'0') as i64))
            .ok_or(ParseError::Overflow)?;
    }
    if neg {
        Ok(acc)
    } else {
        acc.checked_neg().ok_or(ParseError::Overflow)
    }
}

/// Parse an `xsd:boolean` lexical form (`true`/`false`/`1`/`0`).
pub fn parse_bool(s: &[u8]) -> Result<bool, ParseError> {
    match trim_xml_ws(s) {
        b"true" | b"1" => Ok(true),
        b"false" | b"0" => Ok(false),
        b"" => Err(ParseError::Empty),
        _ => Err(ParseError::InvalidChar { at: 0 }),
    }
}

/// Parse an `xsd:double` lexical form into an `f64`.
///
/// Accepts the schema specials `INF`, `-INF`, `NaN` and decimal/scientific
/// forms (with `e` or `E`). Correct rounding is delegated to the standard
/// library parser after validation.
pub fn parse_f64(s: &[u8]) -> Result<f64, ParseError> {
    let s = trim_xml_ws(s);
    match s {
        b"" => return Err(ParseError::Empty),
        b"INF" | b"+INF" => return Ok(f64::INFINITY),
        b"-INF" => return Ok(f64::NEG_INFINITY),
        b"NaN" => return Ok(f64::NAN),
        _ => {}
    }
    let text = std::str::from_utf8(s).map_err(|_| ParseError::BadFloat)?;
    // Validate lexical space: optional sign, digits, optional fraction,
    // optional exponent. (std's parser accepts forms like "inf" and
    // "1_000"? — it does not, but we validate anyway so the lexical space
    // matches xsd:double exactly.)
    validate_double_lexical(s)?;
    text.parse::<f64>().map_err(|_| ParseError::BadFloat)
}

fn validate_double_lexical(s: &[u8]) -> Result<(), ParseError> {
    let mut i = 0;
    let n = s.len();
    if i < n && (s[i] == b'+' || s[i] == b'-') {
        i += 1;
    }
    let int_start = i;
    while i < n && s[i].is_ascii_digit() {
        i += 1;
    }
    let int_digits = i - int_start;
    let mut frac_digits = 0;
    if i < n && s[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < n && s[i].is_ascii_digit() {
            i += 1;
        }
        frac_digits = i - frac_start;
    }
    if int_digits == 0 && frac_digits == 0 {
        return Err(ParseError::BadFloat);
    }
    if i < n && (s[i] == b'e' || s[i] == b'E') {
        i += 1;
        if i < n && (s[i] == b'+' || s[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < n && s[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return Err(ParseError::BadFloat);
        }
    }
    if i != n {
        return Err(ParseError::InvalidChar { at: i });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_stuffing_whitespace() {
        assert_eq!(trim_xml_ws(b"   42   "), b"42");
        assert_eq!(trim_xml_ws(b"\t\r\n5\n"), b"5");
        assert_eq!(trim_xml_ws(b"    "), b"");
    }

    #[test]
    fn int_parsing() {
        assert_eq!(parse_i32(b"0"), Ok(0));
        assert_eq!(parse_i32(b"13902"), Ok(13902));
        assert_eq!(parse_i32(b"-2147483648"), Ok(i32::MIN));
        assert_eq!(parse_i32(b"2147483647"), Ok(i32::MAX));
        assert_eq!(parse_i32(b"2147483648"), Err(ParseError::Overflow));
        assert_eq!(parse_i32(b"  7 "), Ok(7));
        assert_eq!(parse_i32(b"+7"), Ok(7));
        assert!(parse_i32(b"").is_err());
        assert!(parse_i32(b"1x").is_err());
        assert!(parse_i32(b"-").is_err());
    }

    #[test]
    fn long_extremes() {
        assert_eq!(parse_i64(b"-9223372036854775808"), Ok(i64::MIN));
        assert_eq!(parse_i64(b"9223372036854775807"), Ok(i64::MAX));
        assert_eq!(parse_i64(b"9223372036854775808"), Err(ParseError::Overflow));
    }

    #[test]
    fn bool_forms() {
        assert_eq!(parse_bool(b"true"), Ok(true));
        assert_eq!(parse_bool(b"false"), Ok(false));
        assert_eq!(parse_bool(b"1"), Ok(true));
        assert_eq!(parse_bool(b"0"), Ok(false));
        assert_eq!(parse_bool(b" true "), Ok(true));
        assert!(parse_bool(b"TRUE").is_err());
    }

    #[test]
    fn double_specials() {
        assert_eq!(parse_f64(b"INF").unwrap(), f64::INFINITY);
        assert_eq!(parse_f64(b"-INF").unwrap(), f64::NEG_INFINITY);
        assert!(parse_f64(b"NaN").unwrap().is_nan());
    }

    #[test]
    #[allow(clippy::approx_constant)] // 3.14 is a parsing case, not pi
    fn double_forms() {
        assert_eq!(parse_f64(b"1").unwrap(), 1.0);
        assert_eq!(parse_f64(b"-0.5").unwrap(), -0.5);
        assert_eq!(parse_f64(b"2.5E-10").unwrap(), 2.5e-10);
        assert_eq!(parse_f64(b"1e3").unwrap(), 1000.0);
        assert_eq!(parse_f64(b".5").unwrap(), 0.5);
        assert_eq!(parse_f64(b"5.").unwrap(), 5.0);
        assert_eq!(parse_f64(b"  3.14  ").unwrap(), 3.14);
    }

    #[test]
    fn double_rejections() {
        assert!(parse_f64(b"").is_err());
        assert!(parse_f64(b".").is_err());
        assert!(parse_f64(b"1e").is_err());
        assert!(parse_f64(b"1.2.3").is_err());
        assert!(parse_f64(b"abc").is_err());
        assert!(
            parse_f64(b"inf").is_err(),
            "xsd:double requires uppercase INF"
        );
    }

    #[test]
    fn dtoa_parse_round_trip() {
        for v in [0.1, -7.25, 1e300, 5e-324, 123456.789] {
            let s = crate::dtoa::format_f64(v);
            assert_eq!(parse_f64(s.as_bytes()).unwrap().to_bits(), v.to_bits());
        }
    }
}
