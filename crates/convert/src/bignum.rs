//! Minimal arbitrary-precision unsigned integer used by the exact `dtoa`
//! digit generator.
//!
//! A finite `f64` decomposes as `m × 2^e` with `m < 2^53`. Its exact decimal
//! expansion is obtained without division by observing that
//!
//! * for `e ≥ 0`, the value is the integer `m << e` (≤ ~309 digits),
//! * for `e < 0`, `m × 2^e = (m × 5^|e|) × 10^e`, so the decimal *digits* of
//!   the value are exactly the digits of the integer `m × 5^|e|` with the
//!   decimal point shifted left by `|e|` places (`5^1074` is ~2,500 bits —
//!   comfortably in range for a small limb vector).
//!
//! The only operations required are therefore: construct from `u64`, multiply
//! by a small constant, shift left by bits, and convert to decimal digits by
//! repeated division by 10⁹. All are implemented here on a little-endian
//! `u32`-limb vector.

/// Arbitrary-precision unsigned integer with little-endian `u32` limbs.
///
/// The representation is normalized: the most significant limb is non-zero
/// unless the value is zero (in which case `limbs` is empty).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u32>,
}

/// Largest power of five that fits in a `u32`: 5¹³ = 1,220,703,125.
const POW5_13: u32 = 1_220_703_125;
/// 10⁹, the radix used when extracting decimal digits nine at a time.
const POW10_9: u32 = 1_000_000_000;

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = Vec::with_capacity(2);
        if v != 0 {
            limbs.push(v as u32);
            if v >> 32 != 0 {
                limbs.push((v >> 32) as u32);
            }
        }
        BigUint { limbs }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of limbs currently in use (for capacity diagnostics).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// In-place multiply by a small constant.
    pub fn mul_small(&mut self, rhs: u32) {
        if rhs == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u64 = 0;
        for limb in self.limbs.iter_mut() {
            let prod = *limb as u64 * rhs as u64 + carry;
            *limb = prod as u32;
            carry = prod >> 32;
        }
        while carry != 0 {
            self.limbs.push(carry as u32);
            carry >>= 32;
        }
    }

    /// In-place multiply by `5^k`.
    pub fn mul_pow5(&mut self, mut k: u32) {
        while k >= 13 {
            self.mul_small(POW5_13);
            k -= 13;
        }
        if k > 0 {
            self.mul_small(5u32.pow(k));
        }
    }

    /// In-place shift left by `k` bits (multiply by `2^k`).
    pub fn shl_bits(&mut self, k: u32) {
        if self.is_zero() || k == 0 {
            return;
        }
        let limb_shift = (k / 32) as usize;
        let bit_shift = k % 32;
        if bit_shift == 0 {
            let mut new = vec![0u32; limb_shift];
            new.extend_from_slice(&self.limbs);
            self.limbs = new;
            return;
        }
        let n = self.limbs.len();
        let mut new = vec![0u32; n + limb_shift + 1];
        for (i, &limb) in self.limbs.iter().enumerate() {
            let wide = (limb as u64) << bit_shift;
            new[i + limb_shift] |= wide as u32;
            new[i + limb_shift + 1] |= (wide >> 32) as u32;
        }
        self.limbs = new;
        self.trim();
    }

    /// In-place divide by a small constant; returns the remainder.
    pub fn divmod_small(&mut self, rhs: u32) -> u32 {
        debug_assert!(rhs != 0);
        let mut rem: u64 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 32) | *limb as u64;
            *limb = (cur / rhs as u64) as u32;
            rem = cur % rhs as u64;
        }
        self.trim();
        rem as u32
    }

    /// Convert to decimal ASCII digits, most significant first, with no
    /// leading zeros. Returns an empty vector for zero.
    pub fn to_decimal_digits(mut self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        // Extract nine digits per division by 10^9, least significant group
        // first, then reverse.
        let mut groups: Vec<u32> = Vec::with_capacity(self.limbs.len() * 2);
        while !self.is_zero() {
            groups.push(self.divmod_small(POW10_9));
        }
        let mut digits = Vec::with_capacity(groups.len() * 9);
        // The most significant group prints without zero padding.
        let mut iter = groups.iter().rev();
        if let Some(&first) = iter.next() {
            let mut tmp = [0u8; 10];
            let n = crate::itoa::write_u64(&mut tmp, first as u64);
            digits.extend_from_slice(&tmp[..n]);
        }
        for &g in iter {
            // Remaining groups print as exactly nine zero-padded digits.
            let mut v = g;
            let start = digits.len();
            digits.resize(start + 9, b'0');
            for slot in (0..9).rev() {
                digits[start + slot] = b'0' + (v % 10) as u8;
                v /= 10;
            }
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digits_string(b: BigUint) -> String {
        String::from_utf8(b.to_decimal_digits()).unwrap()
    }

    #[test]
    fn zero_round_trip() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::from_u64(0).is_zero());
        assert!(BigUint::zero().to_decimal_digits().is_empty());
    }

    #[test]
    fn small_values_to_decimal() {
        assert_eq!(digits_string(BigUint::from_u64(1)), "1");
        assert_eq!(digits_string(BigUint::from_u64(42)), "42");
        assert_eq!(
            digits_string(BigUint::from_u64(u64::MAX)),
            "18446744073709551615"
        );
        assert_eq!(
            digits_string(BigUint::from_u64(1_000_000_000)),
            "1000000000"
        );
        assert_eq!(
            digits_string(BigUint::from_u64(1_000_000_001)),
            "1000000001"
        );
    }

    #[test]
    fn mul_small_carries() {
        let mut b = BigUint::from_u64(u64::MAX);
        b.mul_small(u32::MAX);
        // (2^64-1)(2^32-1) = 79228162495817593515539431425
        assert_eq!(digits_string(b), "79228162495817593515539431425");
    }

    #[test]
    fn mul_small_by_zero_clears() {
        let mut b = BigUint::from_u64(12345);
        b.mul_small(0);
        assert!(b.is_zero());
    }

    #[test]
    fn shl_bits_matches_u128() {
        for shift in [0u32, 1, 7, 31, 32, 33, 63, 64, 65, 90] {
            let mut b = BigUint::from_u64(0xDEAD_BEEF);
            b.shl_bits(shift);
            let expected = (0xDEAD_BEEFu128) << shift;
            assert_eq!(digits_string(b), expected.to_string(), "shift {shift}");
        }
    }

    #[test]
    fn shl_zero_value_stays_zero() {
        let mut b = BigUint::zero();
        b.shl_bits(100);
        assert!(b.is_zero());
    }

    #[test]
    fn mul_pow5_known_values() {
        let mut b = BigUint::from_u64(1);
        b.mul_pow5(13);
        assert_eq!(digits_string(b), "1220703125");
        let mut b = BigUint::from_u64(1);
        b.mul_pow5(27);
        // 5^27 = 7450580596923828125
        assert_eq!(digits_string(b), "7450580596923828125");
    }

    #[test]
    fn mul_pow5_large_exponent() {
        // 5^100 has 70 digits; check first and last digits against the known
        // value 7888609052210118054117285652827862296732064351090230047702789306640625.
        let mut b = BigUint::from_u64(1);
        b.mul_pow5(100);
        let s = digits_string(b);
        assert_eq!(s.len(), 70);
        assert!(s.starts_with("78886090522101180541"));
        // 5^100 mod 10^7 = 6640625 (verified by modular exponentiation).
        assert!(s.ends_with("6640625"), "{}", &s[s.len() - 10..]);
    }

    #[test]
    fn divmod_small_steps() {
        let mut b = BigUint::from_u64(1_234_567_890_123);
        let r = b.divmod_small(POW10_9);
        assert_eq!(r, 567_890_123);
        assert_eq!(digits_string(b), "1234");
    }

    #[test]
    fn subnormal_scale_capacity() {
        // The largest scale dtoa ever needs: 5^1074 times a 53-bit mantissa.
        let mut b = BigUint::from_u64((1u64 << 53) - 1);
        b.mul_pow5(1074);
        let digits = b.to_decimal_digits();
        // 5^1074 has 751 digits; times ~9e15 gives 766-767 digits.
        assert!(
            digits.len() >= 760 && digits.len() <= 770,
            "{}",
            digits.len()
        );
    }
}
