//! # bsoap-convert — number ↔ ASCII conversion substrate
//!
//! The HPDC 2004 differential-serialization paper identifies the conversion
//! between in-memory numbers and their ASCII (XML) representations as the
//! dominant cost of a SOAP call — "90% of end-to-end time" (§2). This crate
//! is that substrate, built from scratch:
//!
//! * [`itoa`] — integer → ASCII with a two-digit lookup table,
//! * [`dtoa`] — `f64` → shortest round-trip decimal using exact big-integer
//!   digit generation (a Dragon-style algorithm; see module docs),
//! * [`grisu`] — the fast-path `f64` kernel: Grisu3 over a precomputed
//!   power-of-ten table, byte-identical to [`dtoa`] with an exact fallback
//!   on the rare uncertain cases; selected via [`FloatFormatter`],
//! * [`widths`] — the *maximum serialized width* metadata the paper's
//!   stuffing technique depends on (int = 11 chars, double = 24 chars,
//!   MIO = 46 chars), plus field-padding helpers,
//! * [`parse`] — the reverse conversions used by the deserializer.
//!
//! All encodings follow the XML Schema lexical spaces used by SOAP 1.1
//! section-5 encoding (`xsd:int`, `xsd:double`, `xsd:boolean`).
//!
//! ## Guarantees
//!
//! * `dtoa` output always re-parses to the exact same `f64` bit pattern
//!   (property-tested over the full domain, including subnormals),
//! * `dtoa` output never exceeds [`widths::DOUBLE_MAX_WIDTH`] (24) bytes,
//! * `itoa` output never exceeds [`widths::INT_MAX_WIDTH`] (11) bytes for
//!   `i32` and [`widths::LONG_MAX_WIDTH`] (20) for `i64`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bignum;
pub mod dtoa;
pub mod grisu;
pub mod itoa;
pub mod parse;
pub mod widths;

pub use dtoa::{format_f64, write_f64};
pub use grisu::{format_f64_fast, write_f64_fast, FloatFormatter};
pub use itoa::{
    digit_count_u32, digit_count_u64, format_i32, format_i64, format_u64, write_i32,
    write_i32_branchless, write_i32_with, write_i64, write_i64_branchless, write_i64_with,
    write_u64, write_u64_branchless,
};
pub use widths::{
    pad_spaces, pad_spaces_wide, pad_spaces_with, ScalarKind, BOOL_MAX_WIDTH, DOUBLE_MAX_WIDTH,
    INT_MAX_WIDTH, LONG_MAX_WIDTH, MIO_MAX_WIDTH, MIO_MIN_WIDTH,
};

/// Write a boolean in `xsd:boolean` lexical form (`true` / `false`).
///
/// Returns the number of bytes written (4 or 5).
#[inline]
pub fn write_bool(buf: &mut [u8], v: bool) -> usize {
    let s: &[u8] = if v { b"true" } else { b"false" };
    buf[..s.len()].copy_from_slice(s);
    s.len()
}

/// Format a boolean as its `xsd:boolean` lexical form.
pub fn format_bool(v: bool) -> &'static str {
    if v {
        "true"
    } else {
        "false"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_lexical_forms() {
        let mut buf = [0u8; 8];
        let n = write_bool(&mut buf, true);
        assert_eq!(&buf[..n], b"true");
        let n = write_bool(&mut buf, false);
        assert_eq!(&buf[..n], b"false");
        assert_eq!(format_bool(true), "true");
        assert_eq!(format_bool(false), "false");
    }

    #[test]
    fn bool_width_bound() {
        assert!("false".len() <= BOOL_MAX_WIDTH);
        assert!("true".len() <= BOOL_MAX_WIDTH);
    }
}
