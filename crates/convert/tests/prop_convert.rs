//! Property tests for the conversion substrate.
//!
//! The differential-serialization engine's correctness rests on these
//! conversions being exact: a value written into a template and later
//! parsed by a server must round-trip bit-for-bit.

use bsoap_convert::{dtoa, grisu, itoa, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Every finite f64 bit pattern formats within 24 bytes and re-parses
    /// to the identical bit pattern.
    #[test]
    fn dtoa_round_trips_all_finite(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let s = dtoa::format_f64(v);
        prop_assert!(s.len() <= dtoa::MAX_LEN, "{} is {} bytes", s, s.len());
        let back: f64 = s.parse().unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits(), "{}", s);
    }

    /// Our own xsd:double parser agrees with the formatter.
    #[test]
    fn own_parser_round_trips(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let s = dtoa::format_f64(v);
        let back = parse::parse_f64(s.as_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// Formatting is shortest: dropping the last significant digit must NOT
    /// round-trip (otherwise we would have chosen the shorter form).
    #[test]
    fn dtoa_is_minimal(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite() && v != 0.0);
        let (_, digits, k) = dtoa::shortest_digits(v);
        prop_assume!(digits.len() > 1);
        // Re-round the shortest digits to one fewer digit, every way
        // (truncate and truncate+increment), and check neither recovers v.
        let shorter = &digits[..digits.len() - 1];
        for bump in [0u8, 1] {
            let mut d = shorter.to_vec();
            if bump == 1 {
                // increment with carry
                let mut i = d.len();
                loop {
                    if i == 0 { d.insert(0, b'1'); d.pop(); break; }
                    i -= 1;
                    if d[i] == b'9' { d[i] = b'0'; } else { d[i] += 1; break; }
                }
            }
            let text = format!(
                "{}{}e{}",
                if v < 0.0 { "-" } else { "" },
                std::str::from_utf8(&d).unwrap(),
                k - d.len() as i32
            );
            if let Ok(back) = text.parse::<f64>() {
                prop_assert_ne!(
                    back.to_bits(), v.to_bits(),
                    "shorter digits {} recover {}", text, v
                );
            }
        }
    }

    #[test]
    fn itoa_i32_matches_display(v in any::<i32>()) {
        prop_assert_eq!(itoa::format_i32(v), v.to_string());
        prop_assert!(itoa::format_i32(v).len() <= bsoap_convert::INT_MAX_WIDTH);
        prop_assert_eq!(itoa::i32_width(v), v.to_string().len());
    }

    #[test]
    fn itoa_i64_matches_display(v in any::<i64>()) {
        prop_assert_eq!(itoa::format_i64(v), v.to_string());
        prop_assert!(itoa::format_i64(v).len() <= bsoap_convert::LONG_MAX_WIDTH);
    }

    #[test]
    fn parse_i32_round_trips(v in any::<i32>()) {
        prop_assert_eq!(parse::parse_i32(itoa::format_i32(v).as_bytes()), Ok(v));
    }

    #[test]
    fn parse_i64_round_trips(v in any::<i64>()) {
        prop_assert_eq!(parse::parse_i64(itoa::format_i64(v).as_bytes()), Ok(v));
    }

    /// Parsing tolerates the whitespace stuffing the engine emits.
    #[test]
    fn parse_tolerates_stuffing(v in any::<i32>(), pad_left in 0usize..6, pad_right in 0usize..6) {
        let padded = format!(
            "{}{}{}",
            " ".repeat(pad_left),
            itoa::format_i32(v),
            " ".repeat(pad_right)
        );
        prop_assert_eq!(parse::parse_i32(padded.as_bytes()), Ok(v));
    }

    /// "Nice" decimal literals with few digits format back to themselves.
    #[test]
    fn short_decimals_are_stable(int_part in 0u32..10_000, frac in 1u32..1000) {
        let text = format!("{int_part}.{frac:03}");
        let text = text.trim_end_matches('0');
        prop_assume!(!text.ends_with('.'));
        let v: f64 = text.parse().unwrap();
        prop_assert_eq!(dtoa::format_f64(v), text);
    }

    /// Differential: the Grisu3 fast kernel is byte-identical to the exact
    /// Dragon kernel on every bit pattern (including NaN payloads and
    /// infinities — the full u64 domain, no finiteness assumption).
    #[test]
    fn fast_kernel_matches_exact_all_bits(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assert_eq!(grisu::format_f64_fast(v), dtoa::format_f64(v), "bits 0x{:016X}", bits);
    }

    /// Differential, biased toward the subnormal range where Grisu's
    /// unnormalized boundaries are widest.
    #[test]
    fn fast_kernel_matches_exact_subnormals(bits in 0u64..(1u64 << 52), neg in any::<bool>()) {
        let v = f64::from_bits(bits | if neg { 1 << 63 } else { 0 });
        prop_assert_eq!(grisu::format_f64_fast(v), dtoa::format_f64(v), "bits 0x{:016X}", bits);
    }

    /// Differential over "round" decimal literals: the inputs most likely
    /// to exercise trailing-zero / shortest-form edge handling.
    #[test]
    fn fast_kernel_matches_exact_short_decimals(
        mantissa in 1u64..100_000_000,
        exp in -30i32..30,
        neg in any::<bool>(),
    ) {
        let v = mantissa as f64 * 10f64.powi(exp) * if neg { -1.0 } else { 1.0 };
        prop_assert_eq!(grisu::format_f64_fast(v), dtoa::format_f64(v), "{:?}", v);
    }
}

/// Deterministic hard cases for the fast kernel: exact half-ulp ties (the
/// cases Grisu3 must *fail* on and defer to the exact path), binade
/// boundaries where the lower rounding interval halves, subnormal
/// extremes, and the largest/smallest magnitudes.
#[test]
fn fast_kernel_hard_cases() {
    let mut cases: Vec<f64> = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MAX,
        f64::MIN_POSITIVE,          // smallest normal
        5e-324,                     // smallest subnormal
        2.225_073_858_507_201e-308, // largest subnormal
        1e300,
        1e-300,
        1.2345678912345678e300,
        -1.6054609345651112e-109,
        #[allow(clippy::excessive_precision)] // exact shortest form of 2 ulp
        9.881312916824931e-324,
        0.1,
        2.0f64.powi(-1),
        1.0 / 3.0,
        // Half-ulp tie family: 2^k + 0.5 ulp neighborhoods.
        f64::from_bits(0x3FF0000000000001), // 1.0 + 1 ulp
        f64::from_bits(0x4340000000000001), // 2^53 + 1 ulp
        f64::from_bits(0x0010000000000001),
        f64::from_bits(0x7FEFFFFFFFFFFFFF), // MAX
        f64::from_bits(0x0000000000000001), // min subnormal
        f64::from_bits(0x000FFFFFFFFFFFFF), // max subnormal
    ];
    // Powers of two sweep both binade-boundary branches of the lower
    // rounding interval.
    for k in -1074..=1023 {
        cases.push(2.0f64.powi(k));
    }
    // Powers of ten hit the cached-power grid alignment.
    for k in -308..=308 {
        cases.push(10.0f64.powi(k));
    }
    for v in cases {
        for s in [1.0, -1.0] {
            let v = v * s;
            assert_eq!(
                grisu::format_f64_fast(v),
                dtoa::format_f64(v),
                "value {v:?} bits 0x{:016X}",
                v.to_bits()
            );
        }
    }
}
