//! Property tests for the conversion substrate.
//!
//! The differential-serialization engine's correctness rests on these
//! conversions being exact: a value written into a template and later
//! parsed by a server must round-trip bit-for-bit.

use bsoap_convert::{dtoa, itoa, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Every finite f64 bit pattern formats within 24 bytes and re-parses
    /// to the identical bit pattern.
    #[test]
    fn dtoa_round_trips_all_finite(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let s = dtoa::format_f64(v);
        prop_assert!(s.len() <= dtoa::MAX_LEN, "{} is {} bytes", s, s.len());
        let back: f64 = s.parse().unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits(), "{}", s);
    }

    /// Our own xsd:double parser agrees with the formatter.
    #[test]
    fn own_parser_round_trips(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let s = dtoa::format_f64(v);
        let back = parse::parse_f64(s.as_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// Formatting is shortest: dropping the last significant digit must NOT
    /// round-trip (otherwise we would have chosen the shorter form).
    #[test]
    fn dtoa_is_minimal(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite() && v != 0.0);
        let (_, digits, k) = dtoa::shortest_digits(v);
        prop_assume!(digits.len() > 1);
        // Re-round the shortest digits to one fewer digit, every way
        // (truncate and truncate+increment), and check neither recovers v.
        let shorter = &digits[..digits.len() - 1];
        for bump in [0u8, 1] {
            let mut d = shorter.to_vec();
            if bump == 1 {
                // increment with carry
                let mut i = d.len();
                loop {
                    if i == 0 { d.insert(0, b'1'); d.pop(); break; }
                    i -= 1;
                    if d[i] == b'9' { d[i] = b'0'; } else { d[i] += 1; break; }
                }
            }
            let text = format!(
                "{}{}e{}",
                if v < 0.0 { "-" } else { "" },
                std::str::from_utf8(&d).unwrap(),
                k - d.len() as i32
            );
            if let Ok(back) = text.parse::<f64>() {
                prop_assert_ne!(
                    back.to_bits(), v.to_bits(),
                    "shorter digits {} recover {}", text, v
                );
            }
        }
    }

    #[test]
    fn itoa_i32_matches_display(v in any::<i32>()) {
        prop_assert_eq!(itoa::format_i32(v), v.to_string());
        prop_assert!(itoa::format_i32(v).len() <= bsoap_convert::INT_MAX_WIDTH);
        prop_assert_eq!(itoa::i32_width(v), v.to_string().len());
    }

    #[test]
    fn itoa_i64_matches_display(v in any::<i64>()) {
        prop_assert_eq!(itoa::format_i64(v), v.to_string());
        prop_assert!(itoa::format_i64(v).len() <= bsoap_convert::LONG_MAX_WIDTH);
    }

    #[test]
    fn parse_i32_round_trips(v in any::<i32>()) {
        prop_assert_eq!(parse::parse_i32(itoa::format_i32(v).as_bytes()), Ok(v));
    }

    #[test]
    fn parse_i64_round_trips(v in any::<i64>()) {
        prop_assert_eq!(parse::parse_i64(itoa::format_i64(v).as_bytes()), Ok(v));
    }

    /// Parsing tolerates the whitespace stuffing the engine emits.
    #[test]
    fn parse_tolerates_stuffing(v in any::<i32>(), pad_left in 0usize..6, pad_right in 0usize..6) {
        let padded = format!(
            "{}{}{}",
            " ".repeat(pad_left),
            itoa::format_i32(v),
            " ".repeat(pad_right)
        );
        prop_assert_eq!(parse::parse_i32(padded.as_bytes()), Ok(v));
    }

    /// "Nice" decimal literals with few digits format back to themselves.
    #[test]
    fn short_decimals_are_stable(int_part in 0u32..10_000, frac in 1u32..1000) {
        let text = format!("{int_part}.{frac:03}");
        let text = text.trim_end_matches('0');
        prop_assume!(!text.ends_with('.'));
        let v: f64 = text.parse().unwrap();
        prop_assert_eq!(dtoa::format_f64(v), text);
    }
}
