//! gSOAP-model streaming serializer.
//!
//! gSOAP compiles WSDL to C stubs that serialize arguments directly into a
//! send buffer on every call — nothing is remembered between calls. This
//! reimplementation keeps that architecture: one pass over the arguments,
//! converting values with the same routines bSOAP uses and appending tags
//! inline, into a buffer that is reused (but fully rewritten) per send.
//!
//! Using the *same* conversion routines as bSOAP is deliberate: the paper
//! notes bSOAP full serialization performs on par with gSOAP (Figures
//! 1–3), so the interesting delta — template reuse — is isolated from
//! incidental differences in number formatting speed.

use bsoap_convert::ScalarKind;
use bsoap_core::soap;
use bsoap_core::{EngineError, OpDesc, TypeDesc, Value};
use std::io::Write;

/// Streaming full serializer (one reusable buffer, rewritten every send).
#[derive(Debug, Default)]
pub struct GSoapLike {
    buf: Vec<u8>,
    scratch: Vec<u8>,
}

impl GSoapLike {
    /// New serializer with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialize a complete envelope for `op(args)`; the returned slice is
    /// valid until the next call.
    pub fn serialize(&mut self, op: &OpDesc, args: &[Value]) -> Result<&[u8], EngineError> {
        op.check_args(args)?;
        self.buf.clear();
        self.buf.extend_from_slice(soap::XML_DECL.as_bytes());
        self.buf
            .extend_from_slice(soap::envelope_open(&op.namespace).as_bytes());
        self.buf.extend_from_slice(soap::BODY_OPEN.as_bytes());
        self.buf
            .extend_from_slice(soap::op_open(&op.name).as_bytes());
        for (param, arg) in op.params.iter().zip(args) {
            match &param.desc {
                TypeDesc::Array { item } => self.array(&param.name, item, arg)?,
                desc => {
                    self.plain(&param.name, desc, arg)?;
                    self.buf.push(b'\n');
                }
            }
        }
        self.buf
            .extend_from_slice(soap::op_close(&op.name).as_bytes());
        self.buf.extend_from_slice(soap::CLOSES.as_bytes());
        Ok(&self.buf)
    }

    /// Serialize and write to `sink` — the baseline's "Send Time" path.
    pub fn send(
        &mut self,
        op: &OpDesc,
        args: &[Value],
        sink: &mut impl Write,
    ) -> Result<usize, EngineError> {
        self.serialize(op, args)?;
        sink.write_all(&self.buf)?;
        Ok(self.buf.len())
    }

    fn scalar_text(&mut self, v: &Value, kind: ScalarKind) -> Result<(), EngineError> {
        let err = || EngineError::TypeMismatch {
            at: "scalar".to_owned(),
            expected: kind.xsi_type(),
            found: v.variant_name(),
        };
        self.scratch.clear();
        match (kind, v) {
            (ScalarKind::Int, Value::Int(x)) => {
                let mut b = [0u8; 11];
                let n = bsoap_convert::write_i32(&mut b, *x);
                self.buf.extend_from_slice(&b[..n]);
            }
            (ScalarKind::Long, Value::Long(x)) => {
                let mut b = [0u8; 20];
                let n = bsoap_convert::write_i64(&mut b, *x);
                self.buf.extend_from_slice(&b[..n]);
            }
            (ScalarKind::Double, Value::Double(x)) => {
                let mut b = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
                let n = bsoap_convert::write_f64(&mut b, *x);
                self.buf.extend_from_slice(&b[..n]);
            }
            (ScalarKind::Bool, Value::Bool(x)) => {
                self.buf
                    .extend_from_slice(bsoap_convert::format_bool(*x).as_bytes());
            }
            (ScalarKind::Str, Value::Str(s)) => {
                bsoap_xml::escape_text_into(&mut self.scratch, s);
                self.buf.extend_from_slice(&self.scratch);
            }
            _ => return Err(err()),
        }
        Ok(())
    }

    fn plain(&mut self, name: &str, desc: &TypeDesc, value: &Value) -> Result<(), EngineError> {
        match (desc, value) {
            (TypeDesc::Scalar(kind), v) => {
                self.buf
                    .extend_from_slice(soap::scalar_open(name, kind.xsi_type()).as_bytes());
                self.scalar_text(v, *kind)?;
                self.buf
                    .extend_from_slice(soap::elem_close(name).as_bytes());
                Ok(())
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                self.buf.extend_from_slice(
                    format!("<{name} xsi:type=\"{}\">", desc.xsi_type()).as_bytes(),
                );
                for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                    self.plain(fname, fdesc, fval)?;
                }
                self.buf
                    .extend_from_slice(soap::elem_close(name).as_bytes());
                Ok(())
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: format!("element {name}"),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    TypeDesc::Array { .. } => "Array",
                    TypeDesc::Scalar(_) => "scalar",
                },
                found: v.variant_name(),
            }),
        }
    }

    fn array(&mut self, name: &str, item: &TypeDesc, value: &Value) -> Result<(), EngineError> {
        let len = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
            at: format!("array {name}"),
            expected: "array value",
            found: value.variant_name(),
        })?;
        let (prefix, suffix) = soap::array_open_parts(name, &item.xsi_type());
        self.buf.extend_from_slice(prefix.as_bytes());
        self.buf
            .extend_from_slice(bsoap_convert::format_u64(len as u64).as_bytes());
        self.buf.extend_from_slice(suffix.as_bytes());
        self.buf.push(b'\n');
        match (value, item) {
            (Value::DoubleArray(v), TypeDesc::Scalar(ScalarKind::Double)) => {
                let open = soap::scalar_open(soap::ITEM_NAME, "xsd:double");
                let close = soap::elem_close(soap::ITEM_NAME);
                let mut b = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
                for &x in v {
                    self.buf.extend_from_slice(open.as_bytes());
                    let n = bsoap_convert::write_f64(&mut b, x);
                    self.buf.extend_from_slice(&b[..n]);
                    self.buf.extend_from_slice(close.as_bytes());
                }
            }
            (Value::IntArray(v), TypeDesc::Scalar(ScalarKind::Int)) => {
                let open = soap::scalar_open(soap::ITEM_NAME, "xsd:int");
                let close = soap::elem_close(soap::ITEM_NAME);
                let mut b = [0u8; 11];
                for &x in v {
                    self.buf.extend_from_slice(open.as_bytes());
                    let n = bsoap_convert::write_i32(&mut b, x);
                    self.buf.extend_from_slice(&b[..n]);
                    self.buf.extend_from_slice(close.as_bytes());
                }
            }
            (Value::Array(elems), _) => {
                for elem in elems {
                    match item {
                        TypeDesc::Scalar(kind) => {
                            self.buf.extend_from_slice(
                                soap::scalar_open(soap::ITEM_NAME, kind.xsi_type()).as_bytes(),
                            );
                            self.scalar_text(elem, *kind)?;
                            self.buf
                                .extend_from_slice(soap::elem_close(soap::ITEM_NAME).as_bytes());
                        }
                        TypeDesc::Struct { fields, .. } => {
                            let Value::Struct(vals) = elem else {
                                return Err(EngineError::TypeMismatch {
                                    at: "array item".to_owned(),
                                    expected: "Struct",
                                    found: elem.variant_name(),
                                });
                            };
                            self.buf.extend_from_slice(
                                format!("<{} xsi:type=\"{}\">", soap::ITEM_NAME, item.xsi_type())
                                    .as_bytes(),
                            );
                            for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                                self.plain(fname, fdesc, fval)?;
                            }
                            self.buf
                                .extend_from_slice(soap::elem_close(soap::ITEM_NAME).as_bytes());
                        }
                        TypeDesc::Array { .. } => {
                            return Err(EngineError::StructureMismatch {
                                why: "nested arrays are not supported".into(),
                            })
                        }
                    }
                }
            }
            (v, _) => {
                return Err(EngineError::TypeMismatch {
                    at: format!("array {name}"),
                    expected: "array value matching item type",
                    found: v.variant_name(),
                })
            }
        }
        self.buf
            .extend_from_slice(soap::elem_close(name).as_bytes());
        self.buf.push(b'\n');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape() {
        let mut g = GSoapLike::new();
        let op = OpDesc::single(
            "send",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let text = String::from_utf8(
            g.serialize(&op, &[Value::DoubleArray(vec![1.5, 2.5])])
                .unwrap()
                .to_vec(),
        )
        .unwrap();
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("SOAP-ENC:arrayType=\"xsd:double[2]\""));
        assert!(text.contains("<item xsi:type=\"xsd:double\">1.5</item>"));
        assert!(text.ends_with("</SOAP-ENV:Envelope>\n"));
    }

    #[test]
    fn send_counts_bytes() {
        let mut g = GSoapLike::new();
        let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
        let mut sink = Vec::new();
        let n = g.send(&op, &[Value::Int(5)], &mut sink).unwrap();
        assert_eq!(n, sink.len());
        assert!(n > 100, "an envelope is never tiny");
    }

    #[test]
    fn string_escaping_applied() {
        let mut g = GSoapLike::new();
        let op = OpDesc::single("f", "urn:x", "s", TypeDesc::Scalar(ScalarKind::Str));
        let out = g.serialize(&op, &[Value::Str("<&>".into())]).unwrap();
        let text = String::from_utf8(out.to_vec()).unwrap();
        assert!(text.contains("&lt;&amp;&gt;"));
    }

    #[test]
    fn empty_array() {
        let mut g = GSoapLike::new();
        let op = OpDesc::single(
            "f",
            "urn:x",
            "a",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
        );
        let out = g.serialize(&op, &[Value::IntArray(vec![])]).unwrap();
        let text = String::from_utf8(out.to_vec()).unwrap();
        assert!(text.contains("xsd:int[0]"));
        assert!(!text.contains("<item"));
    }
}
