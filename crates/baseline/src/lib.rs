//! # bsoap-baseline — the paper's comparison toolkits, rebuilt
//!
//! The HPDC 2004 study compares bSOAP against two widely used SOAP stacks
//! of the era. Neither is usable here (gSOAP is C, XSOAP is Java), so this
//! crate reimplements their *serialization architectures* — the property
//! the comparison actually exercises:
//!
//! * [`GSoapLike`] — a streaming serializer in the gSOAP mold: walks the
//!   in-memory arguments on every send, converting each value and copying
//!   tags into one reusable output buffer. No state survives between
//!   sends. The paper observes bSOAP full serialization ≈ gSOAP; both
//!   appear in Figures 1–3.
//! * [`XSoapLike`] — a DOM-building serializer in the Java-toolkit mold:
//!   every send materializes an element tree with per-node heap
//!   allocations and per-value `String`s, then walks the tree into a fresh
//!   output buffer. The allocation-heavy two-pass design reproduces the
//!   constant-factor gap above the C-style serializers that Figure 2
//!   shows.
//!
//! Both produce envelopes byte-identical to bSOAP's first-time send
//! *modulo stuffing pad* (bSOAP stuffs its array-length field so resizes
//! never shift; the baselines, like the real toolkits, write natural
//! widths). Equivalence is asserted with [`bsoap_xml::strip_pad`] in this
//! crate's tests, so every Figure 1–3 comparison measures template reuse —
//! not formatting differences.

//! ```
//! use bsoap_baseline::GSoapLike;
//! use bsoap_core::{OpDesc, TypeDesc, Value};
//! use bsoap_convert::ScalarKind;
//!
//! let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Double));
//! let mut g = GSoapLike::new();
//! let bytes = g.serialize(&op, &[Value::Double(0.5)]).unwrap();
//! assert!(std::str::from_utf8(bytes).unwrap().contains(">0.5</v>"));
//! ```

pub mod gsoap;
pub mod xsoap;

pub use gsoap::GSoapLike;
pub use xsoap::XSoapLike;

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::value::mio;
    use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value};
    use bsoap_xml::strip_pad;

    fn ops_and_args() -> Vec<(OpDesc, Vec<Value>)> {
        vec![
            (
                OpDesc::single(
                    "sendDoubles",
                    "urn:bench",
                    "arr",
                    TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                ),
                vec![Value::DoubleArray(vec![
                    0.25,
                    -1.5,
                    3e300,
                    f64::MIN_POSITIVE,
                ])],
            ),
            (
                OpDesc::single(
                    "sendInts",
                    "urn:bench",
                    "arr",
                    TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
                ),
                vec![Value::IntArray(vec![i32::MIN, -1, 0, 1, i32::MAX])],
            ),
            (
                OpDesc::single(
                    "sendMios",
                    "urn:bench",
                    "arr",
                    TypeDesc::array_of(TypeDesc::mio()),
                ),
                vec![Value::Array(vec![mio(1, -2, 0.5), mio(100, 200, -3.25)])],
            ),
            (
                OpDesc::new(
                    "mixed",
                    "urn:svc",
                    vec![
                        bsoap_core::ParamDesc {
                            name: "id".into(),
                            desc: TypeDesc::Scalar(ScalarKind::Int),
                        },
                        bsoap_core::ParamDesc {
                            name: "label".into(),
                            desc: TypeDesc::Scalar(ScalarKind::Str),
                        },
                        bsoap_core::ParamDesc {
                            name: "point".into(),
                            desc: TypeDesc::mio(),
                        },
                    ],
                ),
                vec![Value::Int(7), Value::Str("a<b&c".into()), mio(3, 4, 5.5)],
            ),
        ]
    }

    #[test]
    fn gsoap_matches_bsoap_full_serialization() {
        let mut g = GSoapLike::new();
        for (op, args) in ops_and_args() {
            let tpl = MessageTemplate::build(
                EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
                &op,
                &args,
            )
            .unwrap();
            let baseline = g.serialize(&op, &args).unwrap().to_vec();
            assert_eq!(
                String::from_utf8(strip_pad(&baseline)).unwrap(),
                String::from_utf8(strip_pad(&tpl.to_bytes())).unwrap(),
                "op {}",
                op.name
            );
        }
    }

    #[test]
    fn xsoap_matches_gsoap_bytes() {
        let mut g = GSoapLike::new();
        let mut x = XSoapLike::new();
        for (op, args) in ops_and_args() {
            let a = g.serialize(&op, &args).unwrap().to_vec();
            let b = x.serialize(&op, &args).unwrap();
            assert_eq!(
                String::from_utf8(a).unwrap(),
                String::from_utf8(b).unwrap(),
                "op {}",
                op.name
            );
        }
    }

    #[test]
    fn repeated_serialization_is_stable() {
        let mut g = GSoapLike::new();
        let (op, args) = &ops_and_args()[0];
        let first = g.serialize(op, args).unwrap().to_vec();
        for _ in 0..3 {
            assert_eq!(g.serialize(op, args).unwrap(), &first[..]);
        }
    }

    #[test]
    fn type_errors_surface() {
        let mut g = GSoapLike::new();
        let mut x = XSoapLike::new();
        let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
        assert!(g.serialize(&op, &[Value::Double(1.0)]).is_err());
        assert!(x.serialize(&op, &[Value::Double(1.0)]).is_err());
        assert!(g.serialize(&op, &[]).is_err(), "arity");
    }
}
