//! XSOAP-model DOM-building serializer.
//!
//! XSOAP (SoapRMI) and the other Java toolkits of the period serialized in
//! two passes: reflectively build an element tree for the call, then walk
//! the tree emitting text. Each element is a heap object; each value
//! becomes a `String` before it reaches the output buffer. That design is
//! reproduced here literally — [`Node`] per element, `String` per value,
//! a fresh output allocation per send — because the allocation traffic
//! *is* the architectural difference Figures 1–3 measure (XSOAP sits a
//! constant factor above the C-style serializers at every message size).

use bsoap_convert::ScalarKind;
use bsoap_core::soap;
use bsoap_core::{EngineError, OpDesc, TypeDesc, Value};
use std::io::Write;

/// One element of the DOM built per send.
#[derive(Debug)]
pub struct Node {
    /// Element name (owned, as a Java DOM would).
    pub name: String,
    /// Attribute name/value pairs.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<Node>,
    /// Text content (leaf elements).
    pub text: Option<String>,
    /// Trailing newline after the close tag (envelope pretty-printing).
    newline: bool,
    /// Newline right after the open tag (container pretty-printing).
    open_newline: bool,
}

impl Node {
    fn elem(name: &str) -> Node {
        Node {
            name: name.to_owned(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: None,
            newline: false,
            open_newline: false,
        }
    }

    fn attr(mut self, name: &str, value: String) -> Node {
        self.attrs.push((name.to_owned(), value));
        self
    }

    fn text(mut self, text: String) -> Node {
        self.text = Some(text);
        self
    }

    fn with_newline(mut self) -> Node {
        self.newline = true;
        self
    }

    fn with_open_newline(mut self) -> Node {
        self.open_newline = true;
        self
    }

    /// Count of nodes in this subtree (tests/diagnostics).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }

    fn render(&self, out: &mut Vec<u8>, scratch: &mut Vec<u8>) {
        out.push(b'<');
        out.extend_from_slice(self.name.as_bytes());
        for (n, v) in &self.attrs {
            out.push(b' ');
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b"=\"");
            scratch.clear();
            bsoap_xml::escape_attr_into(scratch, v);
            out.extend_from_slice(scratch);
            out.push(b'"');
        }
        out.push(b'>');
        if let Some(t) = &self.text {
            scratch.clear();
            bsoap_xml::escape_text_into(scratch, t);
            out.extend_from_slice(scratch);
        }
        if self.open_newline {
            out.push(b'\n');
        }
        for c in &self.children {
            c.render(out, scratch);
        }
        out.extend_from_slice(b"</");
        out.extend_from_slice(self.name.as_bytes());
        out.push(b'>');
        if self.newline {
            out.push(b'\n');
        }
    }
}

/// DOM-building full serializer.
#[derive(Debug, Default)]
pub struct XSoapLike {
    _private: (),
}

impl XSoapLike {
    /// New serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the DOM for `op(args)` — pass one of the two-pass design.
    pub fn build_tree(&self, op: &OpDesc, args: &[Value]) -> Result<Node, EngineError> {
        op.check_args(args)?;
        let mut envelope = Node::elem("SOAP-ENV:Envelope")
            .with_open_newline()
            .with_newline()
            .attr("xmlns:SOAP-ENV", bsoap_xml::name::uris::SOAP_ENV.to_owned())
            .attr("xmlns:SOAP-ENC", bsoap_xml::name::uris::SOAP_ENC.to_owned())
            .attr("xmlns:xsi", bsoap_xml::name::uris::XSI.to_owned())
            .attr("xmlns:xsd", bsoap_xml::name::uris::XSD.to_owned())
            .attr("xmlns:ns1", op.namespace.clone())
            .attr(
                "SOAP-ENV:encodingStyle",
                bsoap_xml::name::uris::SOAP_ENC.to_owned(),
            );
        let mut body = Node::elem("SOAP-ENV:Body")
            .with_open_newline()
            .with_newline();
        let mut call = Node::elem(&format!("ns1:{}", op.name))
            .with_open_newline()
            .with_newline();
        for (param, arg) in op.params.iter().zip(args) {
            match &param.desc {
                TypeDesc::Array { item } => {
                    call.children.push(array_node(&param.name, item, arg)?);
                }
                desc => {
                    call.children
                        .push(plain_node(&param.name, desc, arg)?.with_newline());
                }
            }
        }
        body.children.push(call);
        envelope.children.push(body);
        Ok(envelope)
    }

    /// Serialize a complete envelope — both passes. Returns a freshly
    /// allocated buffer (as the Java stacks did).
    pub fn serialize(&mut self, op: &OpDesc, args: &[Value]) -> Result<Vec<u8>, EngineError> {
        let tree = self.build_tree(op, args)?;
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(soap::XML_DECL.as_bytes());
        let mut scratch = Vec::new();
        tree.render(&mut out, &mut scratch);
        Ok(out)
    }

    /// Serialize and write to `sink`.
    pub fn send(
        &mut self,
        op: &OpDesc,
        args: &[Value],
        sink: &mut impl Write,
    ) -> Result<usize, EngineError> {
        let out = self.serialize(op, args)?;
        sink.write_all(&out)?;
        Ok(out.len())
    }
}

/// Lexical form of a scalar as an owned `String` (the per-value allocation
/// that defines this architecture).
fn scalar_string(v: &Value, kind: ScalarKind) -> Result<String, EngineError> {
    let err = || EngineError::TypeMismatch {
        at: "scalar".to_owned(),
        expected: kind.xsi_type(),
        found: v.variant_name(),
    };
    Ok(match (kind, v) {
        (ScalarKind::Int, Value::Int(x)) => bsoap_convert::format_i32(*x),
        (ScalarKind::Long, Value::Long(x)) => bsoap_convert::format_i64(*x),
        (ScalarKind::Double, Value::Double(x)) => bsoap_convert::format_f64(*x),
        (ScalarKind::Bool, Value::Bool(x)) => bsoap_convert::format_bool(*x).to_owned(),
        (ScalarKind::Str, Value::Str(s)) => s.clone(),
        _ => return Err(err()),
    })
}

fn plain_node(name: &str, desc: &TypeDesc, value: &Value) -> Result<Node, EngineError> {
    match (desc, value) {
        (TypeDesc::Scalar(kind), v) => Ok(Node::elem(name)
            .attr("xsi:type", kind.xsi_type().to_owned())
            .text(scalar_string(v, *kind)?)),
        (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
            let mut n = Node::elem(name).attr("xsi:type", desc.xsi_type());
            for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                n.children.push(plain_node(fname, fdesc, fval)?);
            }
            Ok(n)
        }
        (d, v) => Err(EngineError::TypeMismatch {
            at: format!("element {name}"),
            expected: match d {
                TypeDesc::Struct { .. } => "Struct",
                TypeDesc::Array { .. } => "Array",
                TypeDesc::Scalar(_) => "scalar",
            },
            found: v.variant_name(),
        }),
    }
}

fn array_node(name: &str, item: &TypeDesc, value: &Value) -> Result<Node, EngineError> {
    let len = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
        at: format!("array {name}"),
        expected: "array value",
        found: value.variant_name(),
    })?;
    let mut arr = Node::elem(name)
        .attr("xsi:type", "SOAP-ENC:Array".to_owned())
        .attr(
            "SOAP-ENC:arrayType",
            format!("{}[{}]", item.xsi_type(), len),
        )
        .with_open_newline()
        .with_newline();
    match value {
        Value::DoubleArray(v) => {
            for &x in v {
                arr.children.push(
                    Node::elem(soap::ITEM_NAME)
                        .attr("xsi:type", "xsd:double".to_owned())
                        .text(bsoap_convert::format_f64(x)),
                );
            }
        }
        Value::IntArray(v) => {
            for &x in v {
                arr.children.push(
                    Node::elem(soap::ITEM_NAME)
                        .attr("xsi:type", "xsd:int".to_owned())
                        .text(bsoap_convert::format_i32(x)),
                );
            }
        }
        Value::Array(elems) => {
            for elem in elems {
                match item {
                    TypeDesc::Scalar(kind) => {
                        arr.children.push(
                            Node::elem(soap::ITEM_NAME)
                                .attr("xsi:type", kind.xsi_type().to_owned())
                                .text(scalar_string(elem, *kind)?),
                        );
                    }
                    TypeDesc::Struct { fields, .. } => {
                        let Value::Struct(vals) = elem else {
                            return Err(EngineError::TypeMismatch {
                                at: "array item".to_owned(),
                                expected: "Struct",
                                found: elem.variant_name(),
                            });
                        };
                        let mut n = Node::elem(soap::ITEM_NAME).attr("xsi:type", item.xsi_type());
                        for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                            n.children.push(plain_node(fname, fdesc, fval)?);
                        }
                        arr.children.push(n);
                    }
                    TypeDesc::Array { .. } => {
                        return Err(EngineError::StructureMismatch {
                            why: "nested arrays are not supported".into(),
                        })
                    }
                }
            }
        }
        other => {
            return Err(EngineError::TypeMismatch {
                at: format!("array {name}"),
                expected: "array value",
                found: other.variant_name(),
            })
        }
    }
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let x = XSoapLike::new();
        let op = OpDesc::single(
            "send",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
        );
        let tree = x
            .build_tree(&op, &[Value::IntArray(vec![1, 2, 3])])
            .unwrap();
        assert_eq!(tree.name, "SOAP-ENV:Envelope");
        // envelope + body + call + array + 3 items
        assert_eq!(tree.size(), 7);
    }

    #[test]
    fn per_value_strings_exist() {
        let x = XSoapLike::new();
        let op = OpDesc::single(
            "send",
            "urn:b",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let tree = x
            .build_tree(&op, &[Value::DoubleArray(vec![0.5, 1.5])])
            .unwrap();
        let arr = &tree.children[0].children[0].children[0];
        assert_eq!(arr.children[0].text.as_deref(), Some("0.5"));
        assert_eq!(arr.children[1].text.as_deref(), Some("1.5"));
    }

    #[test]
    fn attr_escaping() {
        let mut x = XSoapLike::new();
        let op = OpDesc::single("f", "urn:a\"b", "v", TypeDesc::Scalar(ScalarKind::Int));
        let out = x.serialize(&op, &[Value::Int(1)]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("urn:a&quot;b"));
    }
}
