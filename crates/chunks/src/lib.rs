//! # bsoap-chunks — chunked message buffer substrate
//!
//! The paper stores serialized messages "in variable sized potentially
//! noncontiguous chunks" (§3.2) so that on-the-fly expansion (*shifting*)
//! costs are "limited by the size of a chunk rather than the size of the
//! whole message". This crate is that storage layer:
//!
//! * [`ChunkConfig`] — the paper's three configurable parameters: default
//!   initial chunk size, split threshold, and the trailing reserve left
//!   empty "to allow for shifting without reallocation",
//! * [`ChunkStore`] — an ordered list of chunks with mechanical operations:
//!   sequential append (template build), in-place overwrite (perfect
//!   structural match), tail shifting (expansion), range deletion (array
//!   contraction), growth and splitting,
//! * a gather view ([`ChunkStore::io_slices`]) so non-contiguity never
//!   forces a copy on the way to a vectored socket send.
//!
//! *Policy lives elsewhere.* Deciding **where** to split (field boundaries)
//! or **when** to steal versus shift is the differential engine's job
//! (`bsoap-core`); this crate only guarantees the byte mechanics and keeps
//! them property-tested against a flat reference buffer.

#![deny(unsafe_op_in_unsafe_fn)]

mod store;

pub use store::{Chunk, ChunkConfig, ChunkStore, Loc, StoreCounters};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compile() {
        let store = ChunkStore::new(ChunkConfig::default());
        assert_eq!(store.total_len(), 0);
        let _ = Loc {
            chunk: 0,
            offset: 0,
        };
        let _ = Chunk::with_capacity(16);
    }
}
