//! The chunk store: mechanics of non-contiguous message storage.

use std::io::IoSlice;

/// The paper's three chunking knobs (§3.2): "Configurable parameters
/// determine the default initial chunk size, the threshold at which chunks
/// are split into two, and the space that is initially left empty at the
/// end of a chunk (to allow for shifting without reallocation)."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Default capacity of a freshly opened chunk, in bytes.
    pub initial_size: usize,
    /// A chunk asked to grow beyond this capacity splits instead.
    pub split_threshold: usize,
    /// Space left empty at the end of a chunk when sequential appends move
    /// on to a new chunk, and when a split creates a new chunk.
    pub reserve: usize,
}

impl ChunkConfig {
    /// The paper's common configuration: 32 KiB chunks (§4.3 tests both
    /// 8 KiB and 32 KiB; 32 KiB matches the socket send-buffer size used).
    pub fn k32() -> Self {
        ChunkConfig {
            initial_size: 32 * 1024,
            split_threshold: 64 * 1024,
            reserve: 512,
        }
    }

    /// The paper's 8 KiB chunk configuration.
    pub fn k8() -> Self {
        ChunkConfig {
            initial_size: 8 * 1024,
            split_threshold: 16 * 1024,
            reserve: 512,
        }
    }

    /// Usable bytes of a default chunk during sequential building.
    pub fn fill_limit(&self) -> usize {
        self.initial_size.saturating_sub(self.reserve).max(1)
    }
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self::k32()
    }
}

/// Address of a byte inside a [`ChunkStore`]: `(chunk index, byte offset)`.
///
/// This is the "pointer to its current location in the serialized message"
/// a DUT entry holds (§3.1). Chunk-relative addressing is what keeps DUT
/// fix-up after shifting bounded to one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Index of the chunk in the store.
    pub chunk: u32,
    /// Byte offset within that chunk.
    pub offset: u32,
}

impl Loc {
    /// Construct a location.
    pub fn new(chunk: usize, offset: usize) -> Self {
        Loc {
            chunk: chunk as u32,
            offset: offset as u32,
        }
    }
}

/// One contiguous memory region of the message.
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    buf: Vec<u8>,
}

impl Chunk {
    /// New empty chunk with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Chunk {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The used bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Used length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are used.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Allocated capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Unused trailing space (capacity − len) — shifting headroom.
    pub fn spare(&self) -> usize {
        self.buf.capacity() - self.buf.len()
    }
}

/// Cumulative work counters for one store: how much churn the chunk
/// mechanics have done. Plain (non-atomic) because every mutator takes
/// `&mut self`; the engine folds these into its observability registry
/// with [`ChunkStore::take_counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// In-place capacity grows (bounded or unbounded).
    pub grows: u64,
    /// Chunk splits.
    pub splits: u64,
    /// Empty chunks merged away after contraction.
    pub merges: u64,
    /// Bytes physically moved by shifts and intra-chunk range moves.
    pub moved_bytes: u64,
}

/// An ordered sequence of chunks holding one serialized message.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    chunks: Vec<Chunk>,
    config: ChunkConfig,
    total_len: usize,
    counters: StoreCounters,
}

impl ChunkStore {
    /// New empty store.
    pub fn new(config: ChunkConfig) -> Self {
        ChunkStore {
            chunks: Vec::new(),
            config,
            total_len: 0,
            counters: StoreCounters::default(),
        }
    }

    /// Cumulative work counters since construction (or the last
    /// [`Self::take_counters`]).
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Return the counters accumulated so far and reset them to zero —
    /// the delta-scoop the engine uses once per flush.
    pub fn take_counters(&mut self) -> StoreCounters {
        std::mem::take(&mut self.counters)
    }

    /// The configuration in effect.
    pub fn config(&self) -> ChunkConfig {
        self.config
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total used bytes across all chunks.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Borrow a chunk.
    pub fn chunk(&self, idx: usize) -> &Chunk {
        &self.chunks[idx]
    }

    /// Iterate over the chunks in message order.
    pub fn chunks(&self) -> impl Iterator<Item = &Chunk> {
        self.chunks.iter()
    }

    /// Mutable views of every chunk's used bytes, in message order.
    ///
    /// Each slice is independently borrowed, so callers can hand different
    /// chunks to different threads (the parallel dirty-flush shards work by
    /// chunk boundary). In-place writes only: lengths cannot change through
    /// these views, which is exactly the invariant that keeps concurrent
    /// in-width rewrites byte-equivalent to sequential ones.
    pub fn chunk_bufs_mut(&mut self) -> Vec<&mut [u8]> {
        self.chunks
            .iter_mut()
            .map(|c| c.buf.as_mut_slice())
            .collect()
    }

    // ------------------------------------------------------------------
    // Sequential building (first-time send)
    // ------------------------------------------------------------------

    /// Append `bytes` as one *region* guaranteed to be contiguous within a
    /// single chunk; returns its location.
    ///
    /// During template building, a region is a value field or a tag run —
    /// keeping each within one chunk is what lets a DUT entry be a single
    /// `(chunk, offset)` pointer.
    pub fn append_region(&mut self, bytes: &[u8]) -> Loc {
        let fill_limit = self.config.fill_limit();
        let need_new = match self.chunks.last() {
            None => true,
            Some(last) => last.len() + bytes.len() > fill_limit.max(last.len()),
        };
        if need_new {
            let cap = self
                .config
                .initial_size
                .max(bytes.len() + self.config.reserve);
            self.chunks.push(Chunk::with_capacity(cap));
        }
        let idx = self.chunks.len() - 1;
        let chunk = &mut self.chunks[idx];
        let offset = chunk.len();
        chunk.buf.extend_from_slice(bytes);
        self.total_len += bytes.len();
        Loc::new(idx, offset)
    }

    /// Force subsequent appends to open a new chunk (used by the engine to
    /// align structural boundaries, e.g. the start of an overlaid array).
    pub fn break_chunk(&mut self) {
        if self.chunks.last().is_some_and(|c| !c.is_empty()) {
            self.chunks
                .push(Chunk::with_capacity(self.config.initial_size));
        }
    }

    // ------------------------------------------------------------------
    // In-place access (perfect structural matches)
    // ------------------------------------------------------------------

    /// Overwrite `bytes.len()` bytes at `loc`. The range must be in-bounds.
    pub fn write_at(&mut self, loc: Loc, bytes: &[u8]) {
        let chunk = &mut self.chunks[loc.chunk as usize];
        let start = loc.offset as usize;
        chunk.buf[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Read `len` bytes at `loc`.
    pub fn read_at(&self, loc: Loc, len: usize) -> &[u8] {
        let chunk = &self.chunks[loc.chunk as usize];
        let start = loc.offset as usize;
        &chunk.buf[start..start + len]
    }

    // ------------------------------------------------------------------
    // Expansion / contraction (partial structural matches, shifting)
    // ------------------------------------------------------------------

    /// Ensure chunk `idx` has at least `delta` bytes of spare capacity,
    /// growing the allocation if permitted by the split threshold.
    ///
    /// Returns `true` if the spare is now available, `false` if growing
    /// would exceed `split_threshold` (the caller should split instead).
    pub fn try_grow(&mut self, idx: usize, delta: usize) -> bool {
        let chunk = &mut self.chunks[idx];
        if chunk.spare() >= delta {
            return true;
        }
        let needed = chunk.len() + delta;
        if needed > self.config.split_threshold {
            return false;
        }
        // Grow to the next power-of-two-ish step bounded by the threshold.
        let target = needed
            .max(chunk.capacity() * 2)
            .min(self.config.split_threshold);
        chunk.buf.reserve_exact(target - chunk.len());
        self.counters.grows += 1;
        true
    }

    /// Move the bytes of chunk `idx` from `offset` to the end right by
    /// `delta`, leaving a writable gap `[offset, offset+delta)`.
    ///
    /// Requires spare capacity ≥ `delta` (call [`Self::try_grow`] first).
    /// This is the paper's *shifting* primitive: "all the bytes of the
    /// message are shifted to the right to make room for the new value".
    pub fn shift_tail_right(&mut self, idx: usize, offset: usize, delta: usize) {
        if delta == 0 {
            return;
        }
        let chunk = &mut self.chunks[idx];
        assert!(chunk.spare() >= delta, "shift without spare capacity");
        let old_len = chunk.len();
        chunk.buf.resize(old_len + delta, 0);
        chunk.buf.copy_within(offset..old_len, offset + delta);
        self.total_len += delta;
        self.counters.moved_bytes += (old_len - offset) as u64;
    }

    /// Open several gaps in chunk `idx` with **one** right-to-left pass.
    ///
    /// `gaps` is a list of `(offset, delta)` pairs in strictly ascending
    /// offset order, all within the chunk's current length (a gap exactly at
    /// the chunk end is allowed). Requires spare capacity ≥ the sum of the
    /// deltas (call [`Self::try_grow`] first).
    ///
    /// This is the coalesced form of [`Self::shift_tail_right`]: where the
    /// sequential primitive moves the tail once per growing field —
    /// O(shifts × chunk) bytes — this moves each byte at most once, sliding
    /// the segment after gap *i* right by the cumulative delta of gaps
    /// `0..=i`. Total bytes moved is `chunk_len − gaps[0].offset`, which the
    /// churn counter records; the return value is that same figure so
    /// callers can account it per flush.
    pub fn open_gaps_right(&mut self, idx: usize, gaps: &[(usize, usize)]) -> u64 {
        self.open_gaps_impl(idx, gaps, false)
    }

    /// [`Self::open_gaps_right`] with kernel-policy dispatch: when `policy`
    /// resolves to a SIMD level, each coalesced segment is slid with at
    /// most two overlapping wide load/store pairs (≤ 32 bytes) or a single
    /// `memmove` (longer), instead of a length-dispatched `copy_within` per
    /// segment. Byte-identical to the scalar pass — same `moved_bytes`
    /// accounting, same gap contents — which the differential tests pin.
    pub fn open_gaps_right_with(
        &mut self,
        idx: usize,
        gaps: &[(usize, usize)],
        policy: bsoap_kernels::KernelPolicy,
    ) -> u64 {
        if gaps.is_empty() {
            return 0;
        }
        let wide = bsoap_kernels::resolve(policy).is_simd();
        if wide {
            bsoap_kernels::record_simd_hits(1);
        }
        self.open_gaps_impl(idx, gaps, wide)
    }

    fn open_gaps_impl(&mut self, idx: usize, gaps: &[(usize, usize)], wide: bool) -> u64 {
        if gaps.is_empty() {
            return 0;
        }
        let total: usize = gaps.iter().map(|&(_, d)| d).sum();
        let chunk = &mut self.chunks[idx];
        assert!(
            chunk.spare() >= total,
            "open_gaps_right without spare capacity"
        );
        let old_len = chunk.len();
        debug_assert!(
            gaps.windows(2).all(|w| w[0].0 < w[1].0),
            "gaps not ascending"
        );
        debug_assert!(gaps.last().is_some_and(|&(g, _)| g <= old_len));
        chunk.buf.resize(old_len + total, 0);
        // Right to left: the segment between gap i and gap i+1 lands shifted
        // by the sum of deltas 0..=i. Later (righter) segments move first so
        // no source byte is overwritten before it is read.
        let mut cum = total;
        for i in (0..gaps.len()).rev() {
            let (offset, delta) = gaps[i];
            let seg_end = if i + 1 < gaps.len() {
                gaps[i + 1].0
            } else {
                old_len
            };
            if wide {
                move_bytes_right_wide(&mut chunk.buf, offset, seg_end, cum);
            } else {
                chunk.buf.copy_within(offset..seg_end, offset + cum);
            }
            cum -= delta;
        }
        debug_assert_eq!(cum, 0);
        let moved = (old_len - gaps[0].0) as u64;
        self.total_len += total;
        self.counters.moved_bytes += moved;
        moved
    }

    /// Mutable view of one chunk's used bytes (in-place writes only; the
    /// length cannot change through this view).
    pub fn chunk_buf_mut(&mut self, idx: usize) -> &mut [u8] {
        self.chunks[idx].buf.as_mut_slice()
    }

    /// Delete `len` bytes at `offset` in chunk `idx`, moving the tail left
    /// (array contraction on a partial structural match).
    pub fn delete_range(&mut self, idx: usize, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let chunk = &mut self.chunks[idx];
        chunk.buf.drain(offset..offset + len);
        self.total_len -= len;
    }

    /// Grow chunk `idx` by at least `delta` spare bytes regardless of the
    /// split threshold — the correctness fallback for a single field region
    /// larger than the threshold.
    pub fn grow_unbounded(&mut self, idx: usize, delta: usize) {
        let chunk = &mut self.chunks[idx];
        if chunk.spare() < delta {
            chunk.buf.reserve_exact(delta);
            self.counters.grows += 1;
        }
    }

    /// Move the bytes `[start, end)` of chunk `idx` right by `delta`,
    /// within the chunk's current length (the *stealing* primitive: the
    /// destination overlaps a neighbor's padding, so `end + delta` must be
    /// ≤ the chunk length).
    pub fn move_range_right(&mut self, idx: usize, start: usize, end: usize, delta: usize) {
        if delta == 0 || start == end {
            return;
        }
        let chunk = &mut self.chunks[idx];
        assert!(
            end + delta <= chunk.len(),
            "move_range_right past chunk end"
        );
        chunk.buf.copy_within(start..end, start + delta);
        self.counters.moved_bytes += (end - start) as u64;
    }

    /// Insert an empty chunk at position `at` with the given capacity
    /// (array growth inserts fresh chunks between existing ones).
    pub fn insert_empty_chunk(&mut self, at: usize, cap: usize) {
        self.chunks.insert(at, Chunk::with_capacity(cap));
    }

    /// Append `bytes` to the end of chunk `idx`; returns the offset they
    /// were written at. Panics if the chunk's capacity cannot hold them
    /// (the caller sizes inserted chunks).
    pub fn append_into(&mut self, idx: usize, bytes: &[u8]) -> usize {
        let chunk = &mut self.chunks[idx];
        assert!(chunk.spare() >= bytes.len(), "append_into without capacity");
        let offset = chunk.len();
        chunk.buf.extend_from_slice(bytes);
        self.total_len += bytes.len();
        offset
    }

    /// Split chunk `idx` at byte `at`: the bytes `[at, len)` move to a new
    /// chunk inserted at `idx + 1`, created with the configured reserve.
    ///
    /// The caller picks `at` on a field boundary so no DUT region straddles
    /// the cut; afterwards it must rehome DUT pointers with
    /// `chunk' = idx+1, offset' = offset - at` for entries past the cut and
    /// bump the chunk index of all entries in later chunks by one.
    pub fn split_chunk(&mut self, idx: usize, at: usize) {
        let tail: Vec<u8> = {
            let chunk = &mut self.chunks[idx];
            assert!(at <= chunk.len(), "split point out of range");
            chunk.buf.split_off(at)
        };
        let mut new_chunk =
            Chunk::with_capacity((tail.len() + self.config.reserve).max(self.config.initial_size));
        new_chunk.buf.extend_from_slice(&tail);
        self.chunks.insert(idx + 1, new_chunk);
        self.counters.splits += 1;
    }

    /// Insert all chunks of `other` at position `at`, preserving their
    /// order. Returns the number of chunks inserted. Used when array growth
    /// grafts freshly serialized elements into an existing message.
    pub fn graft(&mut self, at: usize, other: ChunkStore) -> usize {
        let n = other.chunks.len();
        self.total_len += other.total_len;
        // Vec::splice keeps relative order of the inserted chunks.
        self.chunks.splice(at..at, other.chunks);
        n
    }

    /// Remove a chunk that has become empty (after contraction).
    pub fn remove_empty_chunk(&mut self, idx: usize) {
        assert!(self.chunks[idx].is_empty(), "removing non-empty chunk");
        self.chunks.remove(idx);
        self.counters.merges += 1;
    }

    // ------------------------------------------------------------------
    // Egress
    // ------------------------------------------------------------------

    /// Gather view for vectored I/O: one `IoSlice` per non-empty chunk.
    pub fn io_slices(&self) -> Vec<IoSlice<'_>> {
        self.chunks
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| IoSlice::new(c.bytes()))
            .collect()
    }

    /// Copy all chunks into one flat buffer (tests, content comparison).
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len);
        for c in &self.chunks {
            out.extend_from_slice(c.bytes());
        }
        out
    }

    /// Recompute and verify internal accounting (test support).
    ///
    /// Panics if `total_len` disagrees with the chunk contents.
    pub fn assert_consistent(&self) {
        let sum: usize = self.chunks.iter().map(|c| c.len()).sum();
        assert_eq!(sum, self.total_len, "total_len accounting drifted");
    }
}

/// Slide `buf[start..end]` right by `by` bytes with wide moves.
///
/// The destination overlaps the source whenever `by < end - start`, so the
/// classic small-`memmove` technique applies: load the *entire* segment
/// into registers first (two overlapping wide loads covering head and
/// tail), then store — no source byte is read after any destination byte
/// is written. Segments longer than 32 bytes fall through to `ptr::copy`
/// (memmove), which is already vectorized; the kernel's win is skipping
/// the length dispatch and call overhead for the short inter-gap segments
/// a shift storm is made of. Byte-identical to
/// `buf.copy_within(start..end, start + by)`.
#[inline]
fn move_bytes_right_wide(buf: &mut [u8], start: usize, end: usize, by: usize) {
    let len = end - start;
    if len == 0 || by == 0 {
        return;
    }
    assert!(end + by <= buf.len(), "wide move out of bounds");
    let p = buf.as_mut_ptr();
    // SAFETY: `start + len + by <= buf.len()` was just asserted, so every
    // load is inside `buf[start..end]` and every store inside
    // `buf[start+by..end+by]`. Each branch performs all of its loads before
    // its first store, which makes the overlap (`by < len`) harmless.
    unsafe {
        let src = p.add(start);
        let dst = p.add(start + by);
        if len <= 4 {
            let mut tmp = [0u8; 4];
            std::ptr::copy_nonoverlapping(src, tmp.as_mut_ptr(), len);
            std::ptr::copy_nonoverlapping(tmp.as_ptr(), dst, len);
        } else if len <= 8 {
            let head = (src as *const u32).read_unaligned();
            let tail = (src.add(len - 4) as *const u32).read_unaligned();
            (dst as *mut u32).write_unaligned(head);
            (dst.add(len - 4) as *mut u32).write_unaligned(tail);
        } else if len <= 16 {
            let head = (src as *const u64).read_unaligned();
            let tail = (src.add(len - 8) as *const u64).read_unaligned();
            (dst as *mut u64).write_unaligned(head);
            (dst.add(len - 8) as *mut u64).write_unaligned(tail);
        } else if len <= 32 {
            let head = (src as *const u128).read_unaligned();
            let tail = (src.add(len - 16) as *const u128).read_unaligned();
            (dst as *mut u128).write_unaligned(head);
            (dst.add(len - 16) as *mut u128).write_unaligned(tail);
        } else {
            std::ptr::copy(src, dst, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ChunkConfig {
        ChunkConfig {
            initial_size: 64,
            split_threshold: 128,
            reserve: 8,
        }
    }

    #[test]
    fn sequential_append_fills_and_rolls_over() {
        let mut store = ChunkStore::new(small_config());
        // fill limit = 56: 30 won't fit after 30, but 20 will.
        let a = store.append_region(&[b'a'; 30]);
        let b = store.append_region(&[b'b'; 30]);
        let c = store.append_region(&[b'c'; 20]);
        assert_eq!(a, Loc::new(0, 0));
        assert_eq!(b, Loc::new(1, 0), "second region must not straddle");
        assert_eq!(c, Loc::new(1, 30), "third region fits in chunk 1");
        assert_eq!(store.chunk_count(), 2);
        assert_eq!(store.total_len(), 80);
        store.assert_consistent();
    }

    #[test]
    fn oversized_region_gets_dedicated_chunk() {
        let mut store = ChunkStore::new(small_config());
        let big = vec![b'x'; 200];
        let loc = store.append_region(&big);
        assert_eq!(loc, Loc::new(0, 0));
        assert_eq!(store.chunk(0).len(), 200);
        assert!(store.chunk(0).spare() >= small_config().reserve);
    }

    #[test]
    fn write_and_read_at() {
        let mut store = ChunkStore::new(small_config());
        let loc = store.append_region(b"hello world");
        store.write_at(Loc { offset: 6, ..loc }, b"WORLD");
        assert_eq!(store.read_at(loc, 11), b"hello WORLD");
    }

    #[test]
    fn shift_tail_right_makes_gap() {
        let mut store = ChunkStore::new(small_config());
        let loc = store.append_region(b"abcdef");
        assert!(store.try_grow(0, 3));
        store.shift_tail_right(0, 2, 3);
        store.write_at(Loc { offset: 2, ..loc }, b"XYZ");
        assert_eq!(store.flatten(), b"abXYZcdef");
        store.assert_consistent();
    }

    #[test]
    fn shift_at_end_extends() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"abc");
        assert!(store.try_grow(0, 2));
        store.shift_tail_right(0, 3, 2);
        store.write_at(Loc::new(0, 3), b"de");
        assert_eq!(store.flatten(), b"abcde");
    }

    #[test]
    fn grow_respects_split_threshold() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(&[0u8; 60]);
        // Growing by 200 would exceed split_threshold (128).
        assert!(!store.try_grow(0, 200));
        // Growing by 40 is fine (60 + 40 ≤ 128).
        assert!(store.try_grow(0, 40));
        assert!(store.chunk(0).spare() >= 40);
    }

    #[test]
    fn split_chunk_moves_tail() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"0123456789");
        store.split_chunk(0, 4);
        assert_eq!(store.chunk_count(), 2);
        assert_eq!(store.chunk(0).bytes(), b"0123");
        assert_eq!(store.chunk(1).bytes(), b"456789");
        assert_eq!(store.flatten(), b"0123456789");
        assert!(store.chunk(1).spare() >= small_config().reserve);
        store.assert_consistent();
    }

    #[test]
    fn split_at_end_makes_empty_tail_chunk() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"abc");
        store.split_chunk(0, 3);
        assert_eq!(store.chunk_count(), 2);
        assert!(store.chunk(1).is_empty());
        store.remove_empty_chunk(1);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn delete_range_contracts() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"0123456789");
        store.delete_range(0, 2, 5);
        assert_eq!(store.flatten(), b"01789");
        assert_eq!(store.total_len(), 5);
        store.assert_consistent();
    }

    #[test]
    fn move_range_right_overlapping() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"abcdef....");
        store.move_range_right(0, 2, 6, 3);
        // bytes [2..6) = "cdef" moved to [5..9)
        assert_eq!(&store.flatten()[5..9], b"cdef");
        assert_eq!(store.total_len(), 10, "length unchanged");
    }

    #[test]
    fn grow_unbounded_ignores_threshold() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(&[0u8; 60]);
        store.grow_unbounded(0, 500);
        assert!(store.chunk(0).spare() >= 500);
    }

    #[test]
    fn insert_and_append_into() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"head");
        store.break_chunk();
        store.append_region(b"tail");
        store.insert_empty_chunk(1, 32);
        let off = store.append_into(1, b"mid");
        assert_eq!(off, 0);
        assert_eq!(store.flatten(), b"headmidtail");
        store.assert_consistent();
    }

    #[test]
    fn io_slices_match_flatten() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(&[b'a'; 40]);
        store.append_region(&[b'b'; 40]);
        store.append_region(&[b'c'; 40]);
        let slices = store.io_slices();
        assert!(slices.len() >= 2);
        let gathered: Vec<u8> = slices.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(gathered, store.flatten());
    }

    #[test]
    fn open_gaps_right_matches_sequential_shifts() {
        // The coalesced pass must produce the same bytes as opening the
        // gaps one at a time with shift_tail_right (ascending, so each
        // later gap position must account for earlier deltas).
        let gaps = [(2usize, 3usize), (5, 1), (9, 4)];

        let mut seq = ChunkStore::new(small_config());
        seq.append_region(b"abcdefghijkl");
        assert!(seq.try_grow(0, 8));
        let mut slid = 0;
        for &(g, d) in &gaps {
            seq.shift_tail_right(0, g + slid, d);
            slid += d;
        }

        let mut coal = ChunkStore::new(small_config());
        coal.append_region(b"abcdefghijkl");
        assert!(coal.try_grow(0, 8));
        let moved = coal.open_gaps_right(0, &gaps);

        // Gap contents are undefined in both (stale bytes the caller will
        // overwrite); compare only the displaced original bytes by zeroing
        // the gaps in both copies first.
        let mut seq_bytes = seq.flatten();
        let mut coal_bytes = coal.flatten();
        let mut cum = 0;
        for &(g, d) in &gaps {
            seq_bytes[g + cum..g + cum + d].fill(0);
            coal_bytes[g + cum..g + cum + d].fill(0);
            cum += d;
        }
        assert_eq!(seq_bytes, coal_bytes);
        assert_eq!(coal.total_len(), 12 + 8);
        // One pass touches chunk_len − first_gap bytes; the sequential
        // path re-moves the tail per gap and must strictly exceed it.
        assert_eq!(moved, (12 - 2) as u64);
        assert!(seq.counters().moved_bytes > coal.counters().moved_bytes);
        coal.assert_consistent();
    }

    #[test]
    fn open_gaps_right_single_gap_equals_shift() {
        let mut a = ChunkStore::new(small_config());
        a.append_region(b"abcdef");
        assert!(a.try_grow(0, 3));
        a.shift_tail_right(0, 2, 3);

        let mut b = ChunkStore::new(small_config());
        b.append_region(b"abcdef");
        assert!(b.try_grow(0, 3));
        b.open_gaps_right(0, &[(2, 3)]);

        let mut fa = a.flatten();
        let mut fb = b.flatten();
        fa[2..5].fill(0);
        fb[2..5].fill(0);
        assert_eq!(fa, fb);
        assert_eq!(a.counters().moved_bytes, b.counters().moved_bytes);
    }

    #[test]
    fn open_gaps_right_gap_at_chunk_end() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"abc");
        assert!(store.try_grow(0, 4));
        let moved = store.open_gaps_right(0, &[(1, 2), (3, 2)]);
        store.write_at(Loc::new(0, 1), b"XY");
        store.write_at(Loc::new(0, 5), b"ZW");
        assert_eq!(store.flatten(), b"aXYbcZW");
        assert_eq!(moved, 2, "only bytes after the first gap move");
        store.assert_consistent();
    }

    #[test]
    fn open_gaps_right_empty_slice_is_free() {
        // Satellite pin: an empty gap list must return 0 without touching
        // the chunk bytes or any counter, under every kernel policy.
        use bsoap_kernels::KernelPolicy;
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"untouched");
        let bytes_before = store.flatten();
        let counters_before = store.counters();
        let len_before = store.total_len();
        assert_eq!(store.open_gaps_right(0, &[]), 0);
        assert_eq!(store.open_gaps_right_with(0, &[], KernelPolicy::Scalar), 0);
        assert_eq!(
            store.open_gaps_right_with(0, &[], KernelPolicy::ForcedSimd),
            0
        );
        assert_eq!(store.flatten(), bytes_before);
        assert_eq!(store.counters(), counters_before);
        assert_eq!(store.total_len(), len_before);
        store.assert_consistent();
    }

    #[test]
    fn open_gaps_wide_is_byte_identical_to_scalar() {
        // Every segment-length class of the wide mover (0, 1–4, 5–8, 9–16,
        // 17–32, >32 bytes) plus gap deltas spanning the same classes.
        use bsoap_kernels::KernelPolicy;
        let payload: Vec<u8> = (0..200u8).collect();
        let gap_sets: &[&[(usize, usize)]] = &[
            &[(0, 1)],
            &[(200, 5)],
            &[(3, 2), (4, 1)],
            &[(0, 3), (2, 40), (3, 1)],
            &[(10, 1), (12, 2), (16, 3), (25, 4), (50, 20), (120, 7)],
            &[(1, 1), (199, 1)],
            &[(7, 33), (8, 17), (40, 9), (90, 5), (100, 1)],
        ];
        for gaps in gap_sets {
            let total: usize = gaps.iter().map(|&(_, d)| d).sum();
            let mut scalar = ChunkStore::new(ChunkConfig::k8());
            scalar.append_region(&payload);
            assert!(scalar.try_grow(0, total));
            let moved_s = scalar.open_gaps_right_with(0, gaps, KernelPolicy::Scalar);

            let mut wide = ChunkStore::new(ChunkConfig::k8());
            wide.append_region(&payload);
            assert!(wide.try_grow(0, total));
            let moved_w = wide.open_gaps_right_with(0, gaps, KernelPolicy::ForcedSimd);

            assert_eq!(moved_s, moved_w, "moved accounting for {gaps:?}");
            assert_eq!(
                scalar.flatten(),
                wide.flatten(),
                "bytes diverged for {gaps:?}"
            );
            assert_eq!(scalar.counters(), wide.counters());
            wide.assert_consistent();
        }
    }

    #[test]
    fn chunk_buf_mut_writes_in_place() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"hello");
        store.chunk_buf_mut(0)[..5].copy_from_slice(b"HELLO");
        assert_eq!(store.flatten(), b"HELLO");
    }

    #[test]
    fn break_chunk_opens_boundary() {
        let mut store = ChunkStore::new(small_config());
        store.append_region(b"head");
        store.break_chunk();
        let loc = store.append_region(b"tail");
        assert_eq!(loc.chunk, 1);
        // One break opens a fresh empty chunk; a second break on the
        // already-empty tail is a no-op.
        store.break_chunk();
        store.break_chunk();
        assert_eq!(store.chunk_count(), 3);
    }
}
