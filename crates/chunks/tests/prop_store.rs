//! Property test: a `ChunkStore` driven by an arbitrary operation sequence
//! stays byte-identical to a flat `Vec<u8>` reference model, regardless of
//! how the bytes are distributed across chunks.

use bsoap_chunks::{ChunkConfig, ChunkStore, Loc};
use proptest::prelude::*;

/// Operations the engine performs on the store, in reference-model terms.
#[derive(Clone, Debug)]
enum Op {
    /// Append a region of the given fill byte and length.
    Append(u8, usize),
    /// Overwrite `len` bytes at a (wrapped) global position.
    Write(u8, usize, usize),
    /// Shift-insert `len` bytes at a (wrapped) global position.
    Insert(u8, usize, usize),
    /// Delete up to `len` bytes at a (wrapped) global position.
    Delete(usize, usize),
    /// Split the chunk owning a (wrapped) global position at that point.
    Split(usize),
    /// Start a new chunk boundary.
    Break,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1usize..50).prop_map(|(b, n)| Op::Append(b, n)),
        (any::<u8>(), any::<usize>(), 1usize..20).prop_map(|(b, p, n)| Op::Write(b, p, n)),
        (any::<u8>(), any::<usize>(), 1usize..20).prop_map(|(b, p, n)| Op::Insert(b, p, n)),
        (any::<usize>(), 1usize..20).prop_map(|(p, n)| Op::Delete(p, n)),
        any::<usize>().prop_map(Op::Split),
        Just(Op::Break),
    ]
}

/// Translate a global byte position into (chunk, offset) for the store.
fn locate(store: &ChunkStore, global: usize) -> Option<(usize, usize)> {
    let mut remaining = global;
    for idx in 0..store.chunk_count() {
        let len = store.chunk(idx).len();
        if remaining < len {
            return Some((idx, remaining));
        }
        remaining -= len;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn store_matches_flat_reference(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let config = ChunkConfig { initial_size: 48, split_threshold: 96, reserve: 8 };
        let mut store = ChunkStore::new(config);
        let mut model: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                Op::Append(b, n) => {
                    let bytes = vec![b; n];
                    store.append_region(&bytes);
                    model.extend_from_slice(&bytes);
                }
                Op::Write(b, pos, n) => {
                    if model.is_empty() { continue; }
                    let pos = pos % model.len();
                    let (chunk, offset) = locate(&store, pos).unwrap();
                    // clamp the write to the end of the owning chunk AND the model
                    let chunk_room = store.chunk(chunk).len() - offset;
                    let n = n.min(chunk_room).min(model.len() - pos);
                    if n == 0 { continue; }
                    let bytes = vec![b; n];
                    store.write_at(Loc::new(chunk, offset), &bytes);
                    model[pos..pos + n].copy_from_slice(&bytes);
                }
                Op::Insert(b, pos, n) => {
                    if model.is_empty() { continue; }
                    let pos = pos % (model.len() + 1);
                    let Some((chunk, offset)) = locate(&store, pos) else { continue };
                    if !store.try_grow(chunk, n) {
                        // Split at the insertion point, then retry in the tail chunk.
                        store.split_chunk(chunk, offset);
                        let (chunk2, offset2) = (chunk + 1, 0usize);
                        // A split at a small offset leaves a tail that may still
                        // exceed the split threshold; fall back to the engine's
                        // correctness path, exactly as the resize module does.
                        if !store.try_grow(chunk2, n) {
                            store.grow_unbounded(chunk2, n);
                        }
                        store.shift_tail_right(chunk2, offset2, n);
                        store.write_at(Loc::new(chunk2, offset2), &vec![b; n]);
                    } else {
                        store.shift_tail_right(chunk, offset, n);
                        store.write_at(Loc::new(chunk, offset), &vec![b; n]);
                    }
                    for _ in 0..n { model.insert(pos, b); }
                }
                Op::Delete(pos, n) => {
                    if model.is_empty() { continue; }
                    let pos = pos % model.len();
                    let (chunk, offset) = locate(&store, pos).unwrap();
                    let chunk_room = store.chunk(chunk).len() - offset;
                    let n = n.min(chunk_room);
                    if n == 0 { continue; }
                    store.delete_range(chunk, offset, n);
                    model.drain(pos..pos + n);
                    if store.chunk(chunk).is_empty() {
                        store.remove_empty_chunk(chunk);
                    }
                }
                Op::Split(pos) => {
                    if model.is_empty() { continue; }
                    let pos = pos % model.len();
                    let (chunk, offset) = locate(&store, pos).unwrap();
                    store.split_chunk(chunk, offset);
                    if store.chunk(chunk).is_empty() {
                        store.remove_empty_chunk(chunk);
                    }
                }
                Op::Break => store.break_chunk(),
            }
            store.assert_consistent();
            prop_assert_eq!(store.flatten(), model.clone());
        }

        // The gather view agrees with the flat view at the end.
        let gathered: Vec<u8> = store
            .io_slices()
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        prop_assert_eq!(gathered, model);
    }
}
