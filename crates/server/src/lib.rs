//! # bsoap-server — a SOAP service host with differential paths on both
//! sides of the wire
//!
//! "Although we focus our discussion and performance study on the client
//! side, differential serialization could be used equally well by a
//! server sending identical (or similar) responses to multiple separate
//! clients" (paper §3). This crate is that other half:
//!
//! * **Requests** are parsed with
//!   [`DiffDeserializer`](bsoap_deser::DiffDeserializer) — per-operation
//!   reference messages let repeat callers skip full parsing (§6's
//!   differential deserialization);
//! * **Responses** are serialized through per-operation
//!   [`MessageTemplate`](bsoap_core::MessageTemplate)s — a response whose
//!   values match the previous one (to *any* client) is a content match,
//!   and a same-shape response patches only changed values. This is the
//!   §3.4 "Google and Amazon.com" scenario: "the XML Schema used for the
//!   responses … is always the same; only the values change."
//!
//! [`Service`] holds operation handlers; [`HttpServer`] runs it over
//! loopback HTTP (one thread per connection, `Content-Length` framing).
//!
//! ```
//! use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, ParamDesc, TypeDesc, Value};
//! use bsoap_convert::ScalarKind;
//! use bsoap_server::Service;
//!
//! let op = OpDesc::single("double", "urn:m", "x", TypeDesc::Scalar(ScalarKind::Int));
//! let mut svc = Service::new("urn:m", EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml));
//! svc.register(
//!     op.clone(),
//!     vec![ParamDesc { name: "y".into(), desc: TypeDesc::Scalar(ScalarKind::Int) }],
//!     |args| {
//!         let Value::Int(x) = args[0] else { return Err("type".into()) };
//!         Ok(vec![Value::Int(x * 2)])
//!     },
//! );
//! let request = MessageTemplate::build(EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml), &op, &[Value::Int(21)])
//!     .unwrap()
//!     .to_bytes();
//! let response = svc.dispatch("double", &request).unwrap();
//! let parsed =
//!     bsoap_deser::parse_envelope(&response, &svc.response_desc("double").unwrap()).unwrap();
//! assert_eq!(parsed, vec![Value::Int(42)]);
//! ```

pub mod dispatch;
pub mod host;

pub use dispatch::{HandlerError, Service, ServiceStats};
pub use host::HttpServer;
