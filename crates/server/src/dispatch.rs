//! Operation registry and the per-message dispatch pipeline.

use bsoap_core::{
    Checkout, EngineConfig, MessageTemplate, OpDesc, SendTier, StoreKey, TemplateKey,
    TemplateStore, Value, WireFormat,
};
use bsoap_deser::{BinaryDiffDeserializer, DeserError, DiffDeserializer, DiffOutcome};
use bsoap_obs::{Counter, Metrics, Recorder};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Error produced by an operation handler or the dispatch pipeline.
#[derive(Debug)]
pub enum HandlerError {
    /// No operation with the requested name is registered.
    UnknownOperation(String),
    /// Request body failed to deserialize.
    BadRequest(DeserError),
    /// The handler itself failed (becomes a SOAP fault).
    Fault(String),
    /// Response serialization failed.
    Response(bsoap_core::EngineError),
    /// The request used a wire format this service does not accept
    /// (maps to HTTP 415; clients downgrade to XML and retry).
    UnsupportedFormat(WireFormat),
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerError::UnknownOperation(n) => write!(f, "unknown operation {n}"),
            HandlerError::BadRequest(e) => write!(f, "bad request: {e}"),
            HandlerError::Fault(m) => write!(f, "fault: {m}"),
            HandlerError::Response(e) => write!(f, "response serialization: {e}"),
            HandlerError::UnsupportedFormat(w) => {
                write!(f, "unsupported wire format {}", w.name())
            }
        }
    }
}

impl std::error::Error for HandlerError {}

/// Handler: request argument values in, response argument values out.
pub type Handler = dyn Fn(&[Value]) -> Result<Vec<Value>, String> + Send + Sync;

struct Operation {
    request: OpDesc,
    response: OpDesc,
    handler: Box<Handler>,
    deser: Mutex<DiffDeserializer>,
    /// Binary-lane twin of `deser`: requests negotiated onto the compact
    /// binary format land here, keeping each lane's retained reference
    /// message (and content-match fast path) independent.
    deser_bin: Mutex<BinaryDiffDeserializer>,
    /// The shared response template (§3: one template serves "multiple
    /// separate clients").
    response_tpl: Mutex<Option<MessageTemplate>>,
    /// Binary-lane response template. Never aliased with `response_tpl`:
    /// the two lanes have different byte geometry, so each keeps its own
    /// resident template (mirroring `TemplateKey::format` on the store
    /// path).
    response_tpl_bin: Mutex<Option<MessageTemplate>>,
}

impl Operation {
    fn response_slot(&self, format: WireFormat) -> &Mutex<Option<MessageTemplate>> {
        match format {
            WireFormat::SoapXml => &self.response_tpl,
            WireFormat::CompactBinary => &self.response_tpl_bin,
        }
    }
}

/// Cumulative service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests dispatched successfully.
    pub requests: u64,
    /// Requests that arrived byte-identical to the previous one.
    pub requests_identical: u64,
    /// Requests parsed differentially (leaf-level).
    pub requests_differential: u64,
    /// Requests fully parsed.
    pub requests_full_parse: u64,
    /// Responses resent verbatim (content matches).
    pub responses_content: u64,
    /// Responses patched in place (perfect structural).
    pub responses_perfect: u64,
    /// Responses resized (partial structural).
    pub responses_partial: u64,
    /// Responses serialized from scratch.
    pub responses_first: u64,
    /// Handler faults returned.
    pub faults: u64,
}

/// A SOAP service: registered operations plus both differential engines.
pub struct Service {
    namespace: String,
    config: EngineConfig,
    ops: HashMap<String, Arc<Operation>>,
    stats: Mutex<ServiceStats>,
    metrics: Option<Arc<Metrics>>,
    /// When set, response templates live in this shared store (keyed by
    /// `(tenant, namespace, response op)`) instead of the per-op slot, so
    /// multiple server cores — worker-pool and event-loop alike — reuse
    /// one another's serialized responses under one byte budget.
    store: Option<Arc<TemplateStore>>,
    tenant: u64,
    /// Whether this service accepts (and adverts) the compact binary
    /// lane. Flipping it off mid-flight makes in-flight binary requests
    /// fail with [`HandlerError::UnsupportedFormat`] — the 415 that
    /// drives a client's mid-keep-alive downgrade back to XML.
    binary_enabled: AtomicBool,
}

impl Service {
    /// Empty service for `namespace` using `config` for response
    /// templates.
    pub fn new(namespace: &str, config: EngineConfig) -> Self {
        Service {
            namespace: namespace.to_owned(),
            config,
            ops: HashMap::new(),
            stats: Mutex::new(ServiceStats::default()),
            metrics: None,
            store: None,
            tenant: 0,
            binary_enabled: AtomicBool::new(true),
        }
    }

    /// Toggle acceptance of the compact binary lane. Enabled by default;
    /// when disabled the service stops advertising `bin1` and rejects
    /// binary bodies with [`HandlerError::UnsupportedFormat`].
    pub fn set_binary_enabled(&self, enabled: bool) {
        self.binary_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether the compact binary lane is currently accepted.
    pub fn binary_enabled(&self) -> bool {
        self.binary_enabled.load(Ordering::SeqCst)
    }

    /// Route response templates through `store` under `tenant` instead of
    /// the per-op `Mutex` slot. Inject the same store into several
    /// services (e.g. one per server core) to share response templates
    /// across them under one byte budget.
    pub fn set_template_store(&mut self, store: Arc<TemplateStore>, tenant: u64) {
        if let Some(m) = &self.metrics {
            store.set_metrics(Arc::clone(m));
        }
        self.store = Some(store);
        self.tenant = tenant;
    }

    /// The injected shared template store, if any.
    pub fn template_store(&self) -> Option<&Arc<TemplateStore>> {
        self.store.as_ref()
    }

    /// Attach an observability registry: response templates record their
    /// send tier, shift/steal/split work and DUT fix-ups into it, and the
    /// first-time serialization of each operation's response is counted.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        if let Some(store) = &self.store {
            store.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// The attached observability registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// The service namespace.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The engine configuration (also carries transport knobs like
    /// `server_workers`).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Register `op` with a handler producing values for `response_params`
    /// (the response operation is conventionally named `{op}Response`).
    pub fn register(
        &mut self,
        request: OpDesc,
        response_params: Vec<bsoap_core::ParamDesc>,
        handler: impl Fn(&[Value]) -> Result<Vec<Value>, String> + Send + Sync + 'static,
    ) {
        let response = OpDesc::new(
            &format!("{}Response", request.name),
            &request.namespace,
            response_params,
        );
        let name = request.name.clone();
        let deser = DiffDeserializer::new(request.clone());
        let deser_bin = BinaryDiffDeserializer::new(request.clone());
        self.ops.insert(
            name,
            Arc::new(Operation {
                request,
                response,
                handler: Box::new(handler),
                deser: Mutex::new(deser),
                deser_bin: Mutex::new(deser_bin),
                response_tpl: Mutex::new(None),
                response_tpl_bin: Mutex::new(None),
            }),
        );
    }

    /// Registered operation names (sorted).
    pub fn operation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.ops.keys().cloned().collect();
        names.sort();
        names
    }

    /// The request descriptor of an operation.
    pub fn request_desc(&self, op: &str) -> Option<OpDesc> {
        self.ops.get(op).map(|o| o.request.clone())
    }

    /// The response descriptor of an operation.
    pub fn response_desc(&self, op: &str) -> Option<OpDesc> {
        self.ops.get(op).map(|o| o.response.clone())
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock()
    }

    /// Dispatch one SOAP XML request body addressed to `op_name`; returns
    /// the serialized response envelope. Thin wrapper over
    /// [`Service::dispatch_formatted`] on the XML lane.
    pub fn dispatch(&self, op_name: &str, body: &[u8]) -> Result<Vec<u8>, HandlerError> {
        self.dispatch_formatted(op_name, body, WireFormat::SoapXml)
            .map(|(bytes, _)| bytes)
    }

    /// Dispatch one request body addressed to `op_name` on the given wire
    /// lane; returns the serialized response envelope plus the format it
    /// was serialized in (the response mirrors the request's format).
    /// Binary requests are rejected with
    /// [`HandlerError::UnsupportedFormat`] while the lane is disabled.
    pub fn dispatch_formatted(
        &self,
        op_name: &str,
        body: &[u8],
        format: WireFormat,
    ) -> Result<(Vec<u8>, WireFormat), HandlerError> {
        if format == WireFormat::CompactBinary && !self.binary_enabled() {
            return Err(HandlerError::UnsupportedFormat(format));
        }
        let op = self
            .ops
            .get(op_name)
            .ok_or_else(|| HandlerError::UnknownOperation(op_name.to_owned()))?;

        // 1. Differential deserialization of the request. Each lane keeps
        //    its own retained reference message; the handler runs under
        //    the lane's lock because args borrow the deserializer's
        //    state. Handlers are expected to be short.
        let (result, outcome) = match format {
            WireFormat::SoapXml => {
                let mut deser = op.deser.lock();
                let (args, outcome) = deser.deserialize(body).map_err(HandlerError::BadRequest)?;
                ((op.handler)(args), outcome)
            }
            WireFormat::CompactBinary => {
                let mut deser = op.deser_bin.lock();
                let (args, outcome) = deser.deserialize(body).map_err(HandlerError::BadRequest)?;
                ((op.handler)(args), outcome)
            }
        };
        {
            let mut stats = self.stats.lock();
            match outcome {
                DiffOutcome::Identical => stats.requests_identical += 1,
                DiffOutcome::Differential { .. } => stats.requests_differential += 1,
                DiffOutcome::FullParse => stats.requests_full_parse += 1,
            }
        }
        let result = match result {
            Ok(values) => values,
            Err(msg) => {
                self.stats.lock().faults += 1;
                return Err(HandlerError::Fault(msg));
            }
        };

        // 2. Differential serialization of the response, on the same
        //    lane the request arrived on.
        let config = self.config.with_wire_format(format);
        let (bytes, tier) = if let Some(store) = &self.store {
            self.respond_via_store(store, op, &result, format, config)?
        } else {
            let mut tpl_slot = op.response_slot(format).lock();
            let out = match tpl_slot.as_mut() {
                Some(tpl) => {
                    if let (Some(m), None) = (&self.metrics, tpl.metrics()) {
                        tpl.set_metrics(Arc::clone(m));
                    }
                    tpl.update_args(&result).map_err(HandlerError::Response)?;
                    let report = tpl.flush();
                    (tpl.to_bytes(), report.tier)
                }
                None => {
                    let mut tpl = MessageTemplate::build(config, &op.response, &result)
                        .map_err(HandlerError::Response)?;
                    if let Some(m) = &self.metrics {
                        tpl.set_metrics(Arc::clone(m));
                        m.add(Counter::send(bsoap_obs::Tier::FirstTime), 1);
                        m.add(format_counter(format), 1);
                    }
                    let bytes = tpl.to_bytes();
                    *tpl_slot = Some(tpl);
                    (bytes, SendTier::FirstTime)
                }
            };
            out
        };
        {
            let mut stats = self.stats.lock();
            stats.requests += 1;
            match tier {
                SendTier::FirstTime => stats.responses_first += 1,
                SendTier::ContentMatch => stats.responses_content += 1,
                SendTier::PerfectStructural => stats.responses_perfect += 1,
                SendTier::PartialStructural => stats.responses_partial += 1,
            }
        }
        Ok((bytes, format))
    }

    /// Response serialization through the shared store: checkout the
    /// response template (a cross-core hit if another service serialized
    /// this response last), diff it, admit it back. Cap 1 mirrors the
    /// per-op slot: one response shape per operation, resized in place.
    fn respond_via_store(
        &self,
        store: &Arc<TemplateStore>,
        op: &Operation,
        result: &[Value],
        format: WireFormat,
        config: EngineConfig,
    ) -> Result<(Vec<u8>, SendTier), HandlerError> {
        let skey = StoreKey::new(
            self.tenant,
            TemplateKey::for_format(&self.namespace, &op.response, format),
        );
        match store.checkout(&skey, result, 1) {
            Checkout::Hit(mut tpl) => {
                if let (Some(m), None) = (&self.metrics, tpl.metrics()) {
                    tpl.set_metrics(Arc::clone(m));
                }
                match tpl.update_args(result) {
                    Ok(_) => {
                        let report = tpl.flush();
                        let bytes = tpl.to_bytes();
                        store.admit(skey, tpl, 1);
                        Ok((bytes, report.tier))
                    }
                    Err(e) => {
                        // Keep the template resident, as the slot path does.
                        store.admit(skey, tpl, 1);
                        Err(HandlerError::Response(e))
                    }
                }
            }
            Checkout::MissEmpty | Checkout::MissVariant => {
                let mut tpl = MessageTemplate::build(config, &op.response, result)
                    .map_err(HandlerError::Response)?;
                if let Some(m) = &self.metrics {
                    tpl.set_metrics(Arc::clone(m));
                    m.add(Counter::send(bsoap_obs::Tier::FirstTime), 1);
                    m.add(format_counter(format), 1);
                }
                let bytes = tpl.to_bytes();
                store.admit(skey, tpl, 1);
                Ok((bytes, SendTier::FirstTime))
            }
        }
    }

    /// Render a minimal SOAP 1.1 fault envelope.
    pub fn fault_envelope(code: &str, message: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(bsoap_core::soap::XML_DECL.as_bytes());
        out.extend_from_slice(bsoap_core::soap::envelope_open("urn:fault").as_bytes());
        out.extend_from_slice(bsoap_core::soap::BODY_OPEN.as_bytes());
        out.extend_from_slice(b"<SOAP-ENV:Fault><faultcode>");
        bsoap_xml::escape_text_into(&mut out, code);
        out.extend_from_slice(b"</faultcode><faultstring>");
        bsoap_xml::escape_text_into(&mut out, message);
        out.extend_from_slice(b"</faultstring></SOAP-ENV:Fault>\n");
        out.extend_from_slice(bsoap_core::soap::CLOSES.as_bytes());
        out
    }
}

/// Per-lane first-time send counter. Tiers 2–4 tick theirs inside the
/// template's own `finish_flush`; first-time builds happen before the
/// metrics handle is attached to the template, so the build sites tick
/// it directly.
fn format_counter(format: WireFormat) -> Counter {
    match format {
        WireFormat::SoapXml => Counter::SendsXml,
        WireFormat::CompactBinary => Counter::SendsBinary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::{ParamDesc, TypeDesc};

    fn echo_service() -> Service {
        let mut svc = Service::new(
            "urn:echo",
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        );
        let op = OpDesc::single(
            "echo",
            "urn:echo",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "xs".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
            |args| Ok(args.to_vec()),
        );
        svc
    }

    fn request_bytes(xs: &[f64]) -> Vec<u8> {
        let op = OpDesc::single(
            "echo",
            "urn:echo",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(xs.to_vec())],
        )
        .unwrap()
        .to_bytes()
    }

    #[test]
    fn dispatch_round_trip() {
        let svc = echo_service();
        let resp = svc.dispatch("echo", &request_bytes(&[1.5, 2.5])).unwrap();
        let resp_op = svc.response_desc("echo").unwrap();
        let parsed = bsoap_deser::parse_envelope(&resp, &resp_op).unwrap();
        assert_eq!(parsed, vec![Value::DoubleArray(vec![1.5, 2.5])]);
    }

    #[test]
    fn response_tiers_progress() {
        let svc = echo_service();
        svc.dispatch("echo", &request_bytes(&[1.5, 2.5])).unwrap();
        svc.dispatch("echo", &request_bytes(&[1.5, 2.5])).unwrap();
        svc.dispatch("echo", &request_bytes(&[9.5, 2.5])).unwrap();
        svc.dispatch("echo", &request_bytes(&[9.5, 2.5, 3.5]))
            .unwrap();
        let s = svc.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.responses_first, 1);
        assert_eq!(s.responses_content, 1);
        assert_eq!(s.responses_perfect, 1);
        assert_eq!(s.responses_partial, 1);
        // Request side: identical second request skipped parsing.
        assert_eq!(s.requests_identical, 1);
    }

    #[test]
    fn unknown_operation_rejected() {
        let svc = echo_service();
        assert!(matches!(
            svc.dispatch("ghost", b"<x/>"),
            Err(HandlerError::UnknownOperation(_))
        ));
    }

    #[test]
    fn malformed_body_rejected() {
        let svc = echo_service();
        assert!(matches!(
            svc.dispatch("echo", b"not xml"),
            Err(HandlerError::BadRequest(_))
        ));
    }

    #[test]
    fn handler_fault_counted() {
        let mut svc = Service::new(
            "urn:f",
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        );
        let op = OpDesc::single("f", "urn:f", "v", TypeDesc::Scalar(ScalarKind::Int));
        svc.register(
            op.clone(),
            vec![ParamDesc {
                name: "r".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            }],
            |_| Err("nope".to_owned()),
        );
        let body = MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::Int(1)],
        )
        .unwrap()
        .to_bytes();
        assert!(matches!(
            svc.dispatch("f", &body),
            Err(HandlerError::Fault(_))
        ));
        assert_eq!(svc.stats().faults, 1);
    }

    #[test]
    fn fault_envelope_escapes() {
        let env = Service::fault_envelope("SOAP-ENV:Server", "boom <&>");
        let text = String::from_utf8(env).unwrap();
        assert!(text.contains("boom &lt;&amp;&gt;"));
        assert!(text.contains("<SOAP-ENV:Fault>"));
    }

    fn binary_request_bytes(xs: &[f64]) -> Vec<u8> {
        let op = OpDesc::single(
            "echo",
            "urn:echo",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary),
            &op,
            &[Value::DoubleArray(xs.to_vec())],
        )
        .unwrap()
        .to_bytes()
    }

    #[test]
    fn binary_lane_round_trips_and_tiers_progress() {
        let svc = echo_service();
        let resp_op = svc.response_desc("echo").unwrap();
        let (resp, fmt) = svc
            .dispatch_formatted(
                "echo",
                &binary_request_bytes(&[1.5, 2.5]),
                WireFormat::CompactBinary,
            )
            .unwrap();
        assert_eq!(fmt, WireFormat::CompactBinary);
        let parsed = bsoap_deser::parse_binary_envelope(&resp, &resp_op).unwrap();
        assert_eq!(parsed, vec![Value::DoubleArray(vec![1.5, 2.5])]);

        svc.dispatch_formatted(
            "echo",
            &binary_request_bytes(&[1.5, 2.5]),
            WireFormat::CompactBinary,
        )
        .unwrap();
        svc.dispatch_formatted(
            "echo",
            &binary_request_bytes(&[9.5, 2.5]),
            WireFormat::CompactBinary,
        )
        .unwrap();
        svc.dispatch_formatted(
            "echo",
            &binary_request_bytes(&[9.5, 2.5, 3.5]),
            WireFormat::CompactBinary,
        )
        .unwrap();
        let s = svc.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.responses_first, 1);
        assert_eq!(s.responses_content, 1);
        assert_eq!(s.responses_perfect, 1);
        assert_eq!(s.responses_partial, 1);
        assert_eq!(s.requests_identical, 1);
    }

    #[test]
    fn lanes_keep_independent_response_templates() {
        // Same values through both lanes: each lane's second identical
        // dispatch must content-match against its OWN retained template,
        // never the other lane's bytes.
        let svc = echo_service();
        let xml = request_bytes(&[7.5]);
        let bin = binary_request_bytes(&[7.5]);
        let (rx1, _) = svc
            .dispatch_formatted("echo", &xml, WireFormat::SoapXml)
            .unwrap();
        let (rb1, _) = svc
            .dispatch_formatted("echo", &bin, WireFormat::CompactBinary)
            .unwrap();
        assert_ne!(rx1, rb1);
        let (rx2, _) = svc
            .dispatch_formatted("echo", &xml, WireFormat::SoapXml)
            .unwrap();
        let (rb2, _) = svc
            .dispatch_formatted("echo", &bin, WireFormat::CompactBinary)
            .unwrap();
        assert_eq!(rx1, rx2);
        assert_eq!(rb1, rb2);
        let s = svc.stats();
        assert_eq!(s.responses_first, 2); // one per lane
        assert_eq!(s.responses_content, 2);
    }

    #[test]
    fn disabled_binary_lane_rejects_with_unsupported_format() {
        let svc = echo_service();
        svc.set_binary_enabled(false);
        assert!(!svc.binary_enabled());
        assert!(matches!(
            svc.dispatch_formatted(
                "echo",
                &binary_request_bytes(&[1.0]),
                WireFormat::CompactBinary
            ),
            Err(HandlerError::UnsupportedFormat(WireFormat::CompactBinary))
        ));
        // XML keeps flowing.
        svc.dispatch("echo", &request_bytes(&[1.0])).unwrap();
        svc.set_binary_enabled(true);
        svc.dispatch_formatted(
            "echo",
            &binary_request_bytes(&[1.0]),
            WireFormat::CompactBinary,
        )
        .unwrap();
    }

    #[test]
    fn shared_template_across_distinct_callers() {
        // Two "clients" sending the same query get the content-match
        // response path — the §3.4 heavily-used-server effect.
        let svc = echo_service();
        let req = request_bytes(&[42.5]);
        svc.dispatch("echo", &req).unwrap();
        let before = svc.stats().responses_content;
        svc.dispatch("echo", &req).unwrap(); // "another client"
        assert_eq!(svc.stats().responses_content, before + 1);
    }
}
