//! Loopback HTTP host for a [`Service`].
//!
//! Runs on `bsoap-transport`'s bounded worker pool: blocking accepts feed
//! a fixed number of workers (`EngineConfig::server_workers`), excess
//! connections queue rather than spawn threads, and stop drains in-flight
//! requests. Each connection runs a keep-alive loop parsing SOAP POSTs
//! (`Content-Length` or chunked) and routing by `SOAPAction`
//! (`"namespace#operation"`), with fallback to the first operation for
//! action-less callers. Responses go out through the vectored send path
//! (head and dispatched body as separate `IoSlice`s — no flattening).

use crate::dispatch::{HandlerError, Service, ServiceStats};
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use bsoap_transport::accept::{serve_with_metrics, PoolOptions, WorkerPool};
use bsoap_transport::http::{render_response_head_typed, write_response_vectored, RequestReader};
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// A running HTTP SOAP server.
pub struct HttpServer {
    service: Arc<Service>,
    pool: WorkerPool,
}

impl HttpServer {
    /// Bind an ephemeral loopback port and serve `service` with
    /// `service.config().server_workers` worker threads.
    pub fn spawn(service: Service) -> io::Result<Self> {
        Self::spawn_inner(service)
    }

    /// [`HttpServer::spawn`] with an observability registry attached to the
    /// service: requests tick server counters and the request-latency
    /// histogram, response templates record their send tier, and the host
    /// answers `GET /metrics` with the Prometheus text rendering.
    pub fn spawn_with_metrics(mut service: Service, metrics: Arc<Metrics>) -> io::Result<Self> {
        service.set_metrics(metrics);
        Self::spawn_inner(service)
    }

    fn spawn_inner(service: Service) -> io::Result<Self> {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        let service = Arc::new(service);
        let conn_service = Arc::clone(&service);
        let pool = serve_with_metrics(
            listener,
            PoolOptions {
                workers: service.config().server_workers,
                ..PoolOptions::default()
            },
            service.metrics().cloned(),
            move |stream| serve_connection(stream, &conn_service),
        )?;
        Ok(HttpServer { service, pool })
    }

    /// Address clients should POST to.
    pub fn addr(&self) -> SocketAddr {
        self.pool.addr()
    }

    /// Live statistics view.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Stop accepting, drain in-flight requests, return final statistics.
    pub fn stop(mut self) -> ServiceStats {
        self.pool.stop();
        self.service.stats()
    }
}

/// Operation name from a `SOAPAction` header value
/// (`"urn:ns#operation"`, quotes optional).
fn operation_from_action(action: &str) -> Option<&str> {
    let unquoted = action.trim().trim_matches('"');
    unquoted.rsplit_once('#').map(|(_, op)| op)
}

fn serve_connection(mut stream: TcpStream, service: &Service) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Hardening knobs ride the service's EngineConfig: head/body caps bound
    // per-request memory, and the `deadline` knob doubles as the
    // per-connection read timeout (a peer dribbling a request slower than
    // one call budget is a slow-loris, not a client).
    let cfg = service.config();
    if stream.set_read_timeout(cfg.deadline).is_err() {
        return;
    }
    let mut reader = RequestReader::with_limits(read_half, cfg.max_head_bytes, cfg.max_body_bytes);
    let mut head_scratch = Vec::new();
    loop {
        let (head, body) = match reader.next_request() {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean EOF between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                if let Some(m) = service.metrics() {
                    m.add(Counter::ServerBadRequests, 1);
                }
                let reason = e.to_string();
                let _ = write_response_vectored(
                    &mut stream,
                    400,
                    "Bad Request",
                    &[IoSlice::new(reason.as_bytes())],
                    &mut head_scratch,
                );
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                if let Some(m) = service.metrics() {
                    m.add(Counter::ServerTimeouts, 1);
                }
                break;
            }
            Err(_) => break,
        };
        let start = service.metrics().map(|m| m.now_ns());
        if head.method == "GET" && head.path == "/metrics" {
            if serve_metrics_scrape(&mut stream, service, &mut head_scratch).is_err() {
                break;
            }
            continue;
        }
        let op_name = head
            .header("soapaction")
            .and_then(operation_from_action)
            .map(str::to_owned)
            .or_else(|| service.operation_names().first().cloned());
        let reply = match op_name {
            Some(op) => service.dispatch(&op, &body),
            None => Err(HandlerError::UnknownOperation("<none>".to_owned())),
        };
        let (status, reason, payload) = match reply {
            Ok(bytes) => (200, "OK", bytes),
            Err(HandlerError::Fault(msg)) => {
                // Application faults are HTTP 500 with a Fault body per
                // SOAP 1.1 §6.2.
                (
                    500,
                    "Internal Server Error",
                    Service::fault_envelope("SOAP-ENV:Server", &msg),
                )
            }
            Err(HandlerError::UnknownOperation(op)) => (
                404,
                "Not Found",
                Service::fault_envelope("SOAP-ENV:Client", &format!("no operation {op}")),
            ),
            Err(e) => (
                400,
                "Bad Request",
                Service::fault_envelope("SOAP-ENV:Client", &e.to_string()),
            ),
        };
        // Count the request before its response leaves: a scrape racing
        // the final response on another connection must still see it.
        if let Some(m) = service.metrics() {
            m.add(Counter::ServerRequests, 1);
        }
        let sent = write_response_vectored(
            &mut stream,
            status,
            reason,
            &[IoSlice::new(&payload)],
            &mut head_scratch,
        );
        let sent = match sent {
            Ok(n) => n,
            Err(_) => break,
        };
        if let Some(m) = service.metrics() {
            let elapsed_ns = m.now_ns().saturating_sub(start.unwrap_or(0));
            m.add(Counter::ServerBytesOut, sent as u64);
            m.observe_ns(HistId::ServerRequest, elapsed_ns);
            m.trace(TraceKind::Request {
                bytes: sent as u64,
                elapsed_ns,
            });
        }
    }
}

/// Answer one `GET /metrics` with the service registry's Prometheus text
/// rendering (`404` when the service runs without one).
fn serve_metrics_scrape(
    stream: &mut TcpStream,
    service: &Service,
    head_scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let (status, reason, text) = match service.metrics() {
        Some(m) => {
            m.add(Counter::MetricsScrapes, 1);
            (200, "OK", m.render_prometheus())
        }
        None => (404, "Not Found", String::from("no metrics registry\n")),
    };
    render_response_head_typed(
        head_scratch,
        status,
        reason,
        "text/plain; version=0.0.4; charset=utf-8",
        text.len(),
    );
    stream.write_all(head_scratch)?;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, ParamDesc, TypeDesc, Value};
    use bsoap_transport::http::{post_gather, read_response, HttpVersion, RequestConfig};
    use std::io::IoSlice;

    fn sum_service() -> Service {
        let mut svc = Service::new("urn:sum", EngineConfig::paper_default());
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "total".into(),
                desc: TypeDesc::Scalar(ScalarKind::Double),
            }],
            |args| {
                let Value::DoubleArray(v) = &args[0] else {
                    return Err("type".into());
                };
                Ok(vec![Value::Double(v.iter().sum())])
            },
        );
        svc
    }

    fn request_bytes(xs: &[f64]) -> Vec<u8> {
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        MessageTemplate::build(
            EngineConfig::paper_default(),
            &op,
            &[Value::DoubleArray(xs.to_vec())],
        )
        .unwrap()
        .to_bytes()
    }

    fn post(addr: std::net::SocketAddr, action: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut c = TcpStream::connect(addr).unwrap();
        let cfg = RequestConfig {
            path: "/svc".into(),
            host: "localhost".into(),
            soap_action: action.into(),
            version: HttpVersion::Http11Length,
        };
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(body)], &mut scratch).unwrap();
        read_response(&mut c).unwrap()
    }

    #[test]
    fn end_to_end_sum() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let (status, resp) = post(
            server.addr(),
            "urn:sum#sum",
            &request_bytes(&[1.5, 2.5, 3.0]),
        );
        assert_eq!(status, 200);
        let resp_op = OpDesc::new(
            "sumResponse",
            "urn:sum",
            vec![ParamDesc {
                name: "total".into(),
                desc: TypeDesc::Scalar(ScalarKind::Double),
            }],
        );
        let parsed = bsoap_deser::parse_envelope(&resp, &resp_op).unwrap();
        assert_eq!(parsed, vec![Value::Double(7.0)]);
        let stats = server.stop();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn repeat_queries_hit_content_match_responses() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let body = request_bytes(&[4.0, 4.0]);
        for _ in 0..3 {
            let (status, _) = post(server.addr(), "urn:sum#sum", &body);
            assert_eq!(status, 200);
        }
        let stats = server.stop();
        assert_eq!(stats.responses_first, 1);
        assert_eq!(stats.responses_content, 2);
        assert_eq!(stats.requests_identical, 2);
    }

    #[test]
    fn unknown_action_is_404() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let (status, body) = post(server.addr(), "urn:sum#ghost", &request_bytes(&[1.0]));
        assert_eq!(status, 404);
        assert!(String::from_utf8(body).unwrap().contains("SOAP-ENV:Fault"));
        server.stop();
    }

    #[test]
    fn malformed_body_is_400() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let (status, _) = post(server.addr(), "urn:sum#sum", b"junk");
        assert_eq!(status, 400);
        server.stop();
    }

    #[test]
    fn handler_fault_is_500_fault_envelope() {
        let mut svc = Service::new("urn:f", EngineConfig::paper_default());
        let op = OpDesc::single("f", "urn:f", "v", TypeDesc::Scalar(ScalarKind::Int));
        svc.register(
            op.clone(),
            vec![ParamDesc {
                name: "r".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            }],
            |_| Err("deliberate".into()),
        );
        let server = HttpServer::spawn(svc).unwrap();
        let body = MessageTemplate::build(EngineConfig::paper_default(), &op, &[Value::Int(1)])
            .unwrap()
            .to_bytes();
        let (status, resp) = post(server.addr(), "urn:f#f", &body);
        assert_eq!(status, 500);
        assert!(String::from_utf8(resp).unwrap().contains("deliberate"));
        server.stop();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = request_bytes(&[i as f64, 1.0]);
                    let (status, _) = post(addr, "urn:sum#sum", &body);
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stop();
        assert_eq!(stats.requests, 4);
    }

    #[test]
    fn metrics_endpoint_mirrors_response_tiers() {
        let metrics = Metrics::shared();
        let server = HttpServer::spawn_with_metrics(sum_service(), Arc::clone(&metrics)).unwrap();
        // first-time, content-match, perfect-structural response tiers.
        for xs in [&[1.0, 2.0][..], &[1.0, 2.0], &[9.0, 2.0]] {
            let (status, _) = post(server.addr(), "urn:sum#sum", &request_bytes(xs));
            assert_eq!(status, 200);
        }
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let mut get = Vec::new();
        bsoap_transport::http::render_get_request(&mut get, "/metrics", "localhost");
        c.write_all(&get).unwrap();
        let (status, text) = read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(text).unwrap();
        assert_eq!(
            bsoap_obs::parse_value(&text, "bsoap_server_requests_total"),
            Some(3.0)
        );
        drop(c);
        let stats = server.stop();
        let snap = metrics.snapshot();
        use bsoap_obs::Tier;
        assert_eq!(snap.tier_sends(Tier::FirstTime), stats.responses_first);
        assert_eq!(snap.tier_sends(Tier::ContentMatch), stats.responses_content);
        assert_eq!(
            snap.tier_sends(Tier::PerfectStructural),
            stats.responses_perfect
        );
        assert_eq!(
            snap.tier_sends(Tier::PartialStructural),
            stats.responses_partial
        );
        assert_eq!(snap.total_sends(), stats.requests);
        assert_eq!(snap.get(Counter::ServerRequests), stats.requests);
        assert_eq!(snap.hist(HistId::ServerRequest).count(), stats.requests);
    }

    #[test]
    fn non_http_garbage_draws_400_not_hang() {
        let server = HttpServer::spawn(sum_service()).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.write_all(b"GARBAGE THAT IS NOT HTTP\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut c).unwrap();
        assert_eq!(status, 400);
        drop(c);
        server.stop();
    }

    #[test]
    fn oversized_body_draws_400_under_cap() {
        let cfg = EngineConfig::paper_default().with_http_caps(1 << 20, 64);
        let mut svc = Service::new("urn:sum", cfg);
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "total".into(),
                desc: TypeDesc::Scalar(ScalarKind::Double),
            }],
            |_| Ok(vec![Value::Double(0.0)]),
        );
        let server = HttpServer::spawn(svc).unwrap();
        let (status, _) = post(
            server.addr(),
            "urn:sum#sum",
            &request_bytes(&[1.0, 2.0, 3.0, 4.0]),
        );
        assert_eq!(status, 400, "body larger than the 64-byte cap is refused");
        server.stop();
    }

    #[test]
    fn action_parsing() {
        assert_eq!(operation_from_action("\"urn:x#op\""), Some("op"));
        assert_eq!(operation_from_action("urn:x#op"), Some("op"));
        assert_eq!(operation_from_action("opaque"), None);
    }
}
