//! Loopback HTTP host for a [`Service`].
//!
//! Runs on either of `bsoap-transport`'s server cores, selected by
//! `EngineConfig::server_core`:
//!
//! * **Worker pool** — blocking accepts feed a fixed number of workers
//!   (`EngineConfig::server_workers`), excess connections queue rather
//!   than spawn threads, and stop drains in-flight requests.
//! * **Event loop** — a few epoll loop threads
//!   (`EngineConfig::event_loop_threads`) multiplex every connection as a
//!   sans-io state machine; complete requests dispatch to
//!   `server_workers` CPU workers. Falls back to the worker pool on
//!   platforms without epoll.
//!
//! Both cores route through the same [`respond_to`] dispatch: a keep-alive
//! loop parsing SOAP POSTs (`Content-Length` or chunked) and routing by
//! `SOAPAction` (`"namespace#operation"`), with fallback to the first
//! operation for action-less callers. Responses go out through the
//! vectored send path (head and dispatched body as separate `IoSlice`s —
//! no flattening), so the observable bytes are identical on either core.

use crate::dispatch::{HandlerError, Service, ServiceStats};
use bsoap_core::WireFormat;
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use bsoap_transport::accept::{serve_with_metrics, PoolOptions, WorkerPool};
use bsoap_transport::http::{
    render_response_head_extra, write_response_vectored, RequestHead, RequestReader,
};
use bsoap_transport::negotiate::{HDR_ACCEPT, HDR_FORMAT, HDR_FORMAT_LOWER, TOKEN_BINARY};
use bsoap_transport::{
    poller, ConnConfig, EventLoopOptions, EventLoopServer, ReqBody, Response, ServeMode,
};
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// The running core behind an [`HttpServer`].
enum CoreHandle {
    Pool(WorkerPool),
    Loop(EventLoopServer),
}

/// A running HTTP SOAP server.
pub struct HttpServer {
    service: Arc<Service>,
    core: CoreHandle,
}

impl HttpServer {
    /// Bind an ephemeral loopback port and serve `service` on the core
    /// selected by `service.config().server_core`.
    pub fn spawn(service: Service) -> io::Result<Self> {
        Self::spawn_inner(service)
    }

    /// [`HttpServer::spawn`] with an observability registry attached to the
    /// service: requests tick server counters and the request-latency
    /// histogram, response templates record their send tier, and the host
    /// answers `GET /metrics` with the Prometheus text rendering.
    pub fn spawn_with_metrics(mut service: Service, metrics: Arc<Metrics>) -> io::Result<Self> {
        service.set_metrics(metrics);
        Self::spawn_inner(service)
    }

    fn spawn_inner(service: Service) -> io::Result<Self> {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        let service = Arc::new(service);
        let cfg = service.config();
        let use_event_loop =
            cfg.server_core == bsoap_core::ServerCore::EventLoop && poller::supported();
        let core = if use_event_loop {
            let handler_service = Arc::clone(&service);
            let handler: bsoap_transport::Handler = Arc::new(move |head, body| {
                let bytes = match &body {
                    ReqBody::Full(b) => &b[..],
                    // The host never installs a body sink, so a streamed
                    // body cannot reach us; answer defensively anyway.
                    ReqBody::Streamed { .. } => &[],
                };
                respond_to(&handler_service, head, bytes)
            });
            let server = EventLoopServer::serve(
                listener,
                EventLoopOptions {
                    loops: cfg.event_loop_threads.max(1),
                    dispatchers: cfg.server_workers.max(1),
                    max_connections: cfg.max_connections,
                    conn: ConnConfig {
                        max_head: cfg.max_head_bytes,
                        max_body: cfg.max_body_bytes,
                        // The worker-pool core uses the call deadline as
                        // the per-connection socket read timeout; the
                        // sliding read-stall timer is its equivalent here.
                        read_timeout: cfg.deadline,
                        ..ConnConfig::default()
                    },
                    ..EventLoopOptions::default()
                },
                service.metrics().cloned(),
                ServeMode::Http { handler },
            )?;
            CoreHandle::Loop(server)
        } else {
            let conn_service = Arc::clone(&service);
            let pool = serve_with_metrics(
                listener,
                PoolOptions {
                    workers: cfg.server_workers,
                    ..PoolOptions::default()
                },
                service.metrics().cloned(),
                move |stream| serve_connection(stream, &conn_service),
            )?;
            CoreHandle::Pool(pool)
        };
        Ok(HttpServer { service, core })
    }

    /// Address clients should POST to.
    pub fn addr(&self) -> SocketAddr {
        match &self.core {
            CoreHandle::Pool(p) => p.addr(),
            CoreHandle::Loop(l) => l.addr(),
        }
    }

    /// Live statistics view.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// The hosted service — e.g. to toggle the binary lane on a running
    /// server (`set_binary_enabled` takes `&self`).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stop accepting, drain in-flight requests, return final statistics.
    pub fn stop(mut self) -> ServiceStats {
        match &mut self.core {
            CoreHandle::Pool(p) => p.stop(),
            CoreHandle::Loop(l) => l.stop(),
        }
        self.service.stats()
    }
}

/// Operation name from a `SOAPAction` header value
/// (`"urn:ns#operation"`, quotes optional).
fn operation_from_action(action: &str) -> Option<&str> {
    let unquoted = action.trim().trim_matches('"');
    unquoted.rsplit_once('#').map(|(_, op)| op)
}

/// The wire format a request body arrived in: the `X-BSOAP-Format`
/// header when present (unknown tokens read as XML — an old server
/// ignoring the header entirely behaves the same way), else a sniff of
/// the 4-byte binary magic as fallback for header-less peers.
fn request_format(head: &RequestHead, body: &[u8]) -> WireFormat {
    match head.header(HDR_FORMAT_LOWER) {
        Some(token) => WireFormat::from_name(token).unwrap_or(WireFormat::SoapXml),
        None if bsoap_core::wire::is_binary(body) => WireFormat::CompactBinary,
        None => WireFormat::SoapXml,
    }
}

/// Body `Content-Type` per lane.
fn content_type_for(format: WireFormat) -> &'static str {
    match format {
        WireFormat::SoapXml => "text/xml; charset=utf-8",
        WireFormat::CompactBinary => "application/x-bsoap-binary",
    }
}

/// One parsed request in, one response out — the dispatch shared by both
/// server cores, so routing, fault mapping, the `/metrics` endpoint, and
/// every counter tick behave identically regardless of which core framed
/// the bytes.
fn respond_to(service: &Service, head: &RequestHead, body: &[u8]) -> Response {
    if head.method == "GET" && head.path == "/metrics" {
        let (status, reason, text) = match service.metrics() {
            Some(m) => {
                m.add(Counter::MetricsScrapes, 1);
                (200, "OK", m.render_prometheus())
            }
            None => (404, "Not Found", String::from("no metrics registry\n")),
        };
        return Response {
            status,
            reason,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: text.into_bytes(),
            measure: false,
            extra_headers: Vec::new(),
        };
    }
    let req_format = request_format(head, body);
    let op_name = head
        .header("soapaction")
        .and_then(operation_from_action)
        .map(str::to_owned)
        .or_else(|| service.operation_names().first().cloned());
    let reply = match op_name {
        Some(op) => service.dispatch_formatted(&op, body, req_format),
        None => Err(HandlerError::UnknownOperation("<none>".to_owned())),
    };
    // Faults always go out as XML fault envelopes, whatever lane the
    // request took: the fault path must stay decodable by a client that
    // is about to abandon the lane.
    let (status, reason, payload, resp_format) = match reply {
        Ok((bytes, fmt)) => (200, "OK", bytes, fmt),
        Err(HandlerError::Fault(msg)) => {
            // Application faults are HTTP 500 with a Fault body per
            // SOAP 1.1 §6.2.
            (
                500,
                "Internal Server Error",
                Service::fault_envelope("SOAP-ENV:Server", &msg),
                WireFormat::SoapXml,
            )
        }
        Err(HandlerError::UnknownOperation(op)) => (
            404,
            "Not Found",
            Service::fault_envelope("SOAP-ENV:Client", &format!("no operation {op}")),
            WireFormat::SoapXml,
        ),
        Err(HandlerError::UnsupportedFormat(f)) => (
            415,
            "Unsupported Media Type",
            Service::fault_envelope(
                "SOAP-ENV:Client",
                &format!("wire format {} not accepted", f.name()),
            ),
            WireFormat::SoapXml,
        ),
        Err(e) => (
            400,
            "Bad Request",
            Service::fault_envelope("SOAP-ENV:Client", &e.to_string()),
            WireFormat::SoapXml,
        ),
    };
    // Count the request before its response leaves: a scrape racing
    // the final response on another connection must still see it.
    if let Some(m) = service.metrics() {
        m.add(Counter::ServerRequests, 1);
    }
    let mut resp = Response::xml(status, reason, payload);
    resp.content_type = content_type_for(resp_format);
    // Echo the negotiation headers on every SOAP response: the format
    // this body is in, plus the capability advert while the binary lane
    // is accepting (its absence after a toggle-off tells offering
    // clients to stop asking).
    resp = resp.with_header(HDR_FORMAT, resp_format.name().to_owned());
    if service.binary_enabled() {
        resp = resp.with_header(HDR_ACCEPT, TOKEN_BINARY.to_owned());
    }
    resp
}

fn serve_connection(mut stream: TcpStream, service: &Service) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Hardening knobs ride the service's EngineConfig: head/body caps bound
    // per-request memory, and the `deadline` knob doubles as the
    // per-connection read timeout (a peer dribbling a request slower than
    // one call budget is a slow-loris, not a client).
    let cfg = service.config();
    if stream.set_read_timeout(cfg.deadline).is_err() {
        return;
    }
    let mut reader = RequestReader::with_limits(read_half, cfg.max_head_bytes, cfg.max_body_bytes);
    let mut head_scratch = Vec::new();
    loop {
        let (head, body) = match reader.next_request() {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean EOF between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                if let Some(m) = service.metrics() {
                    m.add(Counter::ServerBadRequests, 1);
                }
                let reason = e.to_string();
                let _ = write_response_vectored(
                    &mut stream,
                    400,
                    "Bad Request",
                    &[IoSlice::new(reason.as_bytes())],
                    &mut head_scratch,
                );
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                if let Some(m) = service.metrics() {
                    m.add(Counter::ServerTimeouts, 1);
                }
                break;
            }
            Err(_) => break,
        };
        let start = service.metrics().map(|m| m.now_ns());
        let resp = respond_to(service, &head, &body);
        render_response_head_extra(
            &mut head_scratch,
            resp.status,
            resp.reason,
            resp.content_type,
            resp.body.len(),
            &resp.extra_headers,
        );
        let list = [IoSlice::new(&head_scratch), IoSlice::new(&resp.body)];
        let sent = match bsoap_transport::write_gather(&mut stream, &list).and_then(|n| {
            stream.flush()?;
            Ok(n)
        }) {
            Ok(n) => n,
            Err(_) => break,
        };
        if resp.measure {
            if let Some(m) = service.metrics() {
                let elapsed_ns = m.now_ns().saturating_sub(start.unwrap_or(0));
                m.add(Counter::ServerBytesOut, sent as u64);
                m.observe_ns(HistId::ServerRequest, elapsed_ns);
                m.trace(TraceKind::Request {
                    bytes: sent as u64,
                    elapsed_ns,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::{
        EngineConfig, MessageTemplate, OpDesc, ParamDesc, ServerCore, TypeDesc, Value,
    };
    use bsoap_transport::http::{post_gather, read_response, HttpVersion, RequestConfig};
    use std::io::IoSlice;

    /// Cores to exercise: both when the platform has epoll, else just the
    /// worker pool (the event loop would silently fall back anyway).
    fn cores() -> Vec<ServerCore> {
        if poller::supported() {
            vec![ServerCore::WorkerPool, ServerCore::EventLoop]
        } else {
            vec![ServerCore::WorkerPool]
        }
    }

    fn sum_service_on(core: ServerCore) -> Service {
        let mut svc = Service::new(
            "urn:sum",
            EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_server_core(core),
        );
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "total".into(),
                desc: TypeDesc::Scalar(ScalarKind::Double),
            }],
            |args| {
                let Value::DoubleArray(v) = &args[0] else {
                    return Err("type".into());
                };
                Ok(vec![Value::Double(v.iter().sum())])
            },
        );
        svc
    }

    fn request_bytes(xs: &[f64]) -> Vec<u8> {
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
            &op,
            &[Value::DoubleArray(xs.to_vec())],
        )
        .unwrap()
        .to_bytes()
    }

    fn post(addr: std::net::SocketAddr, action: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut c = TcpStream::connect(addr).unwrap();
        let cfg = RequestConfig {
            path: "/svc".into(),
            host: "localhost".into(),
            soap_action: action.into(),
            version: HttpVersion::Http11Length,
            extra_headers: Vec::new(),
        };
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(body)], &mut scratch).unwrap();
        read_response(&mut c).unwrap()
    }

    #[test]
    fn end_to_end_sum() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, resp) = post(
                server.addr(),
                "urn:sum#sum",
                &request_bytes(&[1.5, 2.5, 3.0]),
            );
            assert_eq!(status, 200, "core {core:?}");
            let resp_op = OpDesc::new(
                "sumResponse",
                "urn:sum",
                vec![ParamDesc {
                    name: "total".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Double),
                }],
            );
            let parsed = bsoap_deser::parse_envelope(&resp, &resp_op).unwrap();
            assert_eq!(parsed, vec![Value::Double(7.0)], "core {core:?}");
            let stats = server.stop();
            assert_eq!(stats.requests, 1, "core {core:?}");
        }
    }

    #[test]
    fn repeat_queries_hit_content_match_responses() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let body = request_bytes(&[4.0, 4.0]);
            for _ in 0..3 {
                let (status, _) = post(server.addr(), "urn:sum#sum", &body);
                assert_eq!(status, 200, "core {core:?}");
            }
            let stats = server.stop();
            assert_eq!(stats.responses_first, 1, "core {core:?}");
            assert_eq!(stats.responses_content, 2, "core {core:?}");
            assert_eq!(stats.requests_identical, 2, "core {core:?}");
        }
    }

    #[test]
    fn unknown_action_is_404() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, body) = post(server.addr(), "urn:sum#ghost", &request_bytes(&[1.0]));
            assert_eq!(status, 404, "core {core:?}");
            assert!(String::from_utf8(body).unwrap().contains("SOAP-ENV:Fault"));
            server.stop();
        }
    }

    #[test]
    fn malformed_body_is_400() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, _) = post(server.addr(), "urn:sum#sum", b"junk");
            assert_eq!(status, 400, "core {core:?}");
            server.stop();
        }
    }

    #[test]
    fn both_cores_answer_byte_identical_responses() {
        if !poller::supported() {
            return;
        }
        let body = request_bytes(&[2.0, 3.5, 4.5]);
        let mut replies = Vec::new();
        for core in [ServerCore::WorkerPool, ServerCore::EventLoop] {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            replies.push(post(server.addr(), "urn:sum#sum", &body));
            server.stop();
        }
        assert_eq!(
            replies[0], replies[1],
            "the two cores must be byte-for-byte indistinguishable"
        );
    }

    #[test]
    fn shared_store_carries_templates_across_server_cores() {
        // One TemplateStore injected into two hosts — a worker-pool core
        // and (where available) an event-loop core. The first server pays
        // the first-time serialization; the second server's very first
        // response to the same query checks the shared store and goes out
        // as a content match. Without the store each host would
        // re-serialize from scratch.
        use bsoap_core::TemplateStore;
        let store = TemplateStore::shared(0, 0);
        let body = request_bytes(&[8.0, 0.5]);

        let mut first = sum_service_on(ServerCore::WorkerPool);
        first.set_template_store(Arc::clone(&store), 7);
        let server_a = HttpServer::spawn(first).unwrap();
        let (status, reply_a) = post(server_a.addr(), "urn:sum#sum", &body);
        assert_eq!(status, 200);
        let stats_a = server_a.stop();
        assert_eq!(stats_a.responses_first, 1);
        assert_eq!(store.len(), 1, "response template resident after stop");

        let second_core = if poller::supported() {
            ServerCore::EventLoop
        } else {
            ServerCore::WorkerPool
        };
        let mut second = sum_service_on(second_core);
        second.set_template_store(Arc::clone(&store), 7);
        let server_b = HttpServer::spawn(second).unwrap();
        let (status, reply_b) = post(server_b.addr(), "urn:sum#sum", &body);
        assert_eq!(status, 200);
        let stats_b = server_b.stop();
        assert_eq!(
            stats_b.responses_first, 0,
            "second core must reuse the stored template"
        );
        assert_eq!(stats_b.responses_content, 1);
        assert_eq!(reply_a, reply_b, "stored reuse must be byte-identical");
        assert_eq!(store.tenant_resident_bytes(7), store.resident_bytes());
    }

    #[test]
    fn handler_fault_is_500_fault_envelope() {
        for core in cores() {
            let mut svc = Service::new(
                "urn:f",
                EngineConfig::paper_default()
                    .with_wire_format(bsoap_core::WireFormat::SoapXml)
                    .with_server_core(core),
            );
            let op = OpDesc::single("f", "urn:f", "v", TypeDesc::Scalar(ScalarKind::Int));
            svc.register(
                op.clone(),
                vec![ParamDesc {
                    name: "r".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Int),
                }],
                |_| Err("deliberate".into()),
            );
            let server = HttpServer::spawn(svc).unwrap();
            let body = MessageTemplate::build(
                EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
                &op,
                &[Value::Int(1)],
            )
            .unwrap()
            .to_bytes();
            let (status, resp) = post(server.addr(), "urn:f#f", &body);
            assert_eq!(status, 500, "core {core:?}");
            assert!(String::from_utf8(resp).unwrap().contains("deliberate"));
            server.stop();
        }
    }

    #[test]
    fn concurrent_clients() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let addr = server.addr();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    std::thread::spawn(move || {
                        let body = request_bytes(&[i as f64, 1.0]);
                        let (status, _) = post(addr, "urn:sum#sum", &body);
                        assert_eq!(status, 200);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let stats = server.stop();
            assert_eq!(stats.requests, 4, "core {core:?}");
        }
    }

    #[test]
    fn metrics_endpoint_mirrors_response_tiers() {
        for core in cores() {
            let metrics = Metrics::shared();
            let server =
                HttpServer::spawn_with_metrics(sum_service_on(core), Arc::clone(&metrics)).unwrap();
            // first-time, content-match, perfect-structural response tiers.
            for xs in [&[1.0, 2.0][..], &[1.0, 2.0], &[9.0, 2.0]] {
                let (status, _) = post(server.addr(), "urn:sum#sum", &request_bytes(xs));
                assert_eq!(status, 200, "core {core:?}");
            }
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let mut get = Vec::new();
            bsoap_transport::http::render_get_request(&mut get, "/metrics", "localhost");
            c.write_all(&get).unwrap();
            let (status, text) = read_response(&mut c).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            let text = String::from_utf8(text).unwrap();
            assert_eq!(
                bsoap_obs::parse_value(&text, "bsoap_server_requests_total"),
                Some(3.0),
                "core {core:?}"
            );
            drop(c);
            let stats = server.stop();
            let snap = metrics.snapshot();
            use bsoap_obs::Tier;
            assert_eq!(snap.tier_sends(Tier::FirstTime), stats.responses_first);
            assert_eq!(snap.tier_sends(Tier::ContentMatch), stats.responses_content);
            assert_eq!(
                snap.tier_sends(Tier::PerfectStructural),
                stats.responses_perfect
            );
            assert_eq!(
                snap.tier_sends(Tier::PartialStructural),
                stats.responses_partial
            );
            assert_eq!(snap.total_sends(), stats.requests);
            assert_eq!(snap.get(Counter::ServerRequests), stats.requests);
            assert_eq!(snap.hist(HistId::ServerRequest).count(), stats.requests);
        }
    }

    #[test]
    fn non_http_garbage_draws_400_not_hang() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(b"GARBAGE THAT IS NOT HTTP\r\n\r\n").unwrap();
            let (status, _) = read_response(&mut c).unwrap();
            assert_eq!(status, 400, "core {core:?}");
            drop(c);
            server.stop();
        }
    }

    #[test]
    fn oversized_body_draws_400_under_cap() {
        for core in cores() {
            let cfg = EngineConfig::paper_default()
                .with_wire_format(bsoap_core::WireFormat::SoapXml)
                .with_http_caps(1 << 20, 64)
                .with_server_core(core);
            let mut svc = Service::new("urn:sum", cfg);
            let op = OpDesc::single(
                "sum",
                "urn:sum",
                "xs",
                TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            );
            svc.register(
                op,
                vec![ParamDesc {
                    name: "total".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Double),
                }],
                |_| Ok(vec![Value::Double(0.0)]),
            );
            let server = HttpServer::spawn(svc).unwrap();
            let (status, _) = post(
                server.addr(),
                "urn:sum#sum",
                &request_bytes(&[1.0, 2.0, 3.0, 4.0]),
            );
            assert_eq!(
                status, 400,
                "core {core:?}: body larger than the 64-byte cap is refused"
            );
            server.stop();
        }
    }

    fn binary_request_bytes(xs: &[f64]) -> Vec<u8> {
        let op = OpDesc::single(
            "sum",
            "urn:sum",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        MessageTemplate::build(
            EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::CompactBinary),
            &op,
            &[Value::DoubleArray(xs.to_vec())],
        )
        .unwrap()
        .to_bytes()
    }

    fn post_with_headers(
        addr: std::net::SocketAddr,
        action: &str,
        body: &[u8],
        extra: Vec<(String, String)>,
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut c = TcpStream::connect(addr).unwrap();
        let cfg = RequestConfig {
            path: "/svc".into(),
            host: "localhost".into(),
            soap_action: action.into(),
            version: HttpVersion::Http11Length,
            extra_headers: extra,
        };
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(body)], &mut scratch).unwrap();
        bsoap_transport::http::read_response_headers_limited(&mut c, usize::MAX, usize::MAX)
            .unwrap()
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn binary_round_trip_echoes_negotiation_headers() {
        use bsoap_transport::negotiate::{HDR_ACCEPT_LOWER, HDR_FORMAT_LOWER};
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, headers, resp) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &binary_request_bytes(&[1.5, 2.5, 3.0]),
                vec![
                    (HDR_FORMAT.into(), TOKEN_BINARY.into()),
                    (HDR_ACCEPT.into(), TOKEN_BINARY.into()),
                ],
            );
            assert_eq!(status, 200, "core {core:?}");
            assert_eq!(header(&headers, HDR_FORMAT_LOWER), Some("bin1"));
            assert_eq!(header(&headers, HDR_ACCEPT_LOWER), Some("bin1"));
            assert_eq!(
                header(&headers, "content-type"),
                Some("application/x-bsoap-binary"),
                "core {core:?}"
            );
            let resp_op = OpDesc::new(
                "sumResponse",
                "urn:sum",
                vec![ParamDesc {
                    name: "total".into(),
                    desc: TypeDesc::Scalar(ScalarKind::Double),
                }],
            );
            let parsed = bsoap_deser::parse_binary_envelope(&resp, &resp_op).unwrap();
            assert_eq!(parsed, vec![Value::Double(7.0)], "core {core:?}");
            server.stop();
        }
    }

    #[test]
    fn headerless_binary_body_is_sniffed() {
        // A peer that frames binary bodies but never sends X-BSOAP-Format:
        // the 4-byte magic carries the lane decision.
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, headers, _) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &binary_request_bytes(&[4.0, 0.5]),
                Vec::new(),
            );
            assert_eq!(status, 200, "core {core:?}");
            assert_eq!(
                header(&headers, bsoap_transport::negotiate::HDR_FORMAT_LOWER),
                Some("bin1"),
                "core {core:?}"
            );
            server.stop();
        }
    }

    #[test]
    fn xml_responses_advertise_the_binary_lane() {
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, headers, _) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &request_bytes(&[1.0]),
                Vec::new(),
            );
            assert_eq!(status, 200, "core {core:?}");
            assert_eq!(
                header(&headers, bsoap_transport::negotiate::HDR_ACCEPT_LOWER),
                Some("bin1"),
                "core {core:?}: enabled lane must advertise on XML traffic"
            );
            assert_eq!(
                header(&headers, bsoap_transport::negotiate::HDR_FORMAT_LOWER),
                Some("xml"),
                "core {core:?}"
            );
            server.stop();
        }
    }

    #[test]
    fn unknown_format_token_lands_on_xml() {
        // A peer declaring a format we don't know (future rev, typo):
        // the body reads as XML — same behavior as an old server that
        // never heard of the header — so nothing is lost.
        for core in cores() {
            let server = HttpServer::spawn(sum_service_on(core)).unwrap();
            let (status, headers, _) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &request_bytes(&[2.0, 2.0]),
                vec![(HDR_FORMAT.into(), "bin9".into())],
            );
            assert_eq!(status, 200, "core {core:?}");
            assert_eq!(
                header(&headers, bsoap_transport::negotiate::HDR_FORMAT_LOWER),
                Some("xml"),
                "core {core:?}"
            );
            server.stop();
        }
    }

    #[test]
    fn disabled_binary_lane_draws_415_without_advert() {
        for core in cores() {
            let svc = sum_service_on(core);
            svc.set_binary_enabled(false);
            let server = HttpServer::spawn(svc).unwrap();
            let (status, headers, body) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &binary_request_bytes(&[1.0]),
                vec![(HDR_FORMAT.into(), TOKEN_BINARY.into())],
            );
            assert_eq!(status, 415, "core {core:?}");
            assert!(
                header(&headers, bsoap_transport::negotiate::HDR_ACCEPT_LOWER).is_none(),
                "core {core:?}: a disabled lane must not advertise"
            );
            assert!(String::from_utf8(body).unwrap().contains("SOAP-ENV:Fault"));
            // XML still flows on the same server.
            let (status, _, _) = post_with_headers(
                server.addr(),
                "urn:sum#sum",
                &request_bytes(&[1.0]),
                Vec::new(),
            );
            assert_eq!(status, 200, "core {core:?}");
            server.stop();
        }
    }

    #[test]
    fn action_parsing() {
        assert_eq!(operation_from_action("\"urn:x#op\""), Some("op"));
        assert_eq!(operation_from_action("urn:x#op"), Some("op"));
        assert_eq!(operation_from_action("opaque"), None);
    }
}
