//! Byte-identity of the chunk-sharded parallel dirty flush.
//!
//! The contract (`EngineConfig::parallel_workers`): for every workload,
//! every dirty pattern, and every width/growth/steal configuration, a
//! parallel flush must produce exactly the bytes — and the same DUT
//! geometry — a sequential flush produces. These tests drive matched
//! template pairs through identical update sequences, one flushed
//! sequentially (`parallel_workers = 0`) and one in parallel, and compare
//! the full serialized message after every flush.

use bsoap_chunks::ChunkConfig;
use bsoap_convert::ScalarKind;
use bsoap_core::{
    EngineConfig, FlushMode, GrowthPolicy, MessageTemplate, OpDesc, TypeDesc, Value, WidthPolicy,
};
use proptest::prelude::*;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

/// Small chunks so even modest arrays span many chunks (and therefore many
/// parallel shards).
fn small_chunks() -> ChunkConfig {
    ChunkConfig {
        initial_size: 512,
        split_threshold: 1024,
        reserve: 64,
    }
}

/// Drive sequential and parallel templates through the same updates and
/// assert byte identity after every flush.
fn assert_parallel_matches_sequential(base: EngineConfig, workers: usize, rounds: &[Vec<f64>]) {
    let n = rounds.first().map_or(0, Vec::len);
    let init = Value::DoubleArray(vec![1.0; n]);
    let op = doubles_op();
    let mut seq = MessageTemplate::build(
        base.with_parallel_workers(0),
        &op,
        std::slice::from_ref(&init),
    )
    .unwrap();
    let mut par =
        MessageTemplate::build(base.with_parallel_workers(workers), &op, &[init]).unwrap();
    assert_eq!(seq.to_bytes(), par.to_bytes(), "initial build must match");

    for (round, vals) in rounds.iter().enumerate() {
        seq.update_args(&[Value::DoubleArray(vals.clone())])
            .unwrap();
        par.update_args(&[Value::DoubleArray(vals.clone())])
            .unwrap();
        let rs = seq.flush();
        let rp = par.flush();
        assert_eq!(
            seq.to_bytes(),
            par.to_bytes(),
            "round {round}: parallel flush diverged (workers={workers})"
        );
        assert_eq!(rs.values_written, rp.values_written, "round {round}");
        assert_eq!(rs.shifts, rp.shifts, "round {round}");
        assert_eq!(rs.steals, rp.steals, "round {round}");
        assert_eq!(rs.splits, rp.splits, "round {round}");
        seq.assert_invariants();
        par.assert_invariants();
    }
}

/// Value classes of distinct serialized lengths: 1 char ("1"), 8 chars
/// ("3.141592"-ish), 17 chars, 24 chars (forces growth under Exact widths).
fn value_of_class(class: u8, salt: usize) -> f64 {
    match class % 4 {
        0 => 1.0 + (salt % 9) as f64,
        1 => 3.25 + salt as f64,
        2 => 1.234567890123456 * (1.0 + salt as f64),
        _ => -2.2250738585072014e-308 * (1.0 + salt as f64),
    }
}

#[test]
fn all_dirty_in_width_many_chunks() {
    // 100% dirty, all rewrites in-width (Max stuffing): the pure parallel
    // fast path, no deferred entries.
    let n = 400;
    let base = EngineConfig::stuffed_max()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let rounds: Vec<Vec<f64>> = (0..4)
        .map(|r| {
            (0..n)
                .map(|i| (i as f64 + 1.0) * 1.234567 * (r + 1) as f64)
                .collect()
        })
        .collect();
    for workers in [2, 3, 8] {
        assert_parallel_matches_sequential(base, workers, &rounds);
    }
}

#[test]
fn growth_mix_defers_and_replays() {
    // Mixed in-width rewrites and width-growing values (Exact widths):
    // exercises the deferred sequential replay with shifts and splits.
    let n = 300;
    let base = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let rounds: Vec<Vec<f64>> = (0..3)
        .map(|r| {
            (0..n)
                .map(|i| value_of_class((i % 4) as u8, i + r * n))
                .collect()
        })
        .collect();
    for workers in [2, 4] {
        assert_parallel_matches_sequential(base, workers, &rounds);
    }
}

#[test]
fn steal_contagion_adjacent_dirty_neighbors() {
    // Adjacent dirty entries where the left one grows (steals from the
    // right neighbor's pad) and the right one is an in-width rewrite — the
    // exact pattern the contagion rule defends.
    let n = 200;
    let base = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_width(WidthPolicy::Fixed {
            double: 18,
            int: 11,
            long: 20,
        })
        .with_steal(true);
    let rounds: Vec<Vec<f64>> = vec![
        // Every even field grows past 18 chars; every odd field shrinks.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    value_of_class(3, i)
                } else {
                    1.0
                }
            })
            .collect(),
        // Then flip the pattern.
        (0..n)
            .map(|i| {
                if i % 2 == 1 {
                    value_of_class(3, i)
                } else {
                    2.0
                }
            })
            .collect(),
    ];
    for workers in [2, 4] {
        assert_parallel_matches_sequential(base, workers, &rounds);
    }
}

#[test]
fn sparse_dirty_subset() {
    // Only a scattered subset dirty per round: runs of very different
    // sizes across chunks (exercises the greedy run assignment).
    let n = 500;
    let base = EngineConfig::stuffed_max()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let rounds: Vec<Vec<f64>> = (0..5)
        .map(|r| {
            (0..n)
                .map(|i| {
                    if (i * 7 + r * 13) % 11 == 0 {
                        value_of_class((i % 3) as u8, i + r)
                    } else {
                        1.0 // unchanged → clean
                    }
                })
                .collect()
        })
        .collect();
    assert_parallel_matches_sequential(base, 3, &rounds);
}

#[test]
fn legacy_mode_scenarios_stay_covered() {
    // The legacy flush (now opt-in — `FlushMode::Planned` is the default)
    // keeps its own parallel path with the deferral/contagion rule; rerun
    // the two heaviest scenarios under it so the code stays exercised.
    let n = 300;
    let base = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_flush_mode(FlushMode::Legacy)
        .with_chunk(small_chunks());
    let rounds: Vec<Vec<f64>> = (0..3)
        .map(|r| {
            (0..n)
                .map(|i| value_of_class((i % 4) as u8, i + r * n))
                .collect()
        })
        .collect();
    for workers in [2, 4] {
        assert_parallel_matches_sequential(base, workers, &rounds);
    }

    let base = base.with_width(WidthPolicy::Fixed {
        double: 18,
        int: 11,
        long: 20,
    });
    let rounds: Vec<Vec<f64>> = vec![(0..n)
        .map(|i| {
            if i % 2 == 0 {
                value_of_class(3, i)
            } else {
                1.0
            }
        })
        .collect()];
    assert_parallel_matches_sequential(base, 4, &rounds);
}

#[test]
fn deferral_in_one_chunk_does_not_serialize_the_next() {
    // Regression: a width-growing (deferred/shifting) entry that is the
    // LAST leaf of chunk i must not drag the first leaf of chunk i+1 into
    // its serialization — contagion stops at the chunk boundary, in both
    // flush modes. Observable as: exactly the two dirty values are
    // written, and parallel bytes equal sequential bytes.
    let op = doubles_op();
    let n = 120;
    for mode in [FlushMode::Legacy, FlushMode::Planned] {
        let base = EngineConfig::paper_default()
            .with_wire_format(bsoap_core::WireFormat::SoapXml)
            .with_flush_mode(mode)
            .with_chunk(ChunkConfig {
                initial_size: 256,
                split_threshold: 512,
                reserve: 48,
            })
            .with_width(WidthPolicy::Exact)
            .with_steal(false);
        let init = Value::DoubleArray(vec![1.0; n]);
        let build = |workers| {
            MessageTemplate::build(
                base.with_parallel_workers(workers),
                &op,
                std::slice::from_ref(&init),
            )
            .unwrap()
        };
        let mut seq = build(0);
        let mut par = build(4);
        assert!(par.chunk_count() >= 2, "setup must span chunks");

        // Find a chunk boundary between two double leaves: entry b-1 ends
        // chunk i, entry b starts chunk i+1.
        let entries = par.dut().entries();
        let b = (1..entries.len())
            .find(|&i| {
                entries[i].loc.chunk != entries[i - 1].loc.chunk
                    && entries[i].kind == ScalarKind::Double
                    && entries[i - 1].kind == ScalarKind::Double
            })
            .expect("no double/double chunk boundary");

        for tpl in [&mut seq, &mut par] {
            // b-1 grows far past its exact 1-char width (forced shift);
            // b is a same-width overwrite.
            tpl.set_double(b - 1, 1.234567890123456e100).unwrap();
            tpl.set_double(b, 2.0).unwrap();
        }
        let rs = seq.flush();
        let rp = par.flush();
        assert_eq!(rs.values_written, 2, "sequential writes the dirty pair");
        assert_eq!(
            rp.values_written, 2,
            "deferred entry in chunk i serialized entries of chunk i+1 ({mode:?})"
        );
        assert!(rs.shifts > 0, "the growth must have shifted");
        assert_eq!(rs.shifts, rp.shifts, "{mode:?}");
        assert_eq!(
            seq.to_bytes(),
            par.to_bytes(),
            "parallel diverged across the chunk boundary ({mode:?})"
        );
        seq.assert_invariants();
        par.assert_invariants();
    }
}

#[test]
fn single_chunk_falls_back_to_sequential() {
    // Everything in one chunk: the parallel path must decline (one run)
    // and behave exactly as sequential.
    let base = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml); // 32 KiB chunks
    let rounds = vec![vec![3.25; 20], vec![1.0; 20]];
    assert_parallel_matches_sequential(base, 8, &rounds);
}

#[test]
fn workers_exceed_chunks() {
    // More workers than runs: worker count must clamp, not panic or idle.
    let n = 60;
    let base = EngineConfig::stuffed_max()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let rounds = vec![(0..n).map(|i| i as f64 * 0.5 + 0.25).collect()];
    assert_parallel_matches_sequential(base, 64, &rounds);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized mixed scenario: arbitrary dirty subsets, value classes
    /// (including width growth), steal on/off, growth policy, and worker
    /// counts — parallel flush must stay byte-identical throughout.
    #[test]
    fn parallel_flush_byte_identical(
        classes in proptest::collection::vec((0u8..4, 0u8..3), 40..160),
        steal in any::<bool>(),
        to_max in any::<bool>(),
        workers in 2usize..6,
        rounds in 1usize..4,
    ) {
        let base = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml)
            .with_chunk(ChunkConfig { initial_size: 256, split_threshold: 512, reserve: 48 })
            .with_steal(steal)
            .with_growth(if to_max { GrowthPolicy::ToMax } else { GrowthPolicy::Exact });
        let n = classes.len();
        let rounds: Vec<Vec<f64>> = (0..rounds)
            .map(|r| {
                classes
                    .iter()
                    .enumerate()
                    .map(|(i, &(class, dirty_mod))| {
                        if (i + r) % (dirty_mod as usize + 1) == 0 {
                            value_of_class(class, i + r * n + 1)
                        } else {
                            1.0 // stays clean after round 0
                        }
                    })
                    .collect()
            })
            .collect();
        assert_parallel_matches_sequential(base, workers, &rounds);
    }
}
