//! Satellite proof: overlaid send output vs the non-overlay full
//! serialization, for random window sizes (including tails that don't
//! divide the array) across `KernelPolicy::{Scalar, ForcedSimd}`.
//!
//! Two equivalence strengths, by width policy:
//!
//! * `WidthPolicy::Max` (stuffed) — **byte-identical**: every slot is
//!   padded to the type's maximum width, so per-window templates and the
//!   whole-message template emit the same bytes.
//! * `WidthPolicy::Exact` — **strip_pad-identical**: the window's slot
//!   widths persist across portions while a full template sizes each slot
//!   to its own value, so the streams agree exactly once stuffing pad is
//!   removed.

use bsoap_convert::ScalarKind;
use bsoap_core::overlay::OverlaySender;
use bsoap_core::{EngineConfig, KernelPolicy, MessageTemplate, OpDesc, TypeDesc, Value};
use bsoap_xml::strip_pad;
use proptest::prelude::*;
use std::io::IoSlice;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendM",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

/// Drive `send_portions` directly so the test also covers the portion
/// callback path `Client::call_overlaid_via` uses (not just `send`).
fn overlay_bytes(
    config: EngineConfig,
    op: &OpDesc,
    window: usize,
    value: &Value,
) -> (Vec<u8>, usize) {
    let mut sender = OverlaySender::new(config, op, window).unwrap();
    let mut out = Vec::new();
    let report = sender
        .send_portions(value, |slices: &[IoSlice<'_>]| {
            let mut n = 0;
            for s in slices {
                out.extend_from_slice(s);
                n += s.len();
            }
            Ok(n)
        })
        .unwrap();
    (out, report.portions)
}

fn full_bytes(config: EngineConfig, op: &OpDesc, value: &Value) -> Vec<u8> {
    MessageTemplate::build(config, op, std::slice::from_ref(value))
        .unwrap()
        .to_bytes()
        .to_vec()
}

fn dval(i: usize) -> f64 {
    // Mix of widths: integers, short fractions, long fractions, negatives.
    match i % 4 {
        0 => i as f64,
        1 => -(i as f64) * 0.5,
        2 => i as f64 * 0.123456789,
        _ => f64::from_bits(0x3ff0_0000_0000_0000 | (i as u64 * 0x9e37_79b9)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stuffed (Max width): overlay output is byte-identical to the full
    /// serialization for any window size, on both kernels.
    #[test]
    fn stuffed_overlay_is_byte_identical(
        n in 0usize..600,
        window in 1usize..97,
        forced_simd in any::<bool>(),
    ) {
        let kernel = if forced_simd { KernelPolicy::ForcedSimd } else { KernelPolicy::Scalar };
        let config = EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml).with_kernel(kernel);
        let op = doubles_op();
        let value = Value::DoubleArray((0..n).map(dval).collect());
        let (streamed, portions) = overlay_bytes(config, &op, window, &value);
        let full = full_bytes(config, &op, &value);
        prop_assert_eq!(streamed, full);
        prop_assert_eq!(portions, n.div_ceil(window));
    }

    /// Exact width: overlay output matches the full serialization once
    /// stuffing pad is stripped, for any window size, on both kernels.
    #[test]
    fn exact_overlay_is_strip_pad_identical(
        n in 0usize..600,
        window in 1usize..97,
        forced_simd in any::<bool>(),
    ) {
        let kernel = if forced_simd { KernelPolicy::ForcedSimd } else { KernelPolicy::Scalar };
        let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml).with_kernel(kernel);
        let op = doubles_op();
        let value = Value::DoubleArray((0..n).map(dval).collect());
        let (streamed, _) = overlay_bytes(config, &op, window, &value);
        let full = full_bytes(config, &op, &value);
        prop_assert_eq!(strip_pad(&streamed), strip_pad(&full));
    }

    /// Struct-element arrays (mio): same stuffed byte-identity holds when
    /// each item is a nested structure, including non-dividing tails.
    #[test]
    fn stuffed_struct_overlay_is_byte_identical(
        n in 0usize..200,
        window in 1usize..41,
        forced_simd in any::<bool>(),
    ) {
        let kernel = if forced_simd { KernelPolicy::ForcedSimd } else { KernelPolicy::Scalar };
        let config = EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml).with_kernel(kernel);
        let op = mios_op();
        let items: Vec<Value> = (0..n)
            .map(|i| bsoap_core::value::mio(i as i32, -(i as i32), dval(i)))
            .collect();
        let value = Value::Array(items);
        let (streamed, _) = overlay_bytes(config, &op, window, &value);
        let full = full_bytes(config, &op, &value);
        prop_assert_eq!(streamed, full);
    }

    /// Re-sending different values through the same sender (warm window,
    /// PerfectStructural tier) still matches the full serialization.
    #[test]
    fn warm_window_resend_is_byte_identical(
        n1 in 1usize..300,
        n2 in 1usize..300,
        window in 1usize..64,
        forced_simd in any::<bool>(),
    ) {
        let kernel = if forced_simd { KernelPolicy::ForcedSimd } else { KernelPolicy::Scalar };
        let config = EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml).with_kernel(kernel);
        let op = doubles_op();
        let mut sender = OverlaySender::new(config, &op, window).unwrap();
        for (round, n) in [n1, n2].into_iter().enumerate() {
            let value = Value::DoubleArray((0..n).map(|i| dval(i + round * 7)).collect());
            let mut out = Vec::new();
            sender.send(&value, &mut out).unwrap();
            let full = full_bytes(config, &op, &value);
            prop_assert_eq!(out, full, "round {}", round);
        }
    }
}

#[test]
fn non_dividing_tail_exact_boundaries() {
    // Deterministic spot-checks at the awkward boundaries: window larger
    // than array, window == array, off-by-one tails.
    let op = doubles_op();
    let config = EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml);
    for (n, window) in [(1, 5), (5, 5), (6, 5), (9, 5), (10, 5), (11, 5), (0, 3)] {
        let value = Value::DoubleArray((0..n).map(dval).collect());
        let (streamed, portions) = overlay_bytes(config, &op, window, &value);
        let full = full_bytes(config, &op, &value);
        assert_eq!(streamed, full, "n={n} window={window}");
        assert_eq!(portions, n.div_ceil(window), "n={n} window={window}");
    }
}
