//! Property test for the vectored drain: any gather list written through
//! a pathological `Write` impl (1–3 bytes per call, injected EINTR) comes
//! out byte-identical to the concatenation.

use bsoap_core::sendv::write_all_vectored;
use proptest::prelude::*;
use std::io::{self, IoSlice, Write};

/// Writer accepting only 1–3 bytes per call (cycling), periodically
/// failing with `Interrupted` before consuming anything.
struct InterruptingDribbler {
    out: Vec<u8>,
    calls: usize,
    interrupt_every: usize,
}

impl InterruptingDribbler {
    fn admit(&mut self) -> io::Result<usize> {
        self.calls += 1;
        if self.interrupt_every != 0 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
        }
        Ok(1 + self.calls % 3)
    }
}

impl Write for InterruptingDribbler {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = self.admit()?;
        let n = buf.len().min(cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let mut cap = self.admit()?;
        let mut n = 0;
        for b in bufs {
            if cap == 0 {
                break;
            }
            let take = b.len().min(cap);
            self.out.extend_from_slice(&b[..take]);
            cap -= take;
            n += take;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn drains_byte_identical_under_dribble_and_eintr(
        parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..12
        ),
        interrupt_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let want: Vec<u8> = parts.concat();
        let mut w = InterruptingDribbler {
            out: Vec::new(),
            calls: 0,
            interrupt_every,
        };
        let n = write_all_vectored(&mut w, &slices).unwrap();
        prop_assert_eq!(n, want.len());
        prop_assert_eq!(w.out, want);
    }
}
