//! Partial structural matches: array growth and contraction (§3).
//!
//! The load-bearing check throughout: after any resize, the template's
//! bytes must equal a **fresh full serialization** of the same arguments
//! (modulo stuffing whitespace, which these configs avoid by using exact
//! widths and value-stable updates).

use bsoap_chunks::ChunkConfig;
use bsoap_convert::ScalarKind;
use bsoap_core::{
    value::mio, EngineConfig, MessageTemplate, OpDesc, ParamDesc, SendTier, TypeDesc, Value,
};
use bsoap_xml::strip_pad;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendM",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

fn small_chunks() -> ChunkConfig {
    ChunkConfig {
        initial_size: 256,
        split_threshold: 512,
        reserve: 32,
    }
}

fn dvals(n: usize) -> Value {
    Value::DoubleArray((0..n).map(|i| i as f64 + 0.25).collect())
}

fn mvals(n: usize) -> Value {
    Value::Array(
        (0..n)
            .map(|i| mio(i as i32, -(i as i32), i as f64 * 1.5))
            .collect(),
    )
}

/// Resize via update_args and verify byte equality with a fresh build.
fn check_resize(op: &OpDesc, from: Value, to: Value) {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let mut tpl = MessageTemplate::build(config, op, std::slice::from_ref(&from)).unwrap();
    let tier = tpl.update_args(std::slice::from_ref(&to)).unwrap();
    assert_eq!(tier, SendTier::PartialStructural);
    let report = tpl.flush();
    assert_eq!(report.tier, SendTier::PartialStructural);
    tpl.assert_invariants();

    let fresh = MessageTemplate::build(config, op, std::slice::from_ref(&to)).unwrap();
    // The length field is stuffed to 11 chars in both, so padding matches;
    // resized bytes must be identical to a from-scratch serialization.
    assert_eq!(
        String::from_utf8(tpl.to_bytes()).unwrap(),
        String::from_utf8(fresh.to_bytes()).unwrap()
    );
}

#[test]
fn grow_small() {
    check_resize(&doubles_op(), dvals(3), dvals(5));
}

#[test]
fn grow_across_chunks() {
    check_resize(&doubles_op(), dvals(10), dvals(200));
}

#[test]
fn grow_from_empty() {
    check_resize(&doubles_op(), dvals(0), dvals(7));
}

#[test]
fn grow_by_one() {
    check_resize(&doubles_op(), dvals(50), dvals(51));
}

#[test]
fn shrink_small() {
    check_resize(&doubles_op(), dvals(5), dvals(3));
}

#[test]
fn shrink_across_chunks() {
    check_resize(&doubles_op(), dvals(200), dvals(10));
}

#[test]
fn shrink_to_empty() {
    check_resize(&doubles_op(), dvals(7), dvals(0));
}

#[test]
fn shrink_by_one() {
    check_resize(&doubles_op(), dvals(51), dvals(50));
}

#[test]
fn mio_grow_and_shrink() {
    check_resize(&mios_op(), mvals(4), mvals(20));
    check_resize(&mios_op(), mvals(20), mvals(4));
    check_resize(&mios_op(), mvals(0), mvals(3));
    check_resize(&mios_op(), mvals(3), mvals(0));
}

#[test]
fn repeated_resizes_stay_consistent() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(config, &op, &[dvals(5)]).unwrap();
    for n in [9usize, 2, 40, 1, 0, 17, 16, 18, 100, 3] {
        tpl.update_args(&[dvals(n)]).unwrap();
        tpl.flush();
        tpl.assert_invariants();
        assert_eq!(tpl.array_len(0), n);
        let fresh = MessageTemplate::build(config, &op, &[dvals(n)]).unwrap();
        assert_eq!(tpl.to_bytes(), fresh.to_bytes(), "n = {n}");
    }
    // After the dust settles, a same-shape update is a perfect match again.
    let mut v = match dvals(3) {
        Value::DoubleArray(v) => v,
        _ => unreachable!(),
    };
    v[1] = 123.456;
    let tier = tpl.update_args(&[Value::DoubleArray(v)]).unwrap();
    assert_eq!(tier, SendTier::PerfectStructural);
}

#[test]
fn resize_with_params_after_array() {
    // Leaves *after* the array must survive the splice/pointer fix-ups.
    let op = OpDesc::new(
        "mixed",
        "urn:bench",
        vec![
            ParamDesc {
                name: "before".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            ParamDesc {
                name: "arr".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            ParamDesc {
                name: "after".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    );
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let args = |n: usize, s: &str| vec![Value::Int(1), dvals(n), Value::Str(s.to_owned())];
    let mut tpl = MessageTemplate::build(config, &op, &args(8, "alpha")).unwrap();

    // Grow the array AND change the trailing scalar in one update.
    tpl.update_args(&args(80, "omega")).unwrap();
    tpl.flush();
    tpl.assert_invariants();
    let fresh = MessageTemplate::build(config, &op, &args(80, "omega")).unwrap();
    assert_eq!(tpl.to_bytes(), fresh.to_bytes());

    // Shrink and mutate again. "zz" is shorter than "omega", so the string
    // field keeps its width and pads (the paper's close-tag shift) —
    // compare modulo pad.
    tpl.update_args(&args(2, "zz")).unwrap();
    tpl.flush();
    tpl.assert_invariants();
    let fresh = MessageTemplate::build(config, &op, &args(2, "zz")).unwrap();
    assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&fresh.to_bytes()));
}

#[test]
fn two_arrays_resize_independently() {
    let op = OpDesc::new(
        "pair",
        "urn:bench",
        vec![
            ParamDesc {
                name: "a".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            },
            ParamDesc {
                name: "b".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
        ],
    );
    let ints = |n: usize| Value::IntArray((0..n as i32).collect());
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let mut tpl = MessageTemplate::build(config, &op, &[ints(5), dvals(5)]).unwrap();

    for (na, nb) in [
        (12usize, 5usize),
        (12, 40),
        (3, 40),
        (3, 2),
        (60, 60),
        (0, 1),
        (5, 5),
    ] {
        tpl.update_args(&[ints(na), dvals(nb)]).unwrap();
        tpl.flush();
        tpl.assert_invariants();
        assert_eq!(tpl.array_len(0), na);
        assert_eq!(tpl.array_len(1), nb);
        let fresh = MessageTemplate::build(config, &op, &[ints(na), dvals(nb)]).unwrap();
        assert_eq!(tpl.to_bytes(), fresh.to_bytes(), "na={na} nb={nb}");
    }
}

#[test]
fn resize_updates_length_attribute() {
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let mut tpl = MessageTemplate::build(config, &doubles_op(), &[dvals(3)]).unwrap();
    tpl.update_args(&[dvals(12)]).unwrap();
    tpl.flush();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains("xsd:double[12"), "{text}");
    assert!(!text.contains("xsd:double[3 "), "old length must be gone");
}

#[test]
fn grow_with_changed_prefix_values() {
    // Prefix diff + growth in the same update. "9.5" and "8.5" are shorter
    // than the "0.25"/"2.25" they overwrite, so those fields pad instead of
    // contracting (§3.2's close-tag shift) — compare modulo pad.
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(config, &op, &[dvals(4)]).unwrap();
    let new = Value::DoubleArray(vec![9.5, 1.25, 8.5, 3.25, 100.0, 200.0]);
    tpl.update_args(std::slice::from_ref(&new)).unwrap();
    tpl.flush();
    tpl.assert_invariants();
    let fresh = MessageTemplate::build(config, &op, std::slice::from_ref(&new)).unwrap();
    assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&fresh.to_bytes()));
}
