//! Chunk overlaying (§3.3): bounded memory, tags written once,
//! stream equals the whole-template serialization.

use bsoap_convert::ScalarKind;
use bsoap_core::overlay::OverlaySender;
use bsoap_core::{EngineConfig, MessageTemplate, OpDesc, TypeDesc, Value};
use bsoap_xml::strip_pad;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendM",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

fn dvals(n: usize) -> Value {
    Value::DoubleArray((0..n).map(|i| i as f64 * 0.75 + 0.125).collect())
}

#[test]
fn stream_is_pad_equivalent_to_template() {
    let op = doubles_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    for n in [0usize, 1, 7, 100, 3000] {
        let value = dvals(n);
        let mut sender = OverlaySender::new(config, &op, 64).unwrap();
        let mut out = Vec::new();
        sender.send(&value, &mut out).unwrap();
        let tpl = MessageTemplate::build(config, &op, std::slice::from_ref(&value)).unwrap();
        assert_eq!(
            String::from_utf8(strip_pad(&out)).unwrap(),
            String::from_utf8(strip_pad(&tpl.to_bytes())).unwrap(),
            "n = {n}"
        );
    }
}

#[test]
fn window_memory_stays_bounded() {
    let op = doubles_op();
    let mut sender = OverlaySender::new(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        128,
    )
    .unwrap();
    let mut out = Vec::new();
    let small = sender.send(&dvals(256), &mut out).unwrap();
    out.clear();
    let large = sender.send(&dvals(16_384), &mut out).unwrap();
    // 64x the data, same window-bounded footprint (individual values are
    // a little wider in the large array, so allow that growth but nothing
    // proportional to the array).
    assert!(
        large.window_bytes < small.window_bytes * 2,
        "window grew with the array: {} vs {}",
        large.window_bytes,
        small.window_bytes
    );
    assert_eq!(large.portions, 16_384 / 128);
    assert!(large.window_bytes < out.len() / 50);
}

#[test]
fn tags_written_once_values_every_portion() {
    // Re-sending through the same sender reuses the window fragment:
    // every send after the first re-serializes values only.
    let op = doubles_op();
    let mut sender = OverlaySender::new(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        32,
    )
    .unwrap();
    let mut out = Vec::new();
    let n = 320usize;
    let r1 = sender.send(&dvals(n), &mut out).unwrap();
    assert_eq!(r1.portions, 10);
    // First send serializes every value at least once (builds the window).
    assert!(
        r1.values_written >= n - 32,
        "first send: {}",
        r1.values_written
    );
    out.clear();
    let r2 = sender.send(&dvals(n), &mut out).unwrap();
    // Subsequent sends also re-serialize all values (that is the overlay
    // trade-off) but never rebuild tags; the report shape stays stable.
    assert_eq!(r2.portions, 10);
    assert_eq!(r2.values_written, n);
}

#[test]
fn changing_data_between_sends() {
    let op = doubles_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let mut sender = OverlaySender::new(config, &op, 16).unwrap();
    let mut out1 = Vec::new();
    sender.send(&dvals(100), &mut out1).unwrap();

    let mut changed = dvals(100);
    let Value::DoubleArray(v) = &mut changed else {
        unreachable!()
    };
    for x in v.iter_mut() {
        *x += 1.0;
    }
    let mut out2 = Vec::new();
    sender.send(&changed, &mut out2).unwrap();
    let tpl = MessageTemplate::build(config, &op, &[changed]).unwrap();
    assert_eq!(strip_pad(&out2), strip_pad(&tpl.to_bytes()));
    assert_ne!(strip_pad(&out1), strip_pad(&out2));
}

#[test]
fn length_changes_between_sends() {
    // Growing and shrinking arrays re-portion correctly (tail fragment
    // rebuilt on size change).
    let op = doubles_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let mut sender = OverlaySender::new(config, &op, 16).unwrap();
    for n in [100usize, 37, 160, 16, 15, 17, 0, 5] {
        let value = dvals(n);
        let mut out = Vec::new();
        sender.send(&value, &mut out).unwrap();
        let tpl = MessageTemplate::build(config, &op, std::slice::from_ref(&value)).unwrap();
        assert_eq!(strip_pad(&out), strip_pad(&tpl.to_bytes()), "n = {n}");
    }
}

#[test]
fn mio_overlay_round_trips() {
    let op = mios_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let value = Value::Array(
        (0..200)
            .map(|i| bsoap_core::value::mio(i, -i, i as f64 * 1.5))
            .collect(),
    );
    let mut sender = OverlaySender::auto_window(config, &op).unwrap();
    let mut out = Vec::new();
    let report = sender.send(&value, &mut out).unwrap();
    assert!(report.bytes > 0);
    let tpl = MessageTemplate::build(config, &op, &[value]).unwrap();
    assert_eq!(strip_pad(&out), strip_pad(&tpl.to_bytes()));
}

#[test]
fn auto_window_fills_one_chunk() {
    let op = mios_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let sender = OverlaySender::auto_window(config, &op).unwrap();
    let elem_max = bsoap_core::overlay::max_element_bytes(&TypeDesc::mio());
    assert!(sender.window_elems() >= 1);
    assert!(
        sender.window_elems() * elem_max <= config.chunk.fill_limit(),
        "window must fit the chunk at worst-case widths"
    );
}

#[test]
fn invalid_shapes_rejected() {
    let config = EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml);
    // Non-array parameter.
    let scalar_op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
    assert!(OverlaySender::new(config, &scalar_op, 8).is_err());
    // Multi-parameter operation.
    let multi = OpDesc::new(
        "g",
        "urn:x",
        vec![
            bsoap_core::ParamDesc {
                name: "a".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            },
            bsoap_core::ParamDesc {
                name: "b".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
        ],
    );
    assert!(OverlaySender::new(config, &multi, 8).is_err());
    // Zero-element window.
    assert!(OverlaySender::new(config, &doubles_op(), 0).is_err());
    // Wrong value kind at send time.
    let mut ok = OverlaySender::new(config, &doubles_op(), 8).unwrap();
    assert!(ok.send(&Value::Int(3), &mut Vec::new()).is_err());
}
