//! On-the-fly expansion mechanics: shifting, stealing, splitting, growth
//! policies (§3.2, §4.3, §4.4).

// 3.14159 below is a 7-character growth payload, not an approximation of pi.
#![allow(clippy::approx_constant)]

use bsoap_chunks::ChunkConfig;
use bsoap_convert::ScalarKind;
use bsoap_core::{
    EngineConfig, GrowthPolicy, MessageTemplate, OpDesc, TypeDesc, Value, WidthPolicy,
};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn small_chunks() -> ChunkConfig {
    ChunkConfig {
        initial_size: 512,
        split_threshold: 1024,
        reserve: 64,
    }
}

/// Build with minimum-width values then rewrite every value to maximum
/// width — the paper's worst-case shifting experiment (Fig. 6/7).
#[test]
fn worst_case_expansion_all_values() {
    let n = 200;
    // Tight threshold: per-chunk growth (~23 bytes × ~12 items) exceeds the
    // headroom, forcing chunk splits.
    let tight = ChunkConfig {
        initial_size: 512,
        split_threshold: 640,
        reserve: 64,
    };
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(tight)
        .with_steal(false);
    let min_vals = Value::DoubleArray(vec![1.0; n]); // "1": one char
    let mut tpl = MessageTemplate::build(config, &doubles_op(), &[min_vals]).unwrap();
    let before_len = tpl.message_len();

    // −2.2250738585072014E−308-ish values: 24 characters each.
    let wide = -2.2250738585072014e-308;
    assert_eq!(bsoap_convert::format_f64(wide).len(), 24);
    tpl.update_args(&[Value::DoubleArray(vec![wide; n])])
        .unwrap();
    let report = tpl.flush();
    assert_eq!(report.values_written, n);
    assert_eq!(report.shifts, n, "every value must shift");
    assert!(
        report.splits > 0,
        "growth beyond threshold must split chunks"
    );
    assert_eq!(tpl.message_len(), before_len + n * 23);
    tpl.assert_invariants();

    // The patched message equals a fresh full serialization.
    let fresh = MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![wide; n])])
        .unwrap();
    assert_eq!(tpl.to_bytes(), fresh.to_bytes());
}

#[test]
fn stealing_avoids_tail_shifts() {
    // Neighbor fields stuffed to max have 23 spare chars; growing one value
    // should steal from the right neighbor instead of shifting.
    let config = EngineConfig::stuffed_max()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let tpl = MessageTemplate::build(
        config,
        &doubles_op(),
        &[Value::DoubleArray(vec![1.0, 1.0, 1.0])],
    )
    .unwrap();
    // With Max stuffing, widths are already 24 — growth can't happen at
    // all. Use Exact widths instead and give only the *neighbor* slack by
    // making it long.
    drop(tpl);

    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_steal(true);
    // value0 short, value1 long (its field is wide), value2 short.
    let mut tpl = MessageTemplate::build(
        config,
        &doubles_op(),
        &[Value::DoubleArray(vec![1.0, -2.2250738585072014e-308, 1.0])],
    )
    .unwrap();
    // Now shrink value1's serialized form (its width stays 24: stuffing
    // keeps the pad), giving it 23 chars of slack.
    tpl.update_args(&[Value::DoubleArray(vec![1.0, 1.0, 1.0])])
        .unwrap();
    tpl.flush();
    tpl.assert_invariants();

    // Grow value0 to 7 chars; the neighbor's pad absorbs it via stealing.
    tpl.update_args(&[Value::DoubleArray(vec![3.14159, 1.0, 1.0])])
        .unwrap();
    let report = tpl.flush();
    assert_eq!(report.steals, 1, "expected a steal, got {report:?}");
    assert_eq!(report.shifts, 0);
    tpl.assert_invariants();

    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(">3.14159</item>"));
    // Total length unchanged: stealing redistributes, never grows.
    let fresh_equal = text.replace(' ', "");
    assert!(fresh_equal.contains(">1</item><itemxsi:type=\"xsd:double\">1</item>"));
}

#[test]
fn steal_disabled_forces_shift() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_steal(false);
    let mut tpl = MessageTemplate::build(
        config,
        &doubles_op(),
        &[Value::DoubleArray(vec![1.0, -2.2250738585072014e-308])],
    )
    .unwrap();
    tpl.update_args(&[Value::DoubleArray(vec![1.0, 1.0])])
        .unwrap();
    tpl.flush();
    tpl.update_args(&[Value::DoubleArray(vec![3.14159, 1.0])])
        .unwrap();
    let report = tpl.flush();
    assert_eq!(report.steals, 0);
    assert_eq!(report.shifts, 1);
    tpl.assert_invariants();
}

#[test]
fn growth_policy_to_max_prevents_second_shift() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_growth(GrowthPolicy::ToMax)
        .with_steal(false);
    let mut tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0, 1.0])])
            .unwrap();

    tpl.update_args(&[Value::DoubleArray(vec![3.75, 1.0])])
        .unwrap();
    let r1 = tpl.flush();
    assert_eq!(r1.shifts, 1);

    // Second growth of the same field: field is already at max width.
    tpl.update_args(&[Value::DoubleArray(vec![-2.2250738585072014e-308, 1.0])])
        .unwrap();
    let r2 = tpl.flush();
    assert_eq!(r2.shifts, 0, "ToMax growth must make the field shift-free");
    tpl.assert_invariants();
}

#[test]
fn growth_policy_exact_shifts_every_growth() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_growth(GrowthPolicy::Exact)
        .with_steal(false);
    let mut tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0, 1.0])])
            .unwrap();
    tpl.update_args(&[Value::DoubleArray(vec![3.75, 1.0])])
        .unwrap();
    assert_eq!(tpl.flush().shifts, 1);
    tpl.update_args(&[Value::DoubleArray(vec![3.14159, 1.0])])
        .unwrap();
    assert_eq!(tpl.flush().shifts, 1, "Exact growth shifts again");
    tpl.assert_invariants();
}

#[test]
fn max_stuffing_never_shifts() {
    // Fig 10/11's operating point: all fields at max width.
    let config = EngineConfig::stuffed_max()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let n = 100;
    let mut tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0; n])]).unwrap();
    let len0 = tpl.message_len();
    for round in 0..5 {
        let vals: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 1.0) * 1.234567 * (round as f64 + 1.0))
            .collect();
        tpl.update_args(&[Value::DoubleArray(vals.clone())])
            .unwrap();
        let report = tpl.flush();
        assert_eq!(report.shifts, 0, "round {round}");
        assert_eq!(report.steals, 0);
        assert_eq!(
            tpl.message_len(),
            len0,
            "stuffed message length is constant"
        );
        // Values must still read back exactly.
        let text = String::from_utf8(tpl.to_bytes()).unwrap();
        assert!(text.contains(&bsoap_convert::format_f64(vals[n - 1])));
    }
    tpl.assert_invariants();
}

#[test]
fn full_closing_tag_shift_bytes_still_legal_xml() {
    // Fig 10/11 "Max Field Width: Full Closing Tag Shift": write the
    // smallest value over the largest. The closing tag moves 23 chars left
    // and whitespace fills the gap; the result must stay well-formed.
    let config = EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml);
    let wide = -2.2250738585072014e-308;
    let mut tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![wide; 10])])
            .unwrap();
    tpl.update_args(&[Value::DoubleArray(vec![1.0; 10])])
        .unwrap();
    let report = tpl.flush();
    assert_eq!(report.values_written, 10);
    assert_eq!(report.shifts, 0);

    let bytes = tpl.to_bytes();
    let mut p = bsoap_xml::PullParser::new(&bytes);
    let mut texts = 0;
    loop {
        match p.next_event().unwrap() {
            bsoap_xml::Event::Eof => break,
            bsoap_xml::Event::Text { range } => {
                let t = &bytes[range];
                if t.contains(&b'1') {
                    assert_eq!(bsoap_convert::parse::parse_f64(t), Ok(1.0));
                    texts += 1;
                }
            }
            _ => {}
        }
    }
    assert_eq!(texts, 10, "all ten padded values parse back");
    tpl.assert_invariants();
}

#[test]
fn chunk_size_bounds_shift_cost() {
    // The shifted-byte count (the paper's shifting cost metric) must be
    // bounded by chunk size: smaller chunks → fewer bytes moved per shift.
    let n = 500;
    let wide = -2.2250738585072014e-308;
    let mut shifted = Vec::new();
    for chunk in [ChunkConfig::k8(), ChunkConfig::k32()] {
        let config = EngineConfig::paper_default()
            .with_wire_format(bsoap_core::WireFormat::SoapXml)
            .with_chunk(chunk)
            .with_steal(false);
        let mut tpl =
            MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0; n])])
                .unwrap();
        tpl.update_args(&[Value::DoubleArray(vec![wide; n])])
            .unwrap();
        tpl.flush();
        tpl.assert_invariants();
        shifted.push(tpl.stats().shifted_bytes);
    }
    assert!(
        shifted[0] < shifted[1],
        "8K chunks must move fewer bytes than 32K: {shifted:?}"
    );
}

#[test]
fn string_growth_and_shrink() {
    let op = OpDesc::single("tag", "urn:x", "s", TypeDesc::Scalar(ScalarKind::Str));
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks());
    let mut tpl = MessageTemplate::build(config, &op, &[Value::Str("ab".into())]).unwrap();

    // Grow: strings have no max width; must shift by the exact delta.
    tpl.update_args(&[Value::Str("a much longer string value".into())])
        .unwrap();
    let r = tpl.flush();
    assert_eq!(r.shifts + r.steals, 1);
    assert!(String::from_utf8(tpl.to_bytes())
        .unwrap()
        .contains(">a much longer string value</s>"));

    // Shrink: closing tag moves left, pad appears.
    tpl.update_args(&[Value::Str("xy".into())]).unwrap();
    tpl.flush();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(">xy</s>"));
    tpl.assert_invariants();

    // Escaped content round-trips.
    tpl.update_args(&[Value::Str("a<b&c".into())]).unwrap();
    tpl.flush();
    assert!(String::from_utf8(tpl.to_bytes())
        .unwrap()
        .contains(">a&lt;b&amp;c</s>"));
    tpl.assert_invariants();
}

#[test]
fn intermediate_stuffing_absorbs_moderate_growth() {
    // Fig 8/9 shape: fields stuffed to 18 chars absorb values up to 18
    // chars without shifting; 24-char values force shifting.
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(small_chunks())
        .with_width(WidthPolicy::Fixed {
            double: 18,
            int: 11,
            long: 20,
        })
        .with_steal(false);
    let mut tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0; 50])])
            .unwrap();

    // 17-char values: fit within the 18-char stuffed width.
    let mid = 1.234567890123456; // "1.234567890123456" = 17 chars
    assert_eq!(bsoap_convert::format_f64(mid).len(), 17);
    tpl.update_args(&[Value::DoubleArray(vec![mid; 50])])
        .unwrap();
    let r = tpl.flush();
    assert_eq!(r.shifts, 0, "within stuffed width");

    // 24-char values: must shift.
    let wide = -2.2250738585072014e-308;
    tpl.update_args(&[Value::DoubleArray(vec![wide; 50])])
        .unwrap();
    let r = tpl.flush();
    assert_eq!(r.shifts, 50);
    tpl.assert_invariants();
}
