//! Template construction and tier-selection behavior.

use bsoap_chunks::ChunkConfig;
use bsoap_convert::ScalarKind;
use bsoap_core::{
    value::mio, Client, EngineConfig, MessageTemplate, OpDesc, SendTier, TypeDesc, Value,
    WidthPolicy,
};
use bsoap_xml::{Event, PullParser};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "sendDoubles",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn ints_op() -> OpDesc {
    OpDesc::single(
        "sendInts",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
    )
}

fn mios_op() -> OpDesc {
    OpDesc::single(
        "sendMios",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::mio()),
    )
}

fn mio_array(n: usize) -> Value {
    Value::Array(
        (0..n)
            .map(|i| mio(i as i32, (i * 2) as i32, i as f64 + 0.5))
            .collect(),
    )
}

/// Parse a message and return (element name count map hits, text leaves).
fn well_formed(bytes: &[u8]) -> usize {
    let mut p = PullParser::new(bytes);
    let mut items = 0;
    loop {
        match p.next_event().expect("well-formed template output") {
            Event::Eof => break,
            Event::Start { name, .. } if p.input()[name.clone()].ends_with(b"item") => {
                items += 1;
            }
            _ => {}
        }
    }
    items
}

#[test]
fn build_produces_well_formed_soap() {
    let op = doubles_op();
    let tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.5, 2.5, 3.5])],
    )
    .unwrap();
    let bytes = tpl.to_bytes();
    let text = String::from_utf8(bytes.clone()).unwrap();
    assert!(text.starts_with("<?xml"));
    assert!(text.contains("<SOAP-ENV:Envelope"));
    assert!(text.contains("<ns1:sendDoubles>"));
    assert!(text.contains("SOAP-ENC:arrayType=\"xsd:double[3"));
    assert!(text.contains(">1.5</item>"));
    assert_eq!(well_formed(&bytes), 3);
    tpl.assert_invariants();
}

#[test]
fn mio_build_structure() {
    let tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &mios_op(),
        &[mio_array(2)],
    )
    .unwrap();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains("arrayType=\"ns1:mio[2"), "{text}");
    assert!(text.contains("<item xsi:type=\"ns1:mio\">"));
    assert!(text.contains("<x xsi:type=\"xsd:int\">0</x>"));
    assert!(text.contains("<value xsi:type=\"xsd:double\">0.5</value>"));
    // 1 length leaf + 2 elements × 3 leaves
    assert_eq!(tpl.leaf_count(), 7);
    tpl.assert_invariants();
}

#[test]
fn content_match_resends_identical_bytes() {
    let op = doubles_op();
    let args = [Value::DoubleArray(vec![1.0, 2.0, 3.0])];
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &args,
    )
    .unwrap();
    let first = tpl.to_bytes();

    // No updates → content match.
    assert_eq!(tpl.pending_tier(), SendTier::ContentMatch);
    let mut sink = Vec::new();
    let report = tpl.send(&mut sink).unwrap();
    assert_eq!(report.tier, SendTier::ContentMatch);
    assert_eq!(report.values_written, 0);
    assert_eq!(sink, first);

    // update_args with identical values is still a content match.
    let tier = tpl.update_args(&args).unwrap();
    assert_eq!(tier, SendTier::ContentMatch);
}

#[test]
fn perfect_structural_match_rewrites_only_dirty() {
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.0, 2.0, 3.0, 4.0])],
    )
    .unwrap();

    let tier = tpl
        .update_args(&[Value::DoubleArray(vec![1.0, 9.0, 3.0, 8.0])])
        .unwrap();
    assert_eq!(tier, SendTier::PerfectStructural);
    assert_eq!(tpl.dirty_count(), 2, "only two values changed");

    let report = tpl.flush();
    assert_eq!(report.tier, SendTier::PerfectStructural);
    assert_eq!(report.values_written, 2);
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(">9</item>"));
    assert!(text.contains(">8</item>"));
    assert!(text.contains(">1</item>"));
    tpl.assert_invariants();
}

#[test]
fn same_length_update_touches_value_only() {
    // 2.5 → 7.5: identical serialized length → value bytes overwritten,
    // closing tag untouched (the cheapest dirty path).
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![2.5])],
    )
    .unwrap();
    let before = tpl.to_bytes();
    tpl.update_args(&[Value::DoubleArray(vec![7.5])]).unwrap();
    tpl.flush();
    let after = tpl.to_bytes();
    assert_eq!(before.len(), after.len());
    let diffs: Vec<usize> = before
        .iter()
        .zip(&after)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(diffs.len(), 1, "exactly the changed digit differs");
}

#[test]
fn leaf_accessors_and_errors() {
    let op = mios_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[mio_array(3)],
    )
    .unwrap();
    // leaf 0 is the internal array-length field: rejected.
    assert!(tpl.set_int(0, 5).is_err());
    // element 1 field 2 (the double) via the indexing helper.
    let leaf = tpl.array_leaf(0, 1, 2);
    tpl.set_double(leaf, 42.25).unwrap();
    assert_eq!(tpl.dirty_count(), 1);
    // Kind mismatch: the x field is an int.
    let xleaf = tpl.array_leaf(0, 1, 0);
    assert!(tpl.set_double(xleaf, 1.0).is_err());
    // Out of range.
    assert!(tpl.set_double(10_000, 1.0).is_err());
    tpl.flush();
    assert!(String::from_utf8(tpl.to_bytes())
        .unwrap()
        .contains(">42.25</value>"));
}

#[test]
fn multi_param_messages() {
    let op = OpDesc::new(
        "store",
        "urn:cat",
        vec![
            bsoap_core::ParamDesc {
                name: "id".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            bsoap_core::ParamDesc {
                name: "values".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            bsoap_core::ParamDesc {
                name: "tag".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    );
    let args = [
        Value::Int(7),
        Value::DoubleArray(vec![1.0, 2.0]),
        Value::Str("alpha".into()),
    ];
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &args,
    )
    .unwrap();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains("<id xsi:type=\"xsd:int\">7</id>"));
    assert!(text.contains("<tag xsi:type=\"xsd:string\">alpha</tag>"));

    // Update the scalar after the array.
    let tier = tpl
        .update_args(&[
            Value::Int(7),
            Value::DoubleArray(vec![1.0, 2.0]),
            Value::Str("beta!".into()),
        ])
        .unwrap();
    assert_eq!(tier, SendTier::PerfectStructural);
    tpl.flush();
    assert!(String::from_utf8(tpl.to_bytes())
        .unwrap()
        .contains(">beta!</tag>"));
    tpl.assert_invariants();
}

#[test]
fn client_tier_progression() {
    let op = ints_op();
    let mut client = Client::with_defaults();
    let mut sink = Vec::new();

    let r1 = client
        .call(
            "http://svc/a",
            &op,
            &[Value::IntArray(vec![1, 2, 3])],
            &mut sink,
        )
        .unwrap();
    assert_eq!(r1.tier, SendTier::FirstTime);

    let r2 = client
        .call(
            "http://svc/a",
            &op,
            &[Value::IntArray(vec![1, 2, 3])],
            &mut sink,
        )
        .unwrap();
    assert_eq!(r2.tier, SendTier::ContentMatch);

    let r3 = client
        .call(
            "http://svc/a",
            &op,
            &[Value::IntArray(vec![1, 9, 3])],
            &mut sink,
        )
        .unwrap();
    assert_eq!(r3.tier, SendTier::PerfectStructural);

    let r4 = client
        .call(
            "http://svc/a",
            &op,
            &[Value::IntArray(vec![1, 9, 3, 4])],
            &mut sink,
        )
        .unwrap();
    assert_eq!(r4.tier, SendTier::PartialStructural);

    // A different endpoint gets its own template (first-time again).
    let r5 = client
        .call(
            "http://svc/b",
            &op,
            &[Value::IntArray(vec![1, 2, 3])],
            &mut sink,
        )
        .unwrap();
    assert_eq!(r5.tier, SendTier::FirstTime);

    let stats = client.stats();
    assert_eq!(stats.first_time, 2);
    assert_eq!(stats.content_match, 1);
    assert_eq!(stats.perfect_structural, 1);
    assert_eq!(stats.partial_structural, 1);
    assert_eq!(stats.calls(), 5);
}

#[test]
fn stuffed_max_widths_pad_with_whitespace() {
    let op = doubles_op();
    let tpl = MessageTemplate::build(
        EngineConfig::stuffed_max().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.0])],
    )
    .unwrap();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    // Field width 24 for a 1-char value → 23 pad spaces after </item>.
    assert!(
        text.contains(&format!(">1</item>{}", " ".repeat(23))),
        "{text}"
    );
    tpl.assert_invariants();
}

#[test]
fn small_chunks_split_large_messages() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_chunk(ChunkConfig {
            initial_size: 256,
            split_threshold: 512,
            reserve: 32,
        });
    let tpl = MessageTemplate::build(
        config,
        &doubles_op(),
        &[Value::DoubleArray(
            (0..100).map(|i| i as f64 * 1.125).collect(),
        )],
    )
    .unwrap();
    assert!(
        tpl.chunk_count() > 4,
        "message must span chunks: {}",
        tpl.chunk_count()
    );
    assert_eq!(well_formed(&tpl.to_bytes()), 100);
    tpl.assert_invariants();
}

#[test]
fn rejected_shapes() {
    // Arrays of arrays.
    let bad = OpDesc::single(
        "f",
        "urn:x",
        "a",
        TypeDesc::array_of(TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int))),
    );
    assert!(MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &bad,
        &[Value::Array(vec![])]
    )
    .is_err());

    // Array inside a struct.
    let bad2 = OpDesc::single(
        "f",
        "urn:x",
        "s",
        TypeDesc::Struct {
            name: "holder".into(),
            fields: vec![(
                "inner".into(),
                TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            )],
        },
    );
    assert!(MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &bad2,
        &[Value::Struct(vec![Value::IntArray(vec![])])]
    )
    .is_err());
}

#[test]
fn nested_structs_supported() {
    let inner = TypeDesc::Struct {
        name: "pt".into(),
        fields: vec![
            ("x".into(), TypeDesc::Scalar(ScalarKind::Double)),
            ("y".into(), TypeDesc::Scalar(ScalarKind::Double)),
        ],
    };
    let outer = TypeDesc::Struct {
        name: "seg".into(),
        fields: vec![("a".into(), inner.clone()), ("b".into(), inner)],
    };
    let op = OpDesc::single("draw", "urn:x", "seg", outer);
    let point = |x: f64, y: f64| Value::Struct(vec![Value::Double(x), Value::Double(y)]);
    let args = [Value::Struct(vec![point(0.0, 1.0), point(2.0, 3.0)])];
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &args,
    )
    .unwrap();
    assert_eq!(tpl.leaf_count(), 4);
    let t2 = [Value::Struct(vec![point(0.0, 1.0), point(2.0, 99.5)])];
    assert_eq!(tpl.update_args(&t2).unwrap(), SendTier::PerfectStructural);
    tpl.flush();
    assert!(String::from_utf8(tpl.to_bytes())
        .unwrap()
        .contains(">99.5</y>"));
    tpl.assert_invariants();
}

#[test]
fn bool_and_long_leaves() {
    let op = OpDesc::new(
        "flags",
        "urn:x",
        vec![
            bsoap_core::ParamDesc {
                name: "on".into(),
                desc: TypeDesc::Scalar(ScalarKind::Bool),
            },
            bsoap_core::ParamDesc {
                name: "big".into(),
                desc: TypeDesc::Scalar(ScalarKind::Long),
            },
        ],
    );
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap_core::WireFormat::SoapXml),
        &op,
        &[Value::Bool(true), Value::Long(1 << 40)],
    )
    .unwrap();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(">true</on>"));
    assert!(text.contains(">1099511627776</big>"));
    tpl.update_args(&[Value::Bool(false), Value::Long(-1)])
        .unwrap();
    tpl.flush();
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(">false</on>"));
    assert!(text.contains(">-1</big>"));
    tpl.assert_invariants();
}

#[test]
fn width_policy_intermediate() {
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap_core::WireFormat::SoapXml)
        .with_width(WidthPolicy::Fixed {
            double: 18,
            int: 6,
            long: 20,
        });
    let tpl =
        MessageTemplate::build(config, &doubles_op(), &[Value::DoubleArray(vec![1.0])]).unwrap();
    // 1-char value stuffed to 18 → 17 pad spaces.
    let text = String::from_utf8(tpl.to_bytes()).unwrap();
    assert!(text.contains(&format!(">1</item>{}", " ".repeat(17))));
}
