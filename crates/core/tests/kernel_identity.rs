//! Byte-kernel differential harness: every kernel (escape scan, stuffed
//! itoa, wide gap shift, wide pad) must produce byte-identical messages
//! and identical engine-counter deltas under `KernelPolicy::Scalar` and
//! `KernelPolicy::ForcedSimd` — the scalar path is the oracle, SIMD is
//! only ever an acceleration (DESIGN.md §3.11).
//!
//! `SimdKernelHits` is the one counter allowed to differ: it *measures*
//! which path ran (and is scooped from a process-global tally, so
//! concurrent tests bleed into it); every comparison masks it.

use bsoap_chunks::ChunkConfig;
use bsoap_convert::ScalarKind;
use bsoap_core::{EngineConfig, KernelPolicy, MessageTemplate, OpDesc, ParamDesc, TypeDesc, Value};
use bsoap_obs::{Counter, Metrics};
use proptest::prelude::*;
use std::sync::Arc;

/// One op with every kernel-relevant leaf kind: an int array (stuffed
/// itoa + shifting when values grow), a string (escape scanning), and a
/// double array (pad fills on in-width rewrites).
fn mixed_op() -> OpDesc {
    OpDesc::new(
        "bench",
        "urn:kern",
        vec![
            ParamDesc {
                name: "ints".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            },
            ParamDesc {
                name: "note".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
            ParamDesc {
                name: "vals".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
        ],
    )
}

fn small_chunks() -> ChunkConfig {
    // Small enough that growing values force coalesced shift passes (the
    // gap-shift kernel), including splits.
    ChunkConfig {
        initial_size: 512,
        split_threshold: 1024,
        reserve: 64,
    }
}

type Args = (Vec<i32>, String, Vec<f64>);

fn to_values(args: &Args) -> [Value; 3] {
    [
        Value::IntArray(args.0.clone()),
        Value::Str(args.1.clone()),
        Value::DoubleArray(args.2.clone()),
    ]
}

/// Drive one engine end to end under `kernel`: build, then apply every
/// update with a flush. Returns the wire bytes after each step and the
/// final counter snapshot (indexed by `Counter::ALL`, SimdKernelHits
/// masked to 0).
fn run_engine(kernel: KernelPolicy, first: &Args, updates: &[Args]) -> (Vec<Vec<u8>>, Vec<u64>) {
    let metrics = Arc::new(Metrics::new());
    let config = EngineConfig::paper_default()
        .with_chunk(small_chunks())
        .with_kernel(kernel);
    let mut tpl =
        MessageTemplate::build(config, &mixed_op(), &to_values(first)).expect("build succeeds");
    tpl.set_metrics(Arc::clone(&metrics));
    let mut outs = vec![tpl.to_bytes()];
    for args in updates {
        tpl.update_args(&to_values(args)).expect("same structure");
        tpl.flush();
        tpl.assert_invariants();
        outs.push(tpl.to_bytes());
    }
    let snap = metrics.snapshot();
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            if c == Counter::SimdKernelHits {
                0
            } else {
                snap.get(c)
            }
        })
        .collect();
    (outs, counters)
}

/// Strings engineered to place a multi-byte UTF-8 character (or a special)
/// exactly straddling the SIMD block boundaries: a prefix of 13–18
/// one-byte chars, then a 2/3/4-byte character or escapable byte, then an
/// arbitrary tail. Offsets 15/16/17 are always among the cases proptest
/// explores (prefix 13..=18 × multi-byte char widths).
fn straddle_string() -> impl Strategy<Value = String> {
    (
        13usize..=18,
        prop_oneof![
            Just("α"),
            Just("é"),
            Just("😀"),
            Just("&"),
            Just("<"),
            Just("\r"),
        ],
        proptest::collection::vec(
            prop_oneof![
                proptest::char::range(' ', '~'),
                Just('α'),
                Just('<'),
                Just('&'),
                Just('\r'),
                Just('😀'),
            ],
            0..24,
        ),
    )
        .prop_map(|(k, mid, tail)| {
            let mut s = "x".repeat(k);
            s.push_str(mid);
            s.extend(tail);
            s
        })
}

fn args_strategy() -> impl Strategy<Value = Args> {
    (
        proptest::collection::vec(any::<i32>(), 1..24),
        straddle_string(),
        proptest::collection::vec(-1.0e3f64..1.0e3, 1..12),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: a full engine lifetime — first-time build,
    /// then several differential sends exercising overwrites, in-width
    /// rewrites, steals, coalesced shifts and splits — emits identical
    /// bytes and identical counters under both kernel policies.
    #[test]
    fn engine_is_kernel_invariant(
        first in args_strategy(),
        updates in proptest::collection::vec(args_strategy(), 1..4),
    ) {
        let (bytes_s, counters_s) = run_engine(KernelPolicy::Scalar, &first, &updates);
        let (bytes_f, counters_f) = run_engine(KernelPolicy::ForcedSimd, &first, &updates);
        prop_assert_eq!(bytes_s, bytes_f, "wire bytes diverged between kernels");
        prop_assert_eq!(counters_s, counters_f, "counter deltas diverged between kernels");
    }
}

/// Worst-case expansion (every int grows from 1 char to 11 chars) must be
/// kernel-invariant too — this is the path where the wide gap shifter and
/// the batched DUT fixup do real work.
#[test]
fn expansion_storm_is_kernel_invariant() {
    let n = 120;
    let first: Args = (vec![1; n], "short".into(), vec![1.0; 8]);
    let updates: Vec<Args> = vec![
        (
            vec![i32::MIN; n],
            "a much longer string crossing blocks α".into(),
            vec![-2.2250738585072014e-308; 8],
        ),
        (vec![7; n], "tiny\r".into(), vec![2.5; 8]),
    ];
    let (bytes_s, counters_s) = run_engine(KernelPolicy::Scalar, &first, &updates);
    let (bytes_f, counters_f) = run_engine(KernelPolicy::ForcedSimd, &first, &updates);
    assert_eq!(bytes_s, bytes_f);
    assert_eq!(counters_s, counters_f);
    // The storm actually exercised the shift kernel.
    let shifts = counters_s[Counter::Shifts.index()];
    assert!(shifts > 0, "expected shifts, got none");
}

/// Satellite pin: a flush whose dirty values all fit their fields must not
/// bump `CoalescedShiftPasses` (no gaps → no pass), and `ForcedSimd` does
/// record kernel hits while `Scalar` records none of its own.
#[test]
fn no_gaps_means_no_coalesced_pass() {
    let first: Args = (vec![99999; 6], "steady".into(), vec![1.5; 4]);
    // Same digit counts → in-width overwrites only.
    let updates: Vec<Args> = vec![(vec![88888; 6], "stable".into(), vec![2.5; 4])];
    for kernel in [KernelPolicy::Scalar, KernelPolicy::ForcedSimd] {
        let metrics = Arc::new(Metrics::new());
        let config = EngineConfig::paper_default()
            .with_chunk(small_chunks())
            .with_kernel(kernel);
        let mut tpl = MessageTemplate::build(config, &mixed_op(), &to_values(&first)).unwrap();
        tpl.set_metrics(Arc::clone(&metrics));
        tpl.update_args(&to_values(&updates[0])).unwrap();
        let report = tpl.flush();
        assert_eq!(report.shifts, 0, "{kernel:?}: no value should shift");
        let snap = metrics.snapshot();
        assert_eq!(
            snap.get(Counter::CoalescedShiftPasses),
            0,
            "{kernel:?}: empty gap sets must not count a coalesced pass"
        );
        assert_eq!(snap.get(Counter::Shifts), 0);
    }
}
