//! The §6 ("Future Work") extensions: multi-template sets and
//! cross-endpoint template sharing.

use bsoap_convert::ScalarKind;
use bsoap_core::{Client, EngineConfig, OpDesc, SendTier, TypeDesc, Value};
use std::io::sink;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn xs(n: usize) -> Vec<Value> {
    vec![Value::DoubleArray((0..n).map(|i| i as f64 + 0.5).collect())]
}

#[test]
fn single_template_resizes_on_alternating_shapes() {
    // Base behaviour: one template per key, so A/B/A/B lengths resize
    // every call after the first two.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut out = sink();
    client.call("ep", &op, &xs(10), &mut out).unwrap();
    let tiers: Vec<SendTier> = (0..4)
        .map(|i| {
            let n = if i % 2 == 0 { 100 } else { 10 };
            client.call("ep", &op, &xs(n), &mut out).unwrap().tier
        })
        .collect();
    assert!(
        tiers.iter().all(|&t| t == SendTier::PartialStructural),
        "every alternating call resizes: {tiers:?}"
    );
}

#[test]
fn multi_template_set_eliminates_resizes() {
    // §6: "store multiple different message templates for the same remote
    // service". With two slots, the A and B shapes each get their own
    // template and every later call is a content/perfect match.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_templates_per_key(2);
    let mut out = sink();

    let a = xs(10);
    let b = xs(100);
    assert_eq!(
        client.call("ep", &op, &a, &mut out).unwrap().tier,
        SendTier::FirstTime
    );
    assert_eq!(
        client.call("ep", &op, &b, &mut out).unwrap().tier,
        SendTier::FirstTime
    );
    for _ in 0..3 {
        assert_eq!(
            client.call("ep", &op, &a, &mut out).unwrap().tier,
            SendTier::ContentMatch
        );
        assert_eq!(
            client.call("ep", &op, &b, &mut out).unwrap().tier,
            SendTier::ContentMatch
        );
    }
    assert_eq!(client.template_count(), 2);
}

#[test]
fn multi_template_set_builds_variants_until_cap() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_templates_per_key(3);
    let mut out = sink();

    // Three distinct shapes each get their own template…
    for n in [1usize, 50, 2000] {
        assert_eq!(
            client.call("ep", &op, &xs(n), &mut out).unwrap().tier,
            SendTier::FirstTime
        );
    }
    assert_eq!(client.template_count(), 3);
    // …and all three now serve content matches.
    for n in [1usize, 50, 2000] {
        assert_eq!(
            client.call("ep", &op, &xs(n), &mut out).unwrap().tier,
            SendTier::ContentMatch
        );
    }
    // A fourth shape cannot add a template (cap reached): it resizes the
    // nearest variant (n=1 → n=3) in place.
    let r = client.call("ep", &op, &xs(3), &mut out).unwrap();
    assert_eq!(r.tier, SendTier::PartialStructural);
    assert_eq!(client.template_count(), 3);
}

#[test]
fn multi_template_full_set_resizes_nearest() {
    // Once the set is at capacity, unmatched shapes resize the closest
    // variant instead of building a third template.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_templates_per_key(2);
    let mut out = sink();
    client.call("ep", &op, &xs(10), &mut out).unwrap();
    client.call("ep", &op, &xs(1000), &mut out).unwrap();
    let r = client.call("ep", &op, &xs(12), &mut out).unwrap();
    assert_eq!(r.tier, SendTier::PartialStructural);
    assert_eq!(client.template_count(), 2, "cap respected");
    // The resized variant (now n=12) serves n=12 directly.
    assert_eq!(
        client.call("ep", &op, &xs(12), &mut out).unwrap().tier,
        SendTier::ContentMatch
    );
    // And the n=1000 variant is still intact.
    assert_eq!(
        client.call("ep", &op, &xs(1000), &mut out).unwrap().tier,
        SendTier::ContentMatch
    );
}

#[test]
fn endpoint_sharing_skips_full_serialization() {
    // §6: "applications that send the same (or similar) data to different
    // remote services". With sharing on, the first call to endpoint B
    // clones A's template; identical args make it a content match.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_endpoint_sharing(true);
    let mut out = sink();

    let args = xs(500);
    assert_eq!(
        client.call("http://a", &op, &args, &mut out).unwrap().tier,
        SendTier::FirstTime
    );
    let r = client.call("http://b", &op, &args, &mut out).unwrap();
    assert_eq!(
        r.tier,
        SendTier::ContentMatch,
        "clone + diff of identical args"
    );
    assert_eq!(client.stats().shared_clones, 1);
    assert_eq!(
        client.stats().first_time,
        1,
        "endpoint B never fully serialized"
    );

    // Similar-but-not-identical data: clone + perfect structural match.
    let mut changed = args.clone();
    let Value::DoubleArray(v) = &mut changed[0] else {
        panic!()
    };
    v[7] = 9.5;
    let r = client.call("http://c", &op, &changed, &mut out).unwrap();
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1);
    assert_eq!(client.stats().shared_clones, 2);
}

#[test]
fn endpoint_sharing_respects_structure() {
    let op_d = doubles_op();
    let op_i = OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
    );
    let mut client = Client::with_defaults();
    client.set_endpoint_sharing(true);
    let mut out = sink();
    client.call("http://a", &op_d, &xs(5), &mut out).unwrap();
    // Different structure on a new endpoint: no shareable sibling.
    let r = client
        .call(
            "http://b",
            &op_i,
            &[Value::IntArray(vec![1, 2, 3])],
            &mut out,
        )
        .unwrap();
    assert_eq!(r.tier, SendTier::FirstTime);
    assert_eq!(client.stats().shared_clones, 0);
}

#[test]
fn sharing_clones_are_independent() {
    // Mutating endpoint B's cloned template must not disturb A's.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_endpoint_sharing(true);
    let mut out = sink();
    let args = xs(50);
    client.call("http://a", &op, &args, &mut out).unwrap();
    client.call("http://b", &op, &xs(80), &mut out).unwrap(); // clone + resize
                                                              // A's template is untouched: identical resend is a content match.
    assert_eq!(
        client.call("http://a", &op, &args, &mut out).unwrap().tier,
        SendTier::ContentMatch
    );
}

#[test]
fn sharing_and_multi_templates_compose() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    client.set_endpoint_sharing(true);
    client.set_templates_per_key(2);
    let mut out = sink();
    client.call("http://a", &op, &xs(10), &mut out).unwrap();
    client.call("http://a", &op, &xs(500), &mut out).unwrap();
    // New endpoint clones one of A's variants.
    let r = client.call("http://b", &op, &xs(10), &mut out).unwrap();
    assert_ne!(r.tier, SendTier::FirstTime);
    assert_eq!(client.stats().shared_clones, 1);
    let config = client.config();
    assert_eq!(config, EngineConfig::paper_default());
}
