//! Chunk overlaying (§3.3): stream a huge array through one reused chunk.
//!
//! "Chunk overlaying helps limit memory requirements by allowing multiple
//! portions of large arrays to be sent from the same message chunk. … At
//! any given time, the serialized data and the DUT table entries for only
//! one portion of the array is present in memory. That portion of the
//! array is sent, and then the values of the next portion are serialized
//! into the same chunk."
//!
//! The window's tags are written once (a window-sized template fragment);
//! each portion re-serializes only the *values* — so overlay throughput
//! matches the paper's "100% Value Re-serialization" series (Fig. 12)
//! while memory stays bounded by one chunk instead of the whole message.

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::schema::{OpDesc, TypeDesc};
use crate::sendv::write_all_vectored;
use crate::soap;
use crate::template::{MessageTemplate, SendTier};
use crate::value::Value;
use bsoap_obs::{Counter, Gauge, Metrics, Recorder};
use std::io::{IoSlice, Write};
use std::sync::Arc;

/// Outcome of one overlaid send.
#[derive(Clone, Copy, Debug)]
pub struct OverlayReport {
    /// Total bytes written to the sink.
    pub bytes: usize,
    /// Number of window portions streamed (prologue and epilogue excluded:
    /// this counts re-serializations of the window fragment).
    pub portions: usize,
    /// Leaf values serialized (≈ array leaves; tags are not rewritten for
    /// full windows after the first send).
    pub values_written: usize,
    /// Peak template memory: the window fragment's stored bytes.
    pub window_bytes: usize,
    /// DUT tier realized for the overlaid region: `FirstTime` when this
    /// send built the window fragment, `PerfectStructural` when every
    /// portion patched values into the cached fragment — the §3.3 promise
    /// that overlaying preserves differential-send semantics across sends.
    pub tier: SendTier,
}

/// Streaming sender for single-array operations using chunk overlaying.
#[derive(Debug)]
pub struct OverlaySender {
    config: EngineConfig,
    op: OpDesc,
    param_name: String,
    item_desc: TypeDesc,
    /// Elements per full window.
    window_elems: usize,
    /// Cached full-window fragment (tags written once, reused send after
    /// send).
    window: Option<MessageTemplate>,
    /// Cached tail fragment and its element count.
    tail: Option<(usize, MessageTemplate)>,
    prologue_scratch: Vec<u8>,
    metrics: Option<Arc<Metrics>>,
}

impl OverlaySender {
    /// Create an overlay sender for `op`, which must have exactly one
    /// array parameter. `window_elems` portions the array; use
    /// [`OverlaySender::auto_window`] to derive it from the chunk size.
    pub fn new(
        config: EngineConfig,
        op: &OpDesc,
        window_elems: usize,
    ) -> Result<Self, EngineError> {
        // The overlay windows address the XML text layout of the array
        // region; the fixed-slot binary lane (§3.15) has no equivalent
        // streaming path yet, so overlaid sends always ride XML — even
        // under a process-wide `BSOAP_WIRE_FORMAT=binary` default.
        let config = config.with_wire_format(crate::config::WireFormat::SoapXml);
        if op.params.len() != 1 {
            return Err(EngineError::StructureMismatch {
                why: "overlay requires a single-parameter operation".into(),
            });
        }
        let param = &op.params[0];
        let TypeDesc::Array { item } = &param.desc else {
            return Err(EngineError::StructureMismatch {
                why: "overlay requires an array parameter".into(),
            });
        };
        if window_elems == 0 {
            return Err(EngineError::StructureMismatch {
                why: "window must hold ≥ 1 element".into(),
            });
        }
        Ok(OverlaySender {
            config,
            op: op.clone(),
            param_name: param.name.clone(),
            item_desc: item.as_ref().clone(),
            window_elems,
            window: None,
            tail: None,
            prologue_scratch: Vec::with_capacity(512),
            metrics: None,
        })
    }

    /// Attach an observability registry: every send records
    /// `OverlayPortions`/`OverlayBytesStreamed` counters and observes the
    /// window fragment's size on the `OverlayWindowPeakBytes` gauge (the
    /// sender-side memory bound, flat in array size).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Create a sender whose window fills (but never exceeds) one chunk,
    /// assuming worst-case element widths.
    pub fn auto_window(config: EngineConfig, op: &OpDesc) -> Result<Self, EngineError> {
        let param = op
            .params
            .first()
            .ok_or_else(|| EngineError::StructureMismatch {
                why: "overlay requires a single-parameter operation".into(),
            })?;
        let TypeDesc::Array { item } = &param.desc else {
            return Err(EngineError::StructureMismatch {
                why: "overlay requires an array parameter".into(),
            });
        };
        let elem = max_element_bytes(item);
        let window = (config.chunk.fill_limit() / elem.max(1)).max(1);
        Self::new(config, op, window)
    }

    /// Elements per full window.
    pub fn window_elems(&self) -> usize {
        self.window_elems
    }

    /// Stream `value` (the array argument) to `sink` as one SOAP message.
    pub fn send(
        &mut self,
        value: &Value,
        sink: &mut impl Write,
    ) -> Result<OverlayReport, EngineError> {
        self.send_portions(value, |slices| {
            let mut w = &mut *sink;
            write_all_vectored(&mut w, slices)
        })
    }

    /// Stream `value` handing each serialized piece — prologue, every
    /// window portion, epilogue — to `portion` the moment it exists. This
    /// is the streaming engine mode: wired to a
    /// `ChunkedBodyWriter::write_portion`, each overlaid portion becomes
    /// one HTTP chunk on the wire and sender memory never exceeds the
    /// window fragment. `portion` returns the bytes it wrote (short
    /// writes are the callback's problem; the engine hands it whole
    /// portions).
    pub fn send_portions(
        &mut self,
        value: &Value,
        mut portion: impl FnMut(&[IoSlice<'_>]) -> std::io::Result<usize>,
    ) -> Result<OverlayReport, EngineError> {
        let n = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
            at: "overlay send".into(),
            expected: "array value",
            found: value.variant_name(),
        })?;
        let mut bytes = 0usize;
        let mut portions = 0usize;
        let mut values_written = 0usize;
        // FirstTime iff any fragment had to be built this send; a fully
        // patched send is PerfectStructural for the whole overlaid region.
        let mut built = false;

        // Prologue: everything up to and including the array open tag.
        {
            let p = &mut self.prologue_scratch;
            p.clear();
            p.extend_from_slice(soap::XML_DECL.as_bytes());
            p.extend_from_slice(soap::envelope_open(&self.op.namespace).as_bytes());
            p.extend_from_slice(soap::BODY_OPEN.as_bytes());
            p.extend_from_slice(soap::op_open(&self.op.name).as_bytes());
            let (prefix, suffix) =
                soap::array_open_parts(&self.param_name, &self.item_desc.xsi_type());
            p.extend_from_slice(prefix.as_bytes());
            let count = bsoap_convert::format_u64(n as u64);
            p.extend_from_slice(count.as_bytes());
            p.extend_from_slice(suffix.as_bytes());
            // The whole-template builder stuffs the length slot to the full
            // int width so resizes rewrite in place; mirror it so overlaid
            // bytes stay identical to the non-overlay serialization.
            for _ in count.len()..bsoap_convert::INT_MAX_WIDTH {
                p.push(b' ');
            }
            p.push(b'\n');
        }
        bytes += portion(&[IoSlice::new(&self.prologue_scratch)])?;

        let mut window_bytes = 0usize;
        let mut base = 0usize;
        while base < n {
            let size = self.window_elems.min(n - base);
            let fragment = if size == self.window_elems {
                if let Some(t) = self.window.as_mut() {
                    update_fragment(t, &self.item_desc, value, base, size)?;
                } else {
                    built = true;
                    self.window = Some(MessageTemplate::build_fragment(
                        self.config,
                        &self.item_desc,
                        value,
                        base,
                        base + size,
                    )?);
                }
                self.window.as_mut().expect("present")
            } else {
                // Tail portion: cached separately; rebuilt when the tail
                // size changes between sends.
                let reusable = matches!(&self.tail, Some((cached, _)) if *cached == size);
                if reusable {
                    let (_, t) = self.tail.as_mut().expect("checked above");
                    update_fragment(t, &self.item_desc, value, base, size)?;
                } else {
                    built = true;
                    let t = MessageTemplate::build_fragment(
                        self.config,
                        &self.item_desc,
                        value,
                        base,
                        base + size,
                    )?;
                    self.tail = Some((size, t));
                }
                &mut self.tail.as_mut().expect("present").1
            };
            let report = fragment.flush();
            values_written += report.values_written;
            let slices = fragment.io_slices();
            bytes += portion(&slices)?;
            window_bytes = window_bytes.max(fragment.message_len());
            portions += 1;
            base += size;
        }

        // Epilogue: close the array, operation, body, envelope.
        let mut epilogue = Vec::with_capacity(96);
        epilogue.extend_from_slice(soap::elem_close(&self.param_name).as_bytes());
        epilogue.push(b'\n');
        epilogue.extend_from_slice(soap::op_close(&self.op.name).as_bytes());
        epilogue.extend_from_slice(soap::CLOSES.as_bytes());
        bytes += portion(&[IoSlice::new(&epilogue)])?;

        let report = OverlayReport {
            bytes,
            portions,
            values_written,
            window_bytes,
            tier: if built {
                SendTier::FirstTime
            } else {
                SendTier::PerfectStructural
            },
        };
        if let Some(m) = &self.metrics {
            m.add(Counter::OverlayPortions, report.portions as u64);
            m.add(Counter::OverlayBytesStreamed, report.bytes as u64);
            m.gauge(Gauge::OverlayWindowPeakBytes, report.window_bytes as u64);
        }
        Ok(report)
    }

    /// Drop cached fragments (memory reclamation / poisoned-state reset).
    pub fn reset(&mut self) {
        self.window = None;
        self.tail = None;
    }
}

/// Overwrite the fragment's leaves with elements `[base, base+size)` of
/// `value` — the per-portion re-serialization step of §3.3.
fn update_fragment(
    t: &mut MessageTemplate,
    item_desc: &TypeDesc,
    value: &Value,
    base: usize,
    size: usize,
) -> Result<(), EngineError> {
    use crate::value::Scalar;
    match value {
        Value::DoubleArray(v) => {
            for i in 0..size {
                t.dut.set_value(i, Scalar::Double(v[base + i]));
            }
        }
        Value::IntArray(v) => {
            for i in 0..size {
                t.dut.set_value(i, Scalar::Int(v[base + i]));
            }
        }
        Value::Array(elems) => {
            let lpe = item_desc.leaves_per_instance();
            for i in 0..size {
                let leaf = i * lpe;
                t.diff_value_leaves(leaf, item_desc, &elems[base + i])?;
            }
        }
        other => {
            return Err(EngineError::TypeMismatch {
                at: "overlay window".into(),
                expected: "array value",
                found: other.variant_name(),
            })
        }
    }
    Ok(())
}

/// Worst-case serialized bytes of one array element (open run + per-leaf
/// max width + suffixes + close run) — used to size windows to a chunk.
pub fn max_element_bytes(item_desc: &TypeDesc) -> usize {
    fn leaf_max(desc: &TypeDesc, name: &str) -> usize {
        match desc {
            TypeDesc::Scalar(kind) => {
                soap::scalar_open(name, kind.xsi_type()).len()
                    + kind.max_width().unwrap_or(64)
                    + soap::elem_close(name).len()
            }
            TypeDesc::Struct { fields, .. } => {
                let open = format!("<{name} xsi:type=\"{}\">", desc.xsi_type()).len();
                let close = soap::elem_close(name).len();
                open + close + fields.iter().map(|(n, d)| leaf_max(d, n)).sum::<usize>()
            }
            TypeDesc::Array { .. } => 0,
        }
    }
    leaf_max(item_desc, soap::ITEM_NAME)
}
