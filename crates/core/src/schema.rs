//! Message schema: the structural description templates are keyed by.
//!
//! A [`TypeDesc`] plays the role the paper assigns to "a data structure
//! that contains information about the data item's type, including the
//! maximum size of its serialized form" (§3.1). An [`OpDesc`] describes one
//! remote operation — the WSDL-lite service description the client stub
//! works from.

use crate::error::EngineError;
use crate::value::Value;
use bsoap_convert::ScalarKind;

/// Structural type of a parameter or field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeDesc {
    /// A scalar leaf.
    Scalar(ScalarKind),
    /// A named struct with ordered `(field name, type)` pairs.
    Struct {
        /// XML element name used for instances.
        name: String,
        /// Ordered fields.
        fields: Vec<(String, TypeDesc)>,
    },
    /// A SOAP-encoded array; elements serialize as `<item>` children.
    Array {
        /// Element type.
        item: Box<TypeDesc>,
    },
}

impl TypeDesc {
    /// Array-of-scalar convenience.
    pub fn array_of(item: TypeDesc) -> TypeDesc {
        TypeDesc::Array {
            item: Box::new(item),
        }
    }

    /// The paper's mesh interface object: `[int, int, double]` (§4.1).
    pub fn mio() -> TypeDesc {
        TypeDesc::Struct {
            name: "mio".to_owned(),
            fields: vec![
                ("x".to_owned(), TypeDesc::Scalar(ScalarKind::Int)),
                ("y".to_owned(), TypeDesc::Scalar(ScalarKind::Int)),
                ("value".to_owned(), TypeDesc::Scalar(ScalarKind::Double)),
            ],
        }
    }

    /// Number of scalar leaves one instance of this type contributes.
    ///
    /// For arrays this is the per-*element* count (array length is dynamic).
    pub fn leaves_per_instance(&self) -> usize {
        match self {
            TypeDesc::Scalar(_) => 1,
            TypeDesc::Struct { fields, .. } => {
                fields.iter().map(|(_, t)| t.leaves_per_instance()).sum()
            }
            TypeDesc::Array { item } => item.leaves_per_instance(),
        }
    }

    /// The `xsi:type` / `SOAP-ENC:arrayType` element type string.
    pub fn xsi_type(&self) -> String {
        match self {
            TypeDesc::Scalar(k) => k.xsi_type().to_owned(),
            TypeDesc::Struct { name, .. } => format!("ns1:{name}"),
            TypeDesc::Array { item } => format!("{}[]", item.xsi_type()),
        }
    }

    /// Append a canonical structural signature to `out`.
    ///
    /// Two messages have "the same structure — that is, the same header and
    /// field types" (§3) iff their signatures are equal. Array lengths are
    /// *excluded*: a length change is a partial structural match, not a
    /// different structure.
    pub fn signature_into(&self, out: &mut String) {
        match self {
            TypeDesc::Scalar(k) => {
                out.push_str(match k {
                    ScalarKind::Int => "i",
                    ScalarKind::Long => "l",
                    ScalarKind::Double => "d",
                    ScalarKind::Bool => "b",
                    ScalarKind::Str => "s",
                });
            }
            TypeDesc::Struct { name, fields } => {
                out.push('{');
                out.push_str(name);
                out.push(':');
                for (fname, ftype) in fields {
                    out.push_str(fname);
                    out.push('=');
                    ftype.signature_into(out);
                    out.push(',');
                }
                out.push('}');
            }
            TypeDesc::Array { item } => {
                out.push('[');
                item.signature_into(out);
                out.push(']');
            }
        }
    }

    /// Check that `value` is an instance of this type.
    pub fn check(&self, value: &Value, at: &str) -> Result<(), EngineError> {
        let mismatch = |expected: &'static str| EngineError::TypeMismatch {
            at: at.to_owned(),
            expected,
            found: value.variant_name(),
        };
        match self {
            TypeDesc::Scalar(ScalarKind::Int) => match value {
                Value::Int(_) => Ok(()),
                _ => Err(mismatch("Int")),
            },
            TypeDesc::Scalar(ScalarKind::Long) => match value {
                Value::Long(_) => Ok(()),
                _ => Err(mismatch("Long")),
            },
            TypeDesc::Scalar(ScalarKind::Double) => match value {
                Value::Double(_) => Ok(()),
                _ => Err(mismatch("Double")),
            },
            TypeDesc::Scalar(ScalarKind::Bool) => match value {
                Value::Bool(_) => Ok(()),
                _ => Err(mismatch("Bool")),
            },
            TypeDesc::Scalar(ScalarKind::Str) => match value {
                Value::Str(_) => Ok(()),
                _ => Err(mismatch("Str")),
            },
            TypeDesc::Struct { fields, .. } => match value {
                Value::Struct(vals) => {
                    if vals.len() != fields.len() {
                        return Err(EngineError::StructureMismatch {
                            why: format!(
                                "{at}: struct has {} fields, value has {}",
                                fields.len(),
                                vals.len()
                            ),
                        });
                    }
                    for (i, ((fname, ftype), v)) in fields.iter().zip(vals).enumerate() {
                        ftype.check(v, &format!("{at}.{fname}[{i}]"))?;
                    }
                    Ok(())
                }
                _ => Err(mismatch("Struct")),
            },
            TypeDesc::Array { item } => match (value, item.as_ref()) {
                (Value::DoubleArray(_), TypeDesc::Scalar(ScalarKind::Double)) => Ok(()),
                (Value::IntArray(_), TypeDesc::Scalar(ScalarKind::Int)) => Ok(()),
                (Value::Array(elems), _) => {
                    for (i, e) in elems.iter().enumerate() {
                        item.check(e, &format!("{at}[{i}]"))?;
                    }
                    Ok(())
                }
                _ => Err(mismatch("Array")),
            },
        }
    }
}

/// One declared parameter of an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDesc {
    /// XML element name of the parameter.
    pub name: String,
    /// Its type.
    pub desc: TypeDesc,
}

/// A remote operation: the unit a template serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpDesc {
    /// Operation (RPC method) name; becomes the `ns1:` wrapper element.
    pub name: String,
    /// Target namespace URI advertised as `xmlns:ns1`.
    pub namespace: String,
    /// Ordered parameters.
    pub params: Vec<ParamDesc>,
}

impl OpDesc {
    /// Construct an operation description.
    pub fn new(name: &str, namespace: &str, params: Vec<ParamDesc>) -> Self {
        OpDesc {
            name: name.to_owned(),
            namespace: namespace.to_owned(),
            params,
        }
    }

    /// Single-parameter convenience used throughout the paper's benchmarks
    /// ("sending a single array containing 1 … 100K doubles", §4.1).
    pub fn single(name: &str, namespace: &str, param_name: &str, desc: TypeDesc) -> Self {
        OpDesc::new(
            name,
            namespace,
            vec![ParamDesc {
                name: param_name.to_owned(),
                desc,
            }],
        )
    }

    /// Canonical structural signature of the whole operation.
    pub fn signature(&self) -> String {
        let mut sig = String::with_capacity(64);
        sig.push_str(&self.name);
        sig.push('(');
        for p in &self.params {
            sig.push_str(&p.name);
            sig.push(':');
            p.desc.signature_into(&mut sig);
            sig.push(';');
        }
        sig.push(')');
        sig
    }

    /// Validate an argument list against the declared parameters.
    pub fn check_args(&self, args: &[Value]) -> Result<(), EngineError> {
        if args.len() != self.params.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.params.len(),
                found: args.len(),
            });
        }
        for (i, (p, a)) in self.params.iter().zip(args).enumerate() {
            p.desc.check(a, &format!("param {i} ({})", p.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::mio;

    #[test]
    fn leaves_per_instance() {
        assert_eq!(
            TypeDesc::Scalar(ScalarKind::Double).leaves_per_instance(),
            1
        );
        assert_eq!(TypeDesc::mio().leaves_per_instance(), 3);
        assert_eq!(TypeDesc::array_of(TypeDesc::mio()).leaves_per_instance(), 3);
    }

    #[test]
    fn signatures_distinguish_structure_not_length() {
        let op_a = OpDesc::single(
            "send",
            "urn:x",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let op_b = OpDesc::single(
            "send",
            "urn:x",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
        );
        assert_ne!(op_a.signature(), op_b.signature());
        // Same op, any array length → same signature (length is dynamic).
        assert_eq!(op_a.signature(), op_a.signature());
    }

    #[test]
    fn mio_signature_mentions_fields() {
        let sig =
            OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio())).signature();
        assert!(sig.contains("x=i"), "{sig}");
        assert!(sig.contains("value=d"), "{sig}");
    }

    #[test]
    fn xsi_types() {
        assert_eq!(
            TypeDesc::Scalar(ScalarKind::Double).xsi_type(),
            "xsd:double"
        );
        assert_eq!(TypeDesc::mio().xsi_type(), "ns1:mio");
        assert_eq!(
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)).xsi_type(),
            "xsd:int[]"
        );
    }

    #[test]
    fn check_accepts_matching_values() {
        let desc = TypeDesc::array_of(TypeDesc::mio());
        let val = Value::Array(vec![mio(1, 2, 3.0), mio(4, 5, 6.0)]);
        assert!(desc.check(&val, "root").is_ok());
    }

    #[test]
    fn check_rejects_mismatches() {
        let desc = TypeDesc::Scalar(ScalarKind::Double);
        assert!(desc.check(&Value::Int(1), "root").is_err());
        let arr = TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double));
        assert!(arr.check(&Value::IntArray(vec![1]), "root").is_err());
        let st = TypeDesc::mio();
        assert!(
            st.check(&Value::Struct(vec![Value::Int(1), Value::Int(2)]), "root")
                .is_err(),
            "wrong field count"
        );
    }

    #[test]
    fn arity_checking() {
        let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
        assert!(op.check_args(&[Value::Int(1)]).is_ok());
        assert!(op.check_args(&[]).is_err());
        assert!(op.check_args(&[Value::Int(1), Value::Int(2)]).is_err());
    }
}
