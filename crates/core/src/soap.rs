//! SOAP 1.1 envelope skeleton and tag construction.
//!
//! Templates always emit the same fixed prefixes and namespace
//! declarations, so these byte strings are build-time constants assembled
//! here. Tag text is written into templates exactly once (the entire point
//! of the technique: "the serialization … of the SOAP message metadata
//! (tags) can be avoided", §3).

use bsoap_xml::name::uris;

/// XML declaration line.
pub const XML_DECL: &str = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";

/// Build the `<SOAP-ENV:Envelope …>` open tag with the five standard
/// namespace declarations plus the operation namespace bound to `ns1`.
pub fn envelope_open(op_namespace: &str) -> String {
    format!(
        "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"{}\" xmlns:SOAP-ENC=\"{}\" \
         xmlns:xsi=\"{}\" xmlns:xsd=\"{}\" xmlns:ns1=\"{}\" \
         SOAP-ENV:encodingStyle=\"{}\">\n",
        uris::SOAP_ENV,
        uris::SOAP_ENC,
        uris::XSI,
        uris::XSD,
        op_namespace,
        uris::SOAP_ENC,
    )
}

/// `<SOAP-ENV:Body>` open tag.
pub const BODY_OPEN: &str = "<SOAP-ENV:Body>\n";
/// Envelope/body closing run.
pub const CLOSES: &str = "</SOAP-ENV:Body>\n</SOAP-ENV:Envelope>\n";

/// `<ns1:opname>` wrapper open tag.
pub fn op_open(op_name: &str) -> String {
    format!("<ns1:{op_name}>\n")
}

/// `</ns1:opname>` wrapper close tag.
pub fn op_close(op_name: &str) -> String {
    format!("</ns1:{op_name}>\n")
}

/// Open tag of a scalar leaf element with an `xsi:type` attribute:
/// `<name xsi:type="xsd:double">`.
pub fn scalar_open(name: &str, xsi_type: &str) -> String {
    format!("<{name} xsi:type=\"{xsi_type}\">")
}

/// Close tag `</name>`.
pub fn elem_close(name: &str) -> String {
    format!("</{name}>")
}

/// Open tag `<name>` without attributes (struct wrappers).
pub fn plain_open(name: &str) -> String {
    format!("<{name}>")
}

/// SOAP-encoded array open tag, split around the length so the length can
/// be a DUT-tracked field:
/// returns `(prefix, suffix)` with the message form
/// `{prefix}{N}{suffix}` =
/// `<name xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:double[N]">`.
pub fn array_open_parts(name: &str, item_xsi_type: &str) -> (String, &'static str) {
    (
        format!("<{name} xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"{item_xsi_type}["),
        "]\">",
    )
}

/// Element name used for SOAP-encoded array members.
pub const ITEM_NAME: &str = "item";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_open_declares_all_namespaces() {
        let e = envelope_open("urn:bench");
        for needle in [
            "SOAP-ENV",
            "SOAP-ENC",
            "xmlns:xsi",
            "xmlns:xsd",
            "urn:bench",
            "encodingStyle",
        ] {
            assert!(e.contains(needle), "missing {needle} in {e}");
        }
        assert!(e.starts_with("<SOAP-ENV:Envelope "));
        assert!(e.ends_with(">\n"));
    }

    #[test]
    fn tag_builders() {
        assert_eq!(op_open("sendDoubles"), "<ns1:sendDoubles>\n");
        assert_eq!(op_close("sendDoubles"), "</ns1:sendDoubles>\n");
        assert_eq!(
            scalar_open("item", "xsd:int"),
            "<item xsi:type=\"xsd:int\">"
        );
        assert_eq!(elem_close("item"), "</item>");
        assert_eq!(plain_open("mio"), "<mio>");
    }

    #[test]
    fn array_open_parts_compose() {
        let (prefix, suffix) = array_open_parts("arr", "xsd:double");
        let assembled = format!("{prefix}100{suffix}");
        assert_eq!(
            assembled,
            "<arr xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:double[100]\">"
        );
    }
}
