//! The compact binary wire framing (§ DESIGN 3.15).
//!
//! Layout of a binary envelope:
//!
//! ```text
//! "BSB1"                                  magic
//! [u16 LE op-name len][op-name bytes]     operation identity
//! [u8 param count]
//! per parameter, in schema order:
//!   scalar   [tag][fixed-width LE payload]
//!   struct   STRUCT_BEGIN fields... STRUCT_END
//!   array    ARRAY_BEGIN [int leaf = element count] elements... ARRAY_END
//! END
//! ```
//!
//! Every scalar leaf is one tagged record. Numeric payloads are
//! fixed-width little-endian — an int leaf is always exactly 5 bytes on
//! the wire no matter its value — so a differential rewrite of a numeric
//! leaf is always a same-length overwrite: no stuffing, no stealing, no
//! shifting. Strings are length-prefixed (`[TAG_STR][u32 LE len][bytes]`)
//! and may still shift on growth, exactly like XML strings.
//!
//! The DUT pad byte is the space (`0x20`), shared with the XML lane: when
//! a string leaf shrinks inside its allocated width the patch machinery
//! pads the region with spaces. No tag or marker byte is `0x20`, so a
//! decoder that skips pad bytes wherever a tag is expected is
//! unambiguous.

/// Magic prefix of every binary envelope.
pub const MAGIC: &[u8; 4] = b"BSB1";

/// Leaf tags (one per [`bsoap_convert::ScalarKind`]).
pub const TAG_INT: u8 = 0x01;
/// `i64`, 8-byte LE payload.
pub const TAG_LONG: u8 = 0x02;
/// `f64` bit pattern, 8-byte LE payload.
pub const TAG_DOUBLE: u8 = 0x03;
/// 1-byte payload, `0` or `1`.
pub const TAG_BOOL: u8 = 0x04;
/// `[u32 LE len][len bytes]` payload (unescaped UTF-8).
pub const TAG_STR: u8 = 0x05;

/// Structural markers.
pub const ARRAY_BEGIN: u8 = 0x06;
/// Closes an [`ARRAY_BEGIN`].
pub const ARRAY_END: u8 = 0x07;
/// Opens a struct (top-level param or array element).
pub const STRUCT_BEGIN: u8 = 0x08;
/// Closes a [`STRUCT_BEGIN`].
pub const STRUCT_END: u8 = 0x09;
/// Terminates the envelope.
pub const END: u8 = 0x0B;

/// The DUT pad byte (shared with the XML lane's stuffing whitespace).
/// Decoders skip any run of these wherever a tag byte is expected.
pub const PAD: u8 = b' ';

/// Serialized length of one leaf of `kind` holding `payload` bytes of
/// string data (ignored for numerics). Numeric leaves are fixed-width.
pub fn leaf_len(kind: bsoap_convert::ScalarKind, str_payload: usize) -> usize {
    match kind {
        bsoap_convert::ScalarKind::Int => 1 + 4,
        bsoap_convert::ScalarKind::Long => 1 + 8,
        bsoap_convert::ScalarKind::Double => 1 + 8,
        bsoap_convert::ScalarKind::Bool => 1 + 1,
        bsoap_convert::ScalarKind::Str => 1 + 4 + str_payload,
    }
}

/// Append the envelope prologue (magic, op name, param count).
pub fn write_prologue(out: &mut Vec<u8>, op_name: &str, params: usize) {
    out.extend_from_slice(MAGIC);
    let name = op_name.as_bytes();
    debug_assert!(name.len() <= u16::MAX as usize);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    debug_assert!(params <= u8::MAX as usize);
    out.push(params as u8);
}

/// Does `body` carry the binary magic? (Cheap format sniff used by
/// dispatchers when no `X-BSOAP-Format` header arrived.)
pub fn is_binary(body: &[u8]) -> bool {
    body.len() >= MAGIC.len() && &body[..MAGIC.len()] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;

    #[test]
    fn no_marker_collides_with_pad() {
        for b in [
            TAG_INT,
            TAG_LONG,
            TAG_DOUBLE,
            TAG_BOOL,
            TAG_STR,
            ARRAY_BEGIN,
            ARRAY_END,
            STRUCT_BEGIN,
            STRUCT_END,
            END,
        ] {
            assert_ne!(b, PAD, "pad-skip would be ambiguous");
        }
    }

    #[test]
    fn numeric_leaves_are_fixed_width() {
        assert_eq!(leaf_len(ScalarKind::Int, 0), 5);
        assert_eq!(leaf_len(ScalarKind::Long, 0), 9);
        assert_eq!(leaf_len(ScalarKind::Double, 0), 9);
        assert_eq!(leaf_len(ScalarKind::Bool, 0), 2);
        assert_eq!(leaf_len(ScalarKind::Str, 7), 12);
    }

    #[test]
    fn prologue_and_sniff() {
        let mut out = Vec::new();
        write_prologue(&mut out, "sum", 2);
        assert!(is_binary(&out));
        assert_eq!(&out[..4], MAGIC);
        assert_eq!(out[4..6], 3u16.to_le_bytes());
        assert_eq!(&out[6..9], b"sum");
        assert_eq!(out[9], 2);
        assert!(!is_binary(b"<?xml"));
        assert!(!is_binary(b"BS"));
    }
}
