//! Engine configuration: the paper's design-space knobs.

pub use bsoap_chunks::ChunkConfig;
pub use bsoap_convert::FloatFormatter;
use bsoap_convert::ScalarKind;
pub use bsoap_kernels::KernelPolicy;
use std::time::Duration;

/// Initial field-width policy — the *stuffing* knob (§3.2, §4.4).
///
/// The field width is the number of characters allocated to a value in the
/// template; it "must always match or exceed the serialized length" (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WidthPolicy {
    /// Allocate exactly the serialized length (no stuffing). Growth later
    /// requires stealing/shifting.
    Exact,
    /// Stuff every bounded field to its type's maximum width: "setting
    /// field widths to maximum values can help avoid shifting altogether,
    /// at the expense of larger messages" (§3.2).
    Max,
    /// Stuff to a fixed intermediate width per kind (clamped up to the
    /// actual serialized length when the value is already longer). The
    /// paper's §4.4 intermediate widths are 18 chars for doubles and
    /// implicitly 36 for whole MIOs.
    Fixed {
        /// Width for `xsd:double` fields.
        double: usize,
        /// Width for `xsd:int` fields.
        int: usize,
        /// Width for `xsd:long` fields.
        long: usize,
    },
}

impl WidthPolicy {
    /// Initial field width for a value of `kind` whose serialized form is
    /// `ser_len` bytes. Strings are unbounded and never stuffed.
    pub fn initial_width(self, kind: ScalarKind, ser_len: usize) -> usize {
        let target = match (self, kind) {
            (_, ScalarKind::Str) => ser_len,
            (WidthPolicy::Exact, _) => ser_len,
            (WidthPolicy::Max, k) => k.max_width().unwrap_or(ser_len),
            (WidthPolicy::Fixed { double, .. }, ScalarKind::Double) => double,
            (WidthPolicy::Fixed { int, .. }, ScalarKind::Int) => int,
            (WidthPolicy::Fixed { long, .. }, ScalarKind::Long) => long,
            (WidthPolicy::Fixed { .. }, ScalarKind::Bool) => bsoap_convert::BOOL_MAX_WIDTH,
        };
        target.max(ser_len)
    }
}

/// What width a field gets after an expansion forced it to shift (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrowthPolicy {
    /// Grow to exactly the new serialized length (minimal message size;
    /// the next growth shifts again).
    #[default]
    Exact,
    /// Grow straight to the type's maximum width so this field never
    /// shifts again.
    ToMax,
}

/// How `flush`/`send` apply dirty values and queued array resizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlushMode {
    /// Plan/execute split: compute a read-only [`crate::plan::SendPlan`]
    /// first, then apply it with one coalesced right-to-left shift pass per
    /// chunk and a single batched DUT fixup. Array resizes queue at
    /// `update_args` time and are applied by the executor, so a planning
    /// error leaves the template bytes untouched.
    #[default]
    Planned,
    /// The original interleaved path: each dirty field is patched in place
    /// as it is visited, shifting its chunk tail immediately when it grows.
    /// Kept as the differential-testing oracle and for A/B benchmarks.
    Legacy,
}

/// Which connection-handling core the hosted server runs (§ DESIGN 3.13).
///
/// Mirrors `bsoap-transport`'s `ServerCore` (this crate sits below the
/// transport in the crate graph, same precedent as `BreakerState`): the
/// server crate maps this knob onto the transport enum at spawn time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServerCore {
    /// Thread-per-connection bounded accept pool: one blocking worker
    /// drives each connection end to end.
    WorkerPool,
    /// Readiness-driven epoll loop: a few loop threads multiplex all
    /// connections as sans-io state machines, dispatching complete
    /// requests to a small CPU worker pool. Falls back to
    /// [`ServerCore::WorkerPool`] on platforms without epoll.
    EventLoop,
}

impl ServerCore {
    /// Parse a core name as accepted by the `BSOAP_SERVER_CORE`
    /// environment variable (case-insensitive, separators optional).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "worker_pool" | "workerpool" | "worker-pool" => Some(ServerCore::WorkerPool),
            "event_loop" | "eventloop" | "event-loop" => Some(ServerCore::EventLoop),
            _ => None,
        }
    }

    /// Process-wide default: `BSOAP_SERVER_CORE` when set to a valid core
    /// name, otherwise [`ServerCore::WorkerPool`]. Only
    /// [`EngineConfig::paper_default`] consults this — an explicitly built
    /// config is never overridden by the environment.
    pub fn default_from_env() -> Self {
        std::env::var("BSOAP_SERVER_CORE")
            .ok()
            .and_then(|v| Self::from_name(&v))
            .unwrap_or(ServerCore::WorkerPool)
    }
}

/// Which wire framing templates serialize into (§ DESIGN 3.15).
///
/// The DUT/tier machinery is format-agnostic — a template is bytes plus
/// tracked value locations — so the same engine can speak the paper's
/// SOAP XML or a Bebop-inspired compact binary framing. Binary leaves are
/// fixed-width little-endian (ints/longs/doubles/bools never change
/// serialized length), so `flush_dirty` degenerates to in-place
/// overwrites and the planner never emits shifts or steals for numeric
/// workloads: tier 3 collapses into tier 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The paper's SOAP 1.1 XML envelope (lexical values, stuffing,
    /// stealing, shifting — the full §3 machinery).
    SoapXml,
    /// Compact binary framing: magic + tagged fixed-width LE scalars,
    /// length-prefixed strings, count-prefixed arrays. Negotiated
    /// per-endpoint via `X-BSOAP-Accept`/`X-BSOAP-Format`.
    CompactBinary,
}

impl WireFormat {
    /// Parse a format name as accepted by the `BSOAP_WIRE_FORMAT`
    /// environment variable (case-insensitive, separators optional).
    /// `bin1` is the on-the-wire negotiation token and parses too.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "xml" | "soap_xml" | "soapxml" | "soap-xml" => Some(WireFormat::SoapXml),
            "binary" | "bin" | "bin1" | "compact_binary" | "compactbinary" | "compact-binary" => {
                Some(WireFormat::CompactBinary)
            }
            _ => None,
        }
    }

    /// The canonical on-the-wire token for this format, as carried in
    /// `X-BSOAP-Accept` / `X-BSOAP-Format` headers. Round-trips through
    /// [`WireFormat::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::SoapXml => "xml",
            WireFormat::CompactBinary => "bin1",
        }
    }

    /// Process-wide default: `BSOAP_WIRE_FORMAT` when set to a valid
    /// format name, otherwise [`WireFormat::SoapXml`]. Only
    /// [`EngineConfig::paper_default`] consults this — an explicitly built
    /// config is never overridden by the environment.
    pub fn default_from_env() -> Self {
        std::env::var("BSOAP_WIRE_FORMAT")
            .ok()
            .and_then(|v| Self::from_name(&v))
            .unwrap_or(WireFormat::SoapXml)
    }
}

/// Who owns saved templates (§ DESIGN 3.14).
///
/// The paper keeps one saved template per client stub; a server fleet
/// wants the inverse — one shared, budgeted store. Both live behind this
/// knob so the per-client path stays available as a differential oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreMode {
    /// Templates live in a sharded, byte-budgeted
    /// [`crate::store::TemplateStore`] keyed by `(tenant, endpoint, op)`.
    /// Clients without an injected store lazily create a private one, so
    /// single-client behaviour is unchanged while multi-client processes
    /// can share one store across cores.
    Shared,
    /// The paper's original ownership: each client keeps its own
    /// [`crate::TemplateCache`] with no byte budget. Kept as the
    /// differential oracle — wire bytes must match [`StoreMode::Shared`].
    PerClient,
}

impl StoreMode {
    /// Parse a mode name as accepted by the `BSOAP_STORE_MODE`
    /// environment variable (case-insensitive, separators optional).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "shared" => Some(StoreMode::Shared),
            "per_client" | "perclient" | "per-client" => Some(StoreMode::PerClient),
            _ => None,
        }
    }

    /// Process-wide default: `BSOAP_STORE_MODE` when set to a valid mode
    /// name, otherwise [`StoreMode::Shared`]. Only
    /// [`EngineConfig::paper_default`] consults this — an explicitly built
    /// config is never overridden by the environment.
    pub fn default_from_env() -> Self {
        std::env::var("BSOAP_STORE_MODE")
            .ok()
            .and_then(|v| Self::from_name(&v))
            .unwrap_or(StoreMode::Shared)
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Chunk store parameters (initial size / split threshold / reserve).
    pub chunk: ChunkConfig,
    /// Initial stuffing policy.
    pub width: WidthPolicy,
    /// Post-shift growth policy.
    pub growth: GrowthPolicy,
    /// Enable stealing slack from the right neighbor before shifting.
    pub steal: bool,
    /// `f64` → ASCII conversion kernel. Both settings produce identical
    /// bytes; [`FloatFormatter::Exact2004`] reproduces the paper's
    /// conversion cost model, [`FloatFormatter::Fast`] is the Grisu3
    /// fast path (see `bsoap-convert::grisu`).
    pub float: FloatFormatter,
    /// Worker threads for the dirty-field flush. `0` (and `1`) keep the
    /// sequential path; `≥ 2` rewrites in-width dirty values concurrently,
    /// sharded by chunk boundary, with byte-identical output.
    pub parallel_workers: usize,
    /// Client side: maximum idle keep-alive connections a per-endpoint
    /// connection pool retains (`bsoap-transport`'s `PoolConfig::max_idle`).
    pub pool_size: usize,
    /// Server side: worker threads handling connections in the bounded
    /// accept pool (`bsoap-transport`'s `PoolOptions::workers`), or CPU
    /// dispatcher threads when [`EngineConfig::server_core`] is
    /// [`ServerCore::EventLoop`].
    pub server_workers: usize,
    /// Server side: which connection-handling core hosts connections.
    /// Defaults from the `BSOAP_SERVER_CORE` environment variable (see
    /// [`ServerCore::default_from_env`]).
    pub server_core: ServerCore,
    /// Server side: event-loop threads multiplexing connection readiness
    /// when [`EngineConfig::server_core`] is [`ServerCore::EventLoop`].
    /// Ignored by the worker-pool core.
    pub event_loop_threads: usize,
    /// Server side: maximum simultaneously open connections the event-loop
    /// core accepts before parking the listener (excess connections queue
    /// in the kernel backlog rather than being refused). Ignored by the
    /// worker-pool core, whose bounded queue plays the same role.
    pub max_connections: usize,
    /// Which flush path applies dirty values (plan/execute vs. legacy
    /// in-place patching).
    pub flush_mode: FlushMode,
    /// Enable the §5 break-even gate: before patching a saved template the
    /// client compares the plan's estimated cost against a from-scratch
    /// rebuild estimate and falls back to the FirstTime path when patching
    /// would be dearer. Requires [`FlushMode::Planned`].
    pub cost_fallback: bool,
    /// Break-even multiplier for the cost gate: fall back when
    /// `plan.cost() > fallback_ratio × rebuild_estimate`. `1.0` switches at
    /// the model's break-even point; larger values keep differential sends
    /// longer, smaller values fall back sooner.
    pub fallback_ratio: f64,
    /// Per-call time budget covering pool checkout, connect, writev, and
    /// response read. `None` (the default) leaves every step unbounded —
    /// the paper's cooperative-receiver assumption. Expiry surfaces as
    /// [`crate::EngineError::DeadlineExceeded`] with the template intact.
    pub deadline: Option<Duration>,
    /// Transport retries per call beyond the first attempt (decorrelated
    /// jitter backoff between attempts). `0` keeps only the pool's free
    /// single retry on a reused-stale socket.
    pub max_retries: u32,
    /// Consecutive transport failures that trip the per-endpoint circuit
    /// breaker open. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before letting one half-open
    /// probe through.
    pub breaker_cooldown: Duration,
    /// Consecutive transport failures after which the client demotes the
    /// endpoint to degraded mode: stateless full-serialization sends, no
    /// template retained. `0` disables demotion.
    pub degrade_after: u32,
    /// Consecutive degraded-mode successes that promote the endpoint back
    /// to differential sends.
    pub recover_after: u32,
    /// Server side: maximum bytes of HTTP head (request line + headers)
    /// accepted before the connection is answered 400 and dropped.
    pub max_head_bytes: usize,
    /// Server side: maximum request body (`Content-Length` or summed
    /// chunks) accepted before the connection is answered 400 and dropped.
    pub max_body_bytes: usize,
    /// Which byte-kernel implementations the engine's hot loops use
    /// (escape scanning, stuffed integer encoding, coalesced gap
    /// shifting): `Auto` dispatches on runtime CPU detection, `Scalar`
    /// pins the portable oracle, `ForcedSimd` always takes the wide path.
    /// All settings produce byte-identical messages; the `BSOAP_KERNEL`
    /// environment variable overrides this knob process-wide.
    pub kernel: KernelPolicy,
    /// Chunk-overlay window size in array elements (§3.3): how many
    /// elements the reused window fragment holds per streamed portion.
    /// `0` (the default) derives a window that fills one chunk at
    /// worst-case element widths ([`crate::OverlaySender::auto_window`]).
    pub window_elems: usize,
    /// Estimated serialized size above which [`crate::Client::call_overlaid`]
    /// engages the streaming overlay path instead of a buffered send.
    /// Below it a single-array call falls through to the ordinary tiered
    /// template machinery (overlay framing costs more than it saves for
    /// small arrays). `0` streams every eligible call.
    pub overlay_threshold_bytes: usize,
    /// Who owns saved templates: the shared budgeted store or the paper's
    /// per-client cache (the differential oracle). Defaults from the
    /// `BSOAP_STORE_MODE` environment variable (see
    /// [`StoreMode::default_from_env`]).
    pub store_mode: StoreMode,
    /// Hard global byte budget for the shared template store (resident
    /// template bytes plus reserved overlay-window bytes). Admitting past
    /// it evicts the cheapest-to-rebuild templates first. `0` = unlimited.
    pub store_budget_bytes: usize,
    /// Per-tenant byte quota inside the shared store, so one hot tenant
    /// cannot evict everyone else. `0` = unlimited.
    pub tenant_quota_bytes: usize,
    /// Which wire framing templates serialize into: the paper's SOAP XML
    /// or the negotiated compact binary lane. Defaults from the
    /// `BSOAP_WIRE_FORMAT` environment variable (see
    /// [`WireFormat::default_from_env`]).
    pub wire_format: WireFormat,
}

impl EngineConfig {
    /// Paper-default configuration: 32 KiB chunks, exact widths, stealing
    /// on, the 2004-era exact conversion kernel, sequential flush. This is
    /// the operating point the figure reproductions pin.
    pub fn paper_default() -> Self {
        EngineConfig {
            chunk: ChunkConfig::k32(),
            width: WidthPolicy::Exact,
            growth: GrowthPolicy::Exact,
            steal: true,
            float: FloatFormatter::Exact2004,
            parallel_workers: 0,
            pool_size: 4,
            server_workers: 4,
            server_core: ServerCore::default_from_env(),
            event_loop_threads: 2,
            max_connections: 8192,
            flush_mode: FlushMode::Planned,
            cost_fallback: false,
            fallback_ratio: 1.0,
            deadline: None,
            max_retries: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_secs(1),
            degrade_after: 0,
            recover_after: 2,
            max_head_bytes: 1 << 20,
            max_body_bytes: 64 << 20,
            kernel: KernelPolicy::Auto,
            window_elems: 0,
            overlay_threshold_bytes: 1 << 20,
            store_mode: StoreMode::default_from_env(),
            store_budget_bytes: 0,
            tenant_quota_bytes: 0,
            wire_format: WireFormat::default_from_env(),
        }
    }

    /// Configuration with maximum stuffing (the shift-free operating point).
    pub fn stuffed_max() -> Self {
        EngineConfig {
            width: WidthPolicy::Max,
            ..Self::paper_default()
        }
    }

    /// Builder-style chunk override.
    pub fn with_chunk(mut self, chunk: ChunkConfig) -> Self {
        self.chunk = chunk;
        self
    }

    /// Builder-style width override.
    pub fn with_width(mut self, width: WidthPolicy) -> Self {
        self.width = width;
        self
    }

    /// Builder-style growth override.
    pub fn with_growth(mut self, growth: GrowthPolicy) -> Self {
        self.growth = growth;
        self
    }

    /// Builder-style steal toggle.
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Builder-style float-kernel override.
    pub fn with_float(mut self, float: FloatFormatter) -> Self {
        self.float = float;
        self
    }

    /// Builder-style flush-parallelism override.
    pub fn with_parallel_workers(mut self, workers: usize) -> Self {
        self.parallel_workers = workers;
        self
    }

    /// Builder-style client connection-pool size override.
    pub fn with_pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = pool_size;
        self
    }

    /// Builder-style server worker-count override.
    pub fn with_server_workers(mut self, workers: usize) -> Self {
        self.server_workers = workers;
        self
    }

    /// Builder-style server-core override.
    pub fn with_server_core(mut self, core: ServerCore) -> Self {
        self.server_core = core;
        self
    }

    /// Builder-style event-loop core selection: switches the server core
    /// to [`ServerCore::EventLoop`] with `threads` loop threads.
    pub fn with_event_loop(mut self, threads: usize) -> Self {
        self.server_core = ServerCore::EventLoop;
        self.event_loop_threads = threads.max(1);
        self
    }

    /// Builder-style open-connection cap for the event-loop core.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Builder-style flush-mode override.
    pub fn with_flush_mode(mut self, mode: FlushMode) -> Self {
        self.flush_mode = mode;
        self
    }

    /// Builder-style byte-kernel policy override.
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style cost-gate toggle.
    pub fn with_cost_fallback(mut self, on: bool) -> Self {
        self.cost_fallback = on;
        self
    }

    /// Builder-style break-even ratio override.
    pub fn with_fallback_ratio(mut self, ratio: f64) -> Self {
        self.fallback_ratio = ratio;
        self
    }

    /// Builder-style per-call deadline budget (`None` = unbounded).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builder-style transport retry cap.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Builder-style circuit-breaker settings (`threshold` consecutive
    /// failures open it; `cooldown` before a half-open probe).
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Builder-style degraded-mode ladder: demote after `degrade_after`
    /// consecutive failures, promote after `recover_after` successes.
    pub fn with_degraded(mut self, degrade_after: u32, recover_after: u32) -> Self {
        self.degrade_after = degrade_after;
        self.recover_after = recover_after.max(1);
        self
    }

    /// Builder-style server request caps (head bytes, body bytes).
    pub fn with_http_caps(mut self, max_head_bytes: usize, max_body_bytes: usize) -> Self {
        self.max_head_bytes = max_head_bytes;
        self.max_body_bytes = max_body_bytes;
        self
    }

    /// Builder-style overlay window size (elements per streamed portion;
    /// `0` = auto-size to one chunk).
    pub fn with_window_elems(mut self, elems: usize) -> Self {
        self.window_elems = elems;
        self
    }

    /// Builder-style overlay engagement threshold (estimated serialized
    /// bytes; `0` streams every eligible call).
    pub fn with_overlay_threshold(mut self, bytes: usize) -> Self {
        self.overlay_threshold_bytes = bytes;
        self
    }

    /// Builder-style template-ownership override.
    pub fn with_store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// Builder-style shared-store global byte budget (`0` = unlimited).
    pub fn with_store_budget(mut self, bytes: usize) -> Self {
        self.store_budget_bytes = bytes;
        self
    }

    /// Builder-style per-tenant byte quota (`0` = unlimited).
    pub fn with_tenant_quota(mut self, bytes: usize) -> Self {
        self.tenant_quota_bytes = bytes;
        self
    }

    /// Builder-style wire-format override.
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }
}

impl Default for EngineConfig {
    /// Like [`EngineConfig::paper_default`] but with the fast float kernel:
    /// the output bytes are identical, only the conversion cost differs, so
    /// this is the right default everywhere except cost-model figures.
    fn default() -> Self {
        Self::paper_default().with_float(FloatFormatter::Fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_policy_exact() {
        assert_eq!(WidthPolicy::Exact.initial_width(ScalarKind::Double, 5), 5);
    }

    #[test]
    fn width_policy_max() {
        assert_eq!(WidthPolicy::Max.initial_width(ScalarKind::Double, 5), 24);
        assert_eq!(WidthPolicy::Max.initial_width(ScalarKind::Int, 2), 11);
        // Strings have no max — width stays at the serialized length.
        assert_eq!(WidthPolicy::Max.initial_width(ScalarKind::Str, 7), 7);
    }

    #[test]
    fn width_policy_fixed_clamps_up() {
        let p = WidthPolicy::Fixed {
            double: 18,
            int: 6,
            long: 12,
        };
        assert_eq!(p.initial_width(ScalarKind::Double, 5), 18);
        assert_eq!(
            p.initial_width(ScalarKind::Double, 22),
            22,
            "never below ser_len"
        );
        assert_eq!(p.initial_width(ScalarKind::Int, 2), 6);
    }

    #[test]
    fn builder_chain() {
        let c = EngineConfig::paper_default()
            .with_chunk(ChunkConfig::k8())
            .with_width(WidthPolicy::Max)
            .with_growth(GrowthPolicy::ToMax)
            .with_steal(false);
        assert_eq!(c.chunk, ChunkConfig::k8());
        assert_eq!(c.width, WidthPolicy::Max);
        assert_eq!(c.growth, GrowthPolicy::ToMax);
        assert!(!c.steal);
    }

    #[test]
    fn paper_default_pins_exact_kernel_and_sequential_flush() {
        let p = EngineConfig::paper_default();
        assert_eq!(p.float, FloatFormatter::Exact2004);
        assert_eq!(p.parallel_workers, 0);
        // Default differs only in the (byte-identical) conversion kernel.
        let d = EngineConfig::default();
        assert_eq!(d.float, FloatFormatter::Fast);
        assert_eq!(d.with_float(FloatFormatter::Exact2004), p);
    }

    #[test]
    fn builder_float_and_workers() {
        let c = EngineConfig::paper_default()
            .with_float(FloatFormatter::Fast)
            .with_parallel_workers(4);
        assert_eq!(c.float, FloatFormatter::Fast);
        assert_eq!(c.parallel_workers, 4);
    }

    #[test]
    fn builder_transport_knobs() {
        let c = EngineConfig::paper_default()
            .with_pool_size(8)
            .with_server_workers(2);
        assert_eq!(c.pool_size, 8);
        assert_eq!(c.server_workers, 2);
        let d = EngineConfig::paper_default();
        assert_eq!(d.pool_size, 4);
        assert_eq!(d.server_workers, 4);
    }

    #[test]
    fn builder_plan_knobs() {
        let d = EngineConfig::paper_default();
        assert_eq!(d.flush_mode, FlushMode::Planned);
        assert!(!d.cost_fallback);
        assert_eq!(d.fallback_ratio, 1.0);
        let c = d
            .with_flush_mode(FlushMode::Legacy)
            .with_cost_fallback(true)
            .with_fallback_ratio(0.5);
        assert_eq!(c.flush_mode, FlushMode::Legacy);
        assert!(c.cost_fallback);
        assert_eq!(c.fallback_ratio, 0.5);
    }

    #[test]
    fn server_core_knobs() {
        let d = EngineConfig::paper_default();
        // The default is env-derived (CI parameterizes suites via
        // BSOAP_SERVER_CORE), so compute the expectation the same way.
        assert_eq!(d.server_core, ServerCore::default_from_env());
        assert_eq!(d.event_loop_threads, 2);
        assert_eq!(d.max_connections, 8192);
        let c = d.with_event_loop(3).with_max_connections(64);
        assert_eq!(c.server_core, ServerCore::EventLoop);
        assert_eq!(c.event_loop_threads, 3);
        assert_eq!(c.max_connections, 64);
        let back = c.with_server_core(ServerCore::WorkerPool);
        assert_eq!(back.server_core, ServerCore::WorkerPool);
    }

    #[test]
    fn server_core_names_parse() {
        for name in ["event_loop", "EventLoop", "event-loop", " EVENTLOOP "] {
            assert_eq!(ServerCore::from_name(name), Some(ServerCore::EventLoop));
        }
        for name in ["worker_pool", "WorkerPool", "worker-pool"] {
            assert_eq!(ServerCore::from_name(name), Some(ServerCore::WorkerPool));
        }
        assert_eq!(ServerCore::from_name("green_threads"), None);
    }

    #[test]
    fn store_mode_knobs() {
        let d = EngineConfig::paper_default();
        // The default is env-derived (CI parameterizes the oracle leg via
        // BSOAP_STORE_MODE), so compute the expectation the same way.
        assert_eq!(d.store_mode, StoreMode::default_from_env());
        assert_eq!(d.store_budget_bytes, 0, "budget unlimited by default");
        assert_eq!(d.tenant_quota_bytes, 0, "quota unlimited by default");
        let c = d
            .with_store_mode(StoreMode::PerClient)
            .with_store_budget(1 << 20)
            .with_tenant_quota(64 << 10);
        assert_eq!(c.store_mode, StoreMode::PerClient);
        assert_eq!(c.store_budget_bytes, 1 << 20);
        assert_eq!(c.tenant_quota_bytes, 64 << 10);
    }

    #[test]
    fn store_mode_names_parse() {
        for name in ["shared", "Shared", " SHARED "] {
            assert_eq!(StoreMode::from_name(name), Some(StoreMode::Shared));
        }
        for name in ["per_client", "PerClient", "per-client"] {
            assert_eq!(StoreMode::from_name(name), Some(StoreMode::PerClient));
        }
        assert_eq!(StoreMode::from_name("global"), None);
    }

    #[test]
    fn wire_format_knobs() {
        let d = EngineConfig::paper_default();
        // The default is env-derived (CI parameterizes the binary leg via
        // BSOAP_WIRE_FORMAT), so compute the expectation the same way.
        assert_eq!(d.wire_format, WireFormat::default_from_env());
        let c = d.with_wire_format(WireFormat::CompactBinary);
        assert_eq!(c.wire_format, WireFormat::CompactBinary);
        let back = c.with_wire_format(WireFormat::SoapXml);
        assert_eq!(back.wire_format, WireFormat::SoapXml);
    }

    #[test]
    fn wire_format_names_parse() {
        for name in ["xml", "soap_xml", "SoapXml", " SOAP-XML "] {
            assert_eq!(WireFormat::from_name(name), Some(WireFormat::SoapXml));
        }
        for name in ["binary", "bin", "bin1", "compact_binary", "Compact-Binary"] {
            assert_eq!(WireFormat::from_name(name), Some(WireFormat::CompactBinary));
        }
        assert_eq!(WireFormat::from_name("msgpack"), None);
    }

    #[test]
    fn fault_knobs_default_off_and_build() {
        let d = EngineConfig::paper_default();
        assert_eq!(d.deadline, None);
        assert_eq!(d.max_retries, 0);
        assert_eq!(d.breaker_threshold, 0, "breaker off by default");
        assert_eq!(d.degrade_after, 0, "degraded mode off by default");
        assert_eq!(d.max_head_bytes, 1 << 20);
        assert_eq!(d.max_body_bytes, 64 << 20);
        let c = d
            .with_deadline(Some(Duration::from_millis(250)))
            .with_max_retries(3)
            .with_breaker(5, Duration::from_secs(2))
            .with_degraded(4, 2)
            .with_http_caps(8 << 10, 1 << 20);
        assert_eq!(c.deadline, Some(Duration::from_millis(250)));
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.breaker_threshold, 5);
        assert_eq!(c.breaker_cooldown, Duration::from_secs(2));
        assert_eq!(c.degrade_after, 4);
        assert_eq!(c.recover_after, 2);
        assert_eq!(c.max_head_bytes, 8 << 10);
        assert_eq!(c.max_body_bytes, 1 << 20);
    }
}
