//! Engine error type.

/// Errors surfaced by the differential serialization engine.
#[derive(Debug)]
pub enum EngineError {
    /// An argument value does not match the operation's declared type.
    TypeMismatch {
        /// Human-readable location, e.g. `param 0 / field "x"`.
        at: String,
        /// What the schema expected.
        expected: &'static str,
        /// What was supplied.
        found: &'static str,
    },
    /// A leaf index is out of range for this template.
    BadLeafIndex {
        /// The offending index.
        index: usize,
        /// Number of leaves in the template.
        leaf_count: usize,
    },
    /// A leaf was updated with a scalar of the wrong kind.
    KindMismatch {
        /// The leaf index.
        index: usize,
        /// The leaf's declared kind.
        expected: bsoap_convert::ScalarKind,
    },
    /// An array index addressed by a bulk update is out of range.
    BadArrayIndex {
        /// Which array parameter.
        array: usize,
        /// The offending element index.
        index: usize,
        /// Current array length.
        len: usize,
    },
    /// Argument count differs from the operation's parameter count.
    ArityMismatch {
        /// Parameters declared.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// The structure of supplied arguments differs from the template in a
    /// way that is not a pure array-length change (no structural match).
    StructureMismatch {
        /// Human-readable explanation.
        why: String,
    },
    /// A [`crate::plan::SendPlan`] was applied to a template whose state no
    /// longer matches the snapshot it was computed against.
    PlanStale {
        /// Human-readable explanation of the drift.
        why: String,
    },
    /// The call's deadline budget ran out (connect, write, or response
    /// read exceeded the remaining time). The saved template, if any, is
    /// still valid: deadline expiry never poisons differential state.
    DeadlineExceeded,
    /// I/O failure while sending.
    Io(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TypeMismatch {
                at,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch at {at}: expected {expected}, found {found}"
                )
            }
            EngineError::BadLeafIndex { index, leaf_count } => {
                write!(
                    f,
                    "leaf index {index} out of range (template has {leaf_count} leaves)"
                )
            }
            EngineError::KindMismatch { index, expected } => {
                write!(
                    f,
                    "leaf {index} update has wrong kind (leaf is {expected:?})"
                )
            }
            EngineError::BadArrayIndex { array, index, len } => {
                write!(f, "array {array} element {index} out of range (len {len})")
            }
            EngineError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "operation takes {expected} parameter(s), {found} supplied"
                )
            }
            EngineError::StructureMismatch { why } => write!(f, "structure mismatch: {why}"),
            EngineError::PlanStale { why } => write!(f, "stale send plan: {why}"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        // Only a genuine budget expiry — the canonical marker error
        // minted by `bsoap_obs::Deadline::timed_out` — becomes
        // `DeadlineExceeded`. A bare `TimedOut` (an OS-level `ETIMEDOUT`,
        // or a socket timeout set outside any deadline policy) stays
        // `Io` with its detail intact.
        if bsoap_obs::Deadline::is_deadline_error(&e) {
            EngineError::DeadlineExceeded
        } else {
            EngineError::Io(e)
        }
    }
}
