//! Template caches: per-`(endpoint, structure)` saved messages, the §6
//! multi-template extension, and the cross-endpoint sharing index.
//!
//! The base design is the paper's: "Currently, each remote Web Service
//! has its own saved template" — one [`MessageTemplate`] per
//! [`TemplateKey`]. Section 6 proposes two refinements, both implemented
//! here:
//!
//! * "It also may be useful to store multiple different message templates
//!   for the same remote service, rather than one per call type" —
//!   [`TemplateSet`] keeps up to *k* templates per key and serves the one
//!   whose array geometry is closest to the outgoing arguments, so
//!   workloads that alternate between a few message shapes never pay for
//!   resizing.
//! * "For applications that send the same (or similar) data to different
//!   remote services, we plan to investigate the extent to which it would
//!   be beneficial for them to share message chunks across templates" —
//!   [`TemplateCache::find_shareable`] locates a same-structure template
//!   saved for *another* endpoint, which the client clones instead of
//!   serializing from scratch (sharing by copy: safe under Rust
//!   ownership, and it amortizes the expensive conversion work the same
//!   way shared chunks would).

use crate::config::WireFormat;
use crate::schema::OpDesc;
use crate::template::MessageTemplate;
use crate::value::Value;
use std::collections::HashMap;

/// Cache key: endpoint plus structural signature plus wire format.
///
/// The format is part of the identity because an XML template and a
/// binary template of the same call share nothing byte-wise — a client
/// that negotiates the binary lane for one endpoint must never patch an
/// XML template saved for another lane.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// Endpoint identity (URL or logical service name).
    pub endpoint: String,
    /// Structural signature from [`OpDesc::signature`].
    pub signature: String,
    /// Wire format the saved bytes are encoded in.
    pub format: WireFormat,
}

impl TemplateKey {
    /// Build the key for an operation on an endpoint (XML lane).
    pub fn new(endpoint: &str, op: &OpDesc) -> Self {
        Self::for_format(endpoint, op, WireFormat::SoapXml)
    }

    /// Build the key for an operation on an endpoint in a specific wire
    /// format.
    pub fn for_format(endpoint: &str, op: &OpDesc, format: WireFormat) -> Self {
        TemplateKey {
            endpoint: endpoint.to_owned(),
            signature: op.signature(),
            format,
        }
    }
}

/// Up to `cap` templates for one key, most recently used first.
#[derive(Debug, Default)]
pub struct TemplateSet {
    templates: Vec<MessageTemplate>,
}

impl TemplateSet {
    /// Number of stored templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Sum of array-length distances between a template and the outgoing
    /// arguments — 0 means every array already has the right length (no
    /// resize needed).
    fn distance(tpl: &MessageTemplate, args: &[Value]) -> usize {
        let mut dist = 0usize;
        let mut array_idx = 0usize;
        for arg in args {
            if let Some(n) = arg.array_len() {
                if array_idx < tpl.array_count() {
                    dist += tpl.array_len(array_idx).abs_diff(n);
                }
                array_idx += 1;
            }
        }
        dist
    }

    /// Estimated cost of resizing a template to serve `args`, in the
    /// planner's currency: growing prices the new elements' bytes plus one
    /// re-serialization per added element leaf; shrinking only pays
    /// bookkeeping per removed element. This is the plan-shaped replacement
    /// for the raw geometry heuristic — a slightly-smaller template (cheap
    /// shrink) now beats a much-smaller one (expensive grow) even when the
    /// latter's length distance is lower.
    fn resize_cost(tpl: &MessageTemplate, args: &[Value]) -> u64 {
        let mut cost = 0u64;
        let mut array_idx = 0usize;
        for arg in args {
            if let Some(n) = arg.array_len() {
                if array_idx < tpl.array_count() {
                    let old = tpl.array_len(array_idx);
                    if n > old {
                        let elem_bytes = tpl.array_elem_bytes(array_idx) as u64;
                        cost += (n - old) as u64 * (elem_bytes + 1);
                    } else {
                        cost += (old - n) as u64;
                    }
                }
                array_idx += 1;
            }
        }
        cost
    }

    /// Index and distance of the best-matching template for `args`: the
    /// candidate with the cheapest estimated resize plan (geometry distance
    /// breaks ties). The returned distance is the geometric one — callers
    /// use `dist == 0` as the "no resize needed" signal.
    pub fn best_match(&self, args: &[Value]) -> Option<(usize, usize)> {
        self.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (i, Self::resize_cost(t, args), Self::distance(t, args)))
            .min_by_key(|&(_, cost, dist)| (cost, dist))
            .map(|(i, _, dist)| (i, dist))
    }

    /// Move template `idx` to the front (MRU) and return it mutably.
    pub fn promote(&mut self, idx: usize) -> &mut MessageTemplate {
        let t = self.templates.remove(idx);
        self.templates.insert(0, t);
        &mut self.templates[0]
    }

    /// Remove and return template `idx` (cost-gate fallback discards the
    /// template it just priced).
    pub fn remove(&mut self, idx: usize) -> MessageTemplate {
        self.templates.remove(idx)
    }

    /// Insert a template at the MRU position, evicting the LRU entry when
    /// the set exceeds `cap`.
    pub fn insert(&mut self, template: MessageTemplate, cap: usize) {
        self.templates.insert(0, template);
        self.templates.truncate(cap.max(1));
    }

    /// Like [`TemplateSet::insert`], but hands back what the cap pushed
    /// out — the shared store needs every evicted template to return its
    /// bytes to the budget.
    pub fn insert_evicting(
        &mut self,
        template: MessageTemplate,
        cap: usize,
    ) -> Vec<MessageTemplate> {
        self.templates.insert(0, template);
        let cap = cap.max(1);
        if self.templates.len() > cap {
            self.templates.split_off(cap)
        } else {
            Vec::new()
        }
    }

    /// The stored templates, MRU first.
    pub fn templates(&self) -> &[MessageTemplate] {
        &self.templates
    }

    /// Total serialized bytes held.
    pub fn total_bytes(&self) -> usize {
        self.templates.iter().map(|t| t.message_len()).sum()
    }

    /// Most recently used template.
    pub fn front_mut(&mut self) -> Option<&mut MessageTemplate> {
        self.templates.first_mut()
    }
}

/// Saved-template store.
#[derive(Debug, Default)]
pub struct TemplateCache {
    map: HashMap<TemplateKey, TemplateSet>,
}

impl TemplateCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys with at least one saved template.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Total templates across all keys.
    pub fn template_count(&self) -> usize {
        self.map.values().map(TemplateSet::len).sum()
    }

    /// True when no templates are saved.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The template set for a key, creating it if absent.
    pub fn set_mut(&mut self, key: &TemplateKey) -> &mut TemplateSet {
        self.map.entry(key.clone()).or_default()
    }

    /// Most recently used template for a key (the paper's base design).
    pub fn get_mut(&mut self, key: &TemplateKey) -> Option<&mut MessageTemplate> {
        self.map.get_mut(key).and_then(TemplateSet::front_mut)
    }

    /// Whether any template exists for the key.
    pub fn contains(&self, key: &TemplateKey) -> bool {
        self.map.get(key).is_some_and(|s| !s.is_empty())
    }

    /// Save a template as the MRU entry for `key`, keeping at most
    /// `cap` templates there.
    pub fn insert_with_cap(&mut self, key: TemplateKey, template: MessageTemplate, cap: usize) {
        self.map.entry(key).or_default().insert(template, cap);
    }

    /// Save a template, replacing any previous one for the key (cap 1 —
    /// the paper's base behaviour).
    pub fn insert(&mut self, key: TemplateKey, template: MessageTemplate) {
        self.insert_with_cap(key, template, 1);
    }

    /// Drop all templates for a key; returns the MRU one if any existed.
    pub fn remove(&mut self, key: &TemplateKey) -> Option<MessageTemplate> {
        self.map.remove(key).and_then(|mut s| {
            if s.templates.is_empty() {
                None
            } else {
                Some(s.templates.remove(0))
            }
        })
    }

    /// Best match for `args` among the key's templates without mutating:
    /// `(index, distance, set size)`.
    pub fn match_for(&self, key: &TemplateKey, args: &[Value]) -> Option<(usize, usize, usize)> {
        let set = self.map.get(key)?;
        let (idx, dist) = set.best_match(args)?;
        Some((idx, dist, set.len()))
    }

    /// Find a same-structure, same-format template saved for a *different*
    /// endpoint — the §6 cross-endpoint sharing candidate.
    pub fn find_shareable(&self, key: &TemplateKey) -> Option<&MessageTemplate> {
        self.map
            .iter()
            .filter(|(k, _)| {
                k.signature == key.signature && k.format == key.format && k.endpoint != key.endpoint
            })
            .find_map(|(_, set)| set.templates.first())
    }

    /// Total bytes held across all saved templates (memory accounting —
    /// the cost §3.3 motivates chunk overlaying with).
    pub fn total_bytes(&self) -> usize {
        self.map.values().map(TemplateSet::total_bytes).sum()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeDesc;
    use crate::{EngineConfig, Value};
    use bsoap_convert::ScalarKind;

    fn op(name: &str) -> OpDesc {
        OpDesc::single(name, "urn:t", "v", TypeDesc::Scalar(ScalarKind::Int))
    }

    fn arr_op() -> OpDesc {
        OpDesc::single(
            "f",
            "urn:t",
            "a",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )
    }

    fn arr_tpl(n: usize) -> MessageTemplate {
        MessageTemplate::build(
            EngineConfig::paper_default(),
            &arr_op(),
            &[Value::DoubleArray(vec![0.5; n])],
        )
        .unwrap()
    }

    #[test]
    fn keys_distinguish_endpoint_and_structure() {
        let k1 = TemplateKey::new("http://a/svc", &op("f"));
        let k2 = TemplateKey::new("http://b/svc", &op("f"));
        let k3 = TemplateKey::new("http://a/svc", &op("g"));
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1, TemplateKey::new("http://a/svc", &op("f")));
        // The wire format is part of the identity: a binary template can
        // never be served where XML bytes are expected.
        let k4 = TemplateKey::for_format("http://a/svc", &op("f"), WireFormat::CompactBinary);
        assert_ne!(k1, k4);
        assert_eq!(k1.format, WireFormat::SoapXml);
    }

    #[test]
    fn cache_round_trip() {
        let mut cache = TemplateCache::new();
        let o = op("f");
        let key = TemplateKey::new("ep", &o);
        assert!(!cache.contains(&key));
        let t =
            MessageTemplate::build(EngineConfig::paper_default(), &o, &[Value::Int(7)]).unwrap();
        let bytes = t.message_len();
        cache.insert(key.clone(), t);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_bytes(), bytes);
        assert!(cache.get_mut(&key).is_some());
        assert!(cache.remove(&key).is_some());
        assert!(cache.is_empty());
    }

    #[test]
    fn set_keeps_mru_order_and_cap() {
        let mut set = TemplateSet::default();
        set.insert(arr_tpl(1), 2);
        set.insert(arr_tpl(5), 2);
        assert_eq!(set.len(), 2);
        set.insert(arr_tpl(9), 2); // evicts the n=1 template
        assert_eq!(set.len(), 2);
        let lens: Vec<usize> = set.templates.iter().map(|t| t.array_len(0)).collect();
        assert_eq!(lens, vec![9, 5]);
    }

    #[test]
    fn best_match_prefers_matching_lengths() {
        let mut set = TemplateSet::default();
        set.insert(arr_tpl(10), 3);
        set.insert(arr_tpl(100), 3);
        set.insert(arr_tpl(1000), 3);
        let (idx, dist) = set
            .best_match(&[Value::DoubleArray(vec![0.5; 100])])
            .unwrap();
        assert_eq!(dist, 0);
        assert_eq!(set.templates[idx].array_len(0), 100);
        let (idx, dist) = set
            .best_match(&[Value::DoubleArray(vec![0.5; 90])])
            .unwrap();
        assert_eq!(dist, 10);
        assert_eq!(set.templates[idx].array_len(0), 100);
    }

    #[test]
    fn promote_moves_to_front() {
        let mut set = TemplateSet::default();
        set.insert(arr_tpl(1), 3);
        set.insert(arr_tpl(2), 3);
        set.insert(arr_tpl(3), 3); // order: 3, 2, 1
        let t = set.promote(2);
        assert_eq!(t.array_len(0), 1);
        let lens: Vec<usize> = set.templates.iter().map(|t| t.array_len(0)).collect();
        assert_eq!(lens, vec![1, 3, 2]);
    }

    #[test]
    fn find_shareable_requires_same_structure_other_endpoint() {
        let mut cache = TemplateCache::new();
        let o = arr_op();
        let key_a = TemplateKey::new("http://a", &o);
        cache.insert(key_a.clone(), arr_tpl(5));

        // Same endpoint: not shareable (already a direct hit).
        assert!(cache.find_shareable(&key_a).is_none());
        // Other endpoint, same structure: shareable.
        let key_b = TemplateKey::new("http://b", &o);
        assert!(cache.find_shareable(&key_b).is_some());
        // Other structure: not shareable.
        let key_c = TemplateKey::new("http://b", &op("f"));
        assert!(cache.find_shareable(&key_c).is_none());
        // Other wire format: not shareable (the bytes are a different lane).
        let key_d = TemplateKey::for_format("http://b", &o, WireFormat::CompactBinary);
        assert!(cache.find_shareable(&key_d).is_none());
    }

    #[test]
    fn template_count_spans_sets() {
        let mut cache = TemplateCache::new();
        let o = arr_op();
        let key = TemplateKey::new("ep", &o);
        cache.insert_with_cap(key.clone(), arr_tpl(1), 4);
        cache.insert_with_cap(key, arr_tpl(2), 4);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.template_count(), 2);
    }
}
