//! In-memory value model.
//!
//! [`Value`] is what applications hand to the engine; [`Scalar`] is the
//! engine's per-leaf storage inside the DUT table.
//!
//! The paper foresees "all 'serializable' data to be located in objects
//! that contain 'get' and 'set' methods, whose implementation will update
//! the DUT table transparently" (§3.1). In safe Rust the template cannot
//! alias application memory with raw pointers, so the template *owns* the
//! current scalar for each leaf and exposes exactly those accessors
//! ([`crate::MessageTemplate::set_double`] etc.), which mark dirty bits.
//!
//! Arrays of `f64`/`i32` have dedicated variants so scientific workloads
//! (the paper's target) avoid per-element boxing.

use bsoap_convert::{FloatFormatter, ScalarKind};

/// A single leaf value as stored in the DUT table.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// `xsd:int`.
    Int(i32),
    /// `xsd:long`.
    Long(i64),
    /// `xsd:double`.
    Double(f64),
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:string` (unescaped application form).
    Str(Box<str>),
}

impl Scalar {
    /// The kind tag for this scalar.
    pub fn kind(&self) -> ScalarKind {
        match self {
            Scalar::Int(_) => ScalarKind::Int,
            Scalar::Long(_) => ScalarKind::Long,
            Scalar::Double(_) => ScalarKind::Double,
            Scalar::Bool(_) => ScalarKind::Bool,
            Scalar::Str(_) => ScalarKind::Str,
        }
    }

    /// Bitwise/structural equality — `NaN == NaN`, `0.0 != -0.0` — so a
    /// rewrite of the same bits never dirties a leaf spuriously.
    pub fn same_as(&self, other: &Scalar) -> bool {
        match (self, other) {
            (Scalar::Double(a), Scalar::Double(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }
    }

    /// Serialize this scalar's lexical form into `out` (cleared first)
    /// using the paper's exact conversion kernel.
    ///
    /// Strings are XML-escaped here; numeric forms never need escaping.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        self.serialize_into_with(out, FloatFormatter::Exact2004);
    }

    /// Serialize this scalar's lexical form into `out` (cleared first),
    /// converting doubles with the given kernel. Both kernels emit the same
    /// bytes; only the conversion cost differs.
    pub fn serialize_into_with(&self, out: &mut Vec<u8>, float: FloatFormatter) {
        self.serialize_into_kern(out, float, bsoap_kernels::KernelPolicy::Scalar);
    }

    /// Serialize this scalar in the configured wire format: the XML
    /// lexical form via [`Self::serialize_into_kern`], or the compact
    /// binary tagged record via [`Self::serialize_binary_into`]. Every
    /// template-internal serialization site routes through here so one
    /// [`crate::config::WireFormat`] knob switches the whole engine.
    pub fn serialize_wire(
        &self,
        out: &mut Vec<u8>,
        float: FloatFormatter,
        kernel: bsoap_kernels::KernelPolicy,
        format: crate::config::WireFormat,
    ) {
        match format {
            crate::config::WireFormat::SoapXml => self.serialize_into_kern(out, float, kernel),
            crate::config::WireFormat::CompactBinary => self.serialize_binary_into(out),
        }
    }

    /// Serialize this scalar as one tagged compact-binary record into
    /// `out` (cleared first): fixed-width little-endian for numerics,
    /// `[tag][u32 LE len][bytes]` for strings (see [`crate::wire`]).
    ///
    /// A numeric leaf's serialized length never varies with its value, so
    /// a differential rewrite is always an in-place overwrite.
    pub fn serialize_binary_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Scalar::Int(v) => {
                out.push(crate::wire::TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Scalar::Long(v) => {
                out.push(crate::wire::TAG_LONG);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Scalar::Double(v) => {
                out.push(crate::wire::TAG_DOUBLE);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Scalar::Bool(v) => {
                out.push(crate::wire::TAG_BOOL);
                out.push(u8::from(*v));
            }
            Scalar::Str(s) => {
                out.push(crate::wire::TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// [`Self::serialize_into_with`] plus byte-kernel dispatch: integers go
    /// through the branchless stuffed-itoa kernel and strings through the
    /// SIMD escape scanner when `kernel` resolves to a SIMD level. Output
    /// is byte-identical across every policy (property-tested).
    pub fn serialize_into_kern(
        &self,
        out: &mut Vec<u8>,
        float: FloatFormatter,
        kernel: bsoap_kernels::KernelPolicy,
    ) {
        out.clear();
        match self {
            Scalar::Int(v) => {
                let mut buf = [0u8; 11];
                let n = bsoap_convert::write_i32_with(&mut buf, *v, kernel);
                out.extend_from_slice(&buf[..n]);
            }
            Scalar::Long(v) => {
                let mut buf = [0u8; 20];
                let n = bsoap_convert::write_i64_with(&mut buf, *v, kernel);
                out.extend_from_slice(&buf[..n]);
            }
            Scalar::Double(v) => {
                let mut buf = [0u8; bsoap_convert::DOUBLE_MAX_WIDTH];
                let n = float.write_f64(&mut buf, *v);
                out.extend_from_slice(&buf[..n]);
            }
            Scalar::Bool(v) => out.extend_from_slice(bsoap_convert::format_bool(*v).as_bytes()),
            Scalar::Str(s) => bsoap_xml::escape_text_into_with(out, s, kernel),
        }
    }
}

/// An application-level value: what gets passed as an RPC argument.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `xsd:int`.
    Int(i32),
    /// `xsd:long`.
    Long(i64),
    /// `xsd:double`.
    Double(f64),
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:string`.
    Str(String),
    /// A struct; fields in the order declared by its [`crate::TypeDesc`].
    Struct(Vec<Value>),
    /// Homogeneous array of doubles (fast path, no boxing).
    DoubleArray(Vec<f64>),
    /// Homogeneous array of ints (fast path, no boxing).
    IntArray(Vec<i32>),
    /// Generic array (e.g. of structs like the paper's MIOs).
    Array(Vec<Value>),
}

impl Value {
    /// Short name of the variant, for error messages.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "Int",
            Value::Long(_) => "Long",
            Value::Double(_) => "Double",
            Value::Bool(_) => "Bool",
            Value::Str(_) => "Str",
            Value::Struct(_) => "Struct",
            Value::DoubleArray(_) => "DoubleArray",
            Value::IntArray(_) => "IntArray",
            Value::Array(_) => "Array",
        }
    }

    /// Array length if this is any array variant.
    pub fn array_len(&self) -> Option<usize> {
        match self {
            Value::DoubleArray(v) => Some(v.len()),
            Value::IntArray(v) => Some(v.len()),
            Value::Array(v) => Some(v.len()),
            _ => None,
        }
    }
}

/// Convenience constructor for the paper's mesh interface object
/// (`[int, int, double]` — mesh coordinates plus a field value, §4.1).
pub fn mio(x: i32, y: i32, value: f64) -> Value {
    Value::Struct(vec![Value::Int(x), Value::Int(y), Value::Double(value)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lexical(s: &Scalar) -> String {
        let mut out = Vec::new();
        s.serialize_into(&mut out);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn scalar_serialization() {
        assert_eq!(lexical(&Scalar::Int(-42)), "-42");
        assert_eq!(lexical(&Scalar::Long(1 << 40)), "1099511627776");
        assert_eq!(lexical(&Scalar::Double(0.5)), "0.5");
        assert_eq!(lexical(&Scalar::Bool(true)), "true");
        assert_eq!(lexical(&Scalar::Str("a<b".into())), "a&lt;b");
    }

    #[test]
    fn binary_serialization_is_fixed_width_for_numerics() {
        let mut out = Vec::new();
        for v in [0, 1, -1, i32::MIN, i32::MAX] {
            Scalar::Int(v).serialize_binary_into(&mut out);
            assert_eq!(out.len(), 5, "int {v}");
            assert_eq!(out[0], crate::wire::TAG_INT);
        }
        for v in [0.0, -0.5, f64::NAN, f64::MAX] {
            Scalar::Double(v).serialize_binary_into(&mut out);
            assert_eq!(out.len(), 9, "double {v}");
        }
        Scalar::Long(i64::MIN).serialize_binary_into(&mut out);
        assert_eq!(out.len(), 9);
        Scalar::Bool(true).serialize_binary_into(&mut out);
        assert_eq!(out, [crate::wire::TAG_BOOL, 1]);
        Scalar::Str("a<b".into()).serialize_binary_into(&mut out);
        // Strings are length-prefixed and NOT escaped on the binary lane.
        assert_eq!(out[0], crate::wire::TAG_STR);
        assert_eq!(out[1..5], 3u32.to_le_bytes());
        assert_eq!(&out[5..], b"a<b");
    }

    #[test]
    fn scalar_kinds() {
        assert_eq!(Scalar::Int(0).kind(), ScalarKind::Int);
        assert_eq!(Scalar::Double(0.0).kind(), ScalarKind::Double);
        assert_eq!(Scalar::Str("".into()).kind(), ScalarKind::Str);
    }

    #[test]
    fn same_as_handles_float_edge_cases() {
        assert!(Scalar::Double(f64::NAN).same_as(&Scalar::Double(f64::NAN)));
        assert!(!Scalar::Double(0.0).same_as(&Scalar::Double(-0.0)));
        assert!(Scalar::Int(5).same_as(&Scalar::Int(5)));
        assert!(!Scalar::Int(5).same_as(&Scalar::Long(5)));
    }

    #[test]
    fn serialize_reuses_buffer() {
        let mut out = Vec::with_capacity(32);
        Scalar::Int(1).serialize_into(&mut out);
        assert_eq!(out, b"1");
        Scalar::Int(22).serialize_into(&mut out);
        assert_eq!(out, b"22", "buffer must be cleared, not appended");
    }

    #[test]
    fn mio_shape() {
        let m = mio(1, 2, 3.5);
        let Value::Struct(fields) = &m else { panic!() };
        assert_eq!(fields.len(), 3);
        assert_eq!(m.array_len(), None);
        assert_eq!(Value::DoubleArray(vec![1.0]).array_len(), Some(1));
    }
}
