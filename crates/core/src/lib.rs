//! # bsoap-core — the differential serialization engine
//!
//! This crate is the paper's primary contribution (HPDC 2004, §3): rather
//! than re-serializing every outgoing SOAP message from scratch, the first
//! message of a given structure is fully serialized once and **saved as a
//! template** in the client stub. A **Data Update Tracking (DUT) table**
//! maps every leaf value to its byte location in the saved form; later
//! sends re-serialize only what changed.
//!
//! ## The four matching tiers (§3)
//!
//! | Tier | Condition | Work done |
//! |------|-----------|-----------|
//! | [`SendTier::ContentMatch`] | no dirty bits | gather-send saved bytes verbatim |
//! | [`SendTier::PerfectStructural`] | same structure & sizes | overwrite dirty values in place |
//! | [`SendTier::PartialStructural`] | same structure, different sizes | expand/contract template (shifting), then patch |
//! | [`SendTier::FirstTime`] | no template | full serialization + template & DUT build |
//!
//! ## Mechanisms
//!
//! * **Shifting** (§3.2) — in-chunk tail moves when a value outgrows its
//!   field, with chunk growth and splitting bounded by [`bsoap_chunks::ChunkConfig`],
//! * **Stuffing** (§3.2, §4.4) — whitespace padding to an intermediate or
//!   maximum field width ([`WidthPolicy`]) so growth never shifts,
//! * **Stealing** (§3.2) — taking slack from the right neighbor's padding
//!   instead of shifting the whole chunk tail,
//! * **Chunk overlaying** (§3.3) — streaming huge arrays through a single
//!   reused chunk ([`overlay::OverlaySender`]).
//!
//! ## Entry points
//!
//! [`Client`] gives the automatic four-tier behavior with a template cache;
//! [`MessageTemplate`] is the manual, zero-re-walk API for hot loops.

pub mod cache;
pub mod client;
pub mod config;
pub mod dut;
pub mod error;
pub mod overlay;
pub mod pipeline;
pub mod plan;
pub mod schema;
pub mod sendv;
pub mod soap;
pub mod store;
pub mod template;
pub mod value;
pub mod wire;

pub use cache::{TemplateCache, TemplateKey};
pub use client::{Client, ClientStats, OverlaidOutcome};
pub use config::{
    EngineConfig, FloatFormatter, FlushMode, GrowthPolicy, KernelPolicy, ServerCore, StoreMode,
    WidthPolicy, WireFormat,
};
pub use dut::{DutEntry, DutTable};
pub use error::EngineError;
pub use overlay::{OverlayReport, OverlaySender};
pub use pipeline::{PipelineReport, PipelinedSender};
pub use plan::{InjectedFault, OpKind, PlanCost, PlannedOp, SendPlan};
pub use schema::{OpDesc, ParamDesc, TypeDesc};
pub use store::{Checkout, StoreKey, TemplateStore};
pub use template::{MessageTemplate, SendReport, SendTier};
pub use value::{Scalar, Value};
