//! Vectored send helper.
//!
//! The chunk store hands out one `IoSlice` per chunk; this module drains
//! them through any `Write` using `write_vectored`, handling partial
//! writes. This is the "scatter-gather sends" consideration of §3.2 — the
//! non-contiguous template is sent without ever being flattened.

use bsoap_obs::{Counter, Metrics, Recorder};
use std::io::{IoSlice, Result, Write};

/// Write all bytes of all `slices` to `w`, using vectored writes.
///
/// Returns the total byte count on success.
pub fn write_all_vectored(w: &mut impl Write, slices: &[IoSlice<'_>]) -> Result<usize> {
    write_all_vectored_metered(w, slices, None)
}

/// [`write_all_vectored`] with optional instrumentation: counts vectored
/// write calls and short writes that forced a resume into `metrics`.
/// With `None` the record sites compile down to dead branches.
pub fn write_all_vectored_metered(
    w: &mut impl Write,
    slices: &[IoSlice<'_>],
    metrics: Option<&Metrics>,
) -> Result<usize> {
    let total: usize = slices.iter().map(|s| s.len()).sum();
    let mut calls = 0u64;
    // One up-front copy of the gather list; after a partial write only the
    // first unconsumed entry is re-sliced, so draining is O(n) overall
    // instead of O(n²) view rebuilds on dribbling writers.
    let mut view: Vec<IoSlice<'_>> = slices.iter().map(|s| IoSlice::new(s)).collect();
    // Position: first unconsumed slice and byte offset within it.
    let mut idx = 0usize;
    let mut off = 0usize;
    // Skip leading empty slices.
    while idx < slices.len() && slices[idx].is_empty() {
        idx += 1;
    }
    while idx < slices.len() {
        let n = match w.write_vectored(&view[idx..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "vectored write returned zero",
                ))
            }
            Ok(n) => n,
            // EINTR: nothing was written; the position is intact, retry.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        calls += 1;
        // Advance the (idx, off) position by n bytes.
        let mut remaining = n + off;
        off = 0;
        while idx < slices.len() && remaining >= slices[idx].len() {
            remaining -= slices[idx].len();
            idx += 1;
        }
        if idx < slices.len() {
            off = remaining;
            view[idx] = IoSlice::new(&slices[idx][off..]);
        }
    }
    if let Some(m) = metrics {
        m.add(Counter::WritevCalls, calls);
        m.add(Counter::WritevPartials, calls.saturating_sub(1));
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writer that accepts at most `cap` bytes per call, exercising the
    /// partial-write resumption logic.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> Result<usize> {
            let mut room = self.cap;
            let mut n = 0;
            for b in bufs {
                if room == 0 {
                    break;
                }
                let take = b.len().min(room);
                self.out.extend_from_slice(&b[..take]);
                room -= take;
                n += take;
            }
            Ok(n)
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_everything_across_partial_writes() {
        let a = b"hello ".to_vec();
        let b = b"vectored ".to_vec();
        let c = b"world".to_vec();
        let slices = [IoSlice::new(&a), IoSlice::new(&b), IoSlice::new(&c)];
        for cap in [1, 2, 3, 5, 7, 100] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            let n = write_all_vectored(&mut w, &slices).unwrap();
            assert_eq!(n, 20);
            assert_eq!(w.out, b"hello vectored world", "cap {cap}");
        }
    }

    #[test]
    fn empty_slices_ok() {
        let mut w = Dribble {
            out: Vec::new(),
            cap: 10,
        };
        assert_eq!(write_all_vectored(&mut w, &[]).unwrap(), 0);
        let empty = Vec::new();
        let slices = [IoSlice::new(&empty)];
        assert_eq!(write_all_vectored(&mut w, &slices).unwrap(), 0);
    }
}
