//! Read-only send planning — the data half of the plan/execute split.
//!
//! A [`SendPlan`] is everything a differential send will do, computed from
//! the DUT table and the pending argument updates **without touching a
//! single template byte**: which leaves are rewritten in place, which need
//! stealing or shifting (and by how much), which arrays grow or shrink,
//! and an estimated cost in the paper's §5 currency
//! (`bytes_moved + values_reserialized`).
//!
//! Planning first buys three things:
//!
//! 1. **Coalesced execution** — all width growth in a chunk is known up
//!    front, so the executor opens every gap with one right-to-left pass
//!    per chunk ([`bsoap_chunks::ChunkStore::open_gaps_right`]) and one
//!    batched DUT fixup, O(chunk) instead of O(shifts × chunk).
//! 2. **Cost-gated fallback** — the §5 break-even experiments show
//!    differential sends *lose* to a rebuild once shifting work crosses a
//!    threshold; [`PlanCost`] makes that a one-comparison decision before
//!    any mutation (`EngineConfig::{cost_fallback, fallback_ratio}`).
//! 3. **Failure atomicity** — an error raised during planning leaves the
//!    template byte-identical to its pre-send state, because nothing has
//!    been patched yet.
//!
//! The planner itself lives in `template/planner.rs`; the executor in
//! `template/patch.rs`.

use crate::template::SendTier;

/// What the executor must do to one dirty leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// New serialization has the same length: overwrite value bytes only.
    Overwrite,
    /// New serialization differs in length but fits the field width:
    /// rewrite `[value][suffix][pad]` in place.
    InWidth,
    /// Field grows by `delta`; the neighbor's padding absorbs it (§3.2
    /// stealing). The neighbor's offset advances and its width shrinks by
    /// `delta`; this field's width becomes `new_width`.
    Steal {
        /// Bytes taken from the right neighbor's padding.
        delta: u32,
        /// This field's width after the steal.
        new_width: u32,
    },
    /// Field grows by `delta` and the chunk tail must move (§3.2
    /// shifting). The executor coalesces all shifts of a chunk into one
    /// pass; this field's width becomes `new_width`.
    Shift {
        /// Gap bytes opened at this field's region end.
        delta: u32,
        /// This field's width after the shift.
        new_width: u32,
    },
}

impl OpKind {
    /// The field width this op leaves behind, when it changes it.
    pub fn new_width(self) -> Option<u32> {
        match self {
            OpKind::Overwrite | OpKind::InWidth => None,
            OpKind::Steal { new_width, .. } | OpKind::Shift { new_width, .. } => Some(new_width),
        }
    }
}

/// One planned leaf rewrite: the DUT entry it targets, how the executor
/// makes room, and where the pre-serialized bytes live in the plan blob.
#[derive(Clone, Copy, Debug)]
pub struct PlannedOp {
    /// DUT entry index.
    pub entry: usize,
    /// How the executor applies it.
    pub kind: OpKind,
    /// Start of the serialized value in [`SendPlan`]'s blob.
    pub lo: u32,
    /// End of the serialized value in [`SendPlan`]'s blob.
    pub hi: u32,
}

/// Estimated cost of executing a plan, in the §5 break-even currency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCost {
    /// Template bytes the executor will move (coalesced shift passes,
    /// steal spans, array grow/shrink tail moves).
    pub bytes_moved: u64,
    /// Leaf values that will be re-serialized into the message.
    pub values_reserialized: u64,
}

impl PlanCost {
    /// The scalar the cost gate compares: `bytes_moved + values_reserialized`.
    pub fn total(self) -> u64 {
        self.bytes_moved + self.values_reserialized
    }
}

/// Snapshot of the template state a plan was computed against. The
/// executor refuses ([`crate::EngineError::PlanStale`]) to apply a plan
/// whose stamp no longer matches, rather than corrupt the template.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PlanStamp {
    /// DUT entry count.
    pub leaves: usize,
    /// Dirty leaf count.
    pub dirty: usize,
    /// Total serialized bytes.
    pub total_len: usize,
    /// Queued array resizes.
    pub resizes: usize,
}

/// A read-only differential-send plan (see the module docs).
///
/// Produced by `MessageTemplate::plan`, consumed by
/// `MessageTemplate::flush_planned`. Between the two calls the template
/// must not be mutated; the stamp check enforces this.
#[derive(Clone, Debug)]
pub struct SendPlan {
    /// Tier the send will report.
    pub(crate) tier: SendTier,
    /// Leaf rewrites in ascending DUT order.
    pub(crate) ops: Vec<PlannedOp>,
    /// All re-serialized values, back to back; ops index into this.
    pub(crate) blob: Vec<u8>,
    /// Array resizes are queued on the template: the executor applies them
    /// first, then re-plans the (post-resize) leaf patches internally. The
    /// cost above already includes a resize estimate.
    pub(crate) deferred_resizes: bool,
    /// Estimated execution cost.
    pub(crate) cost: PlanCost,
    /// Template state this plan is valid against.
    pub(crate) stamp: PlanStamp,
}

impl SendPlan {
    /// Tier this send will report.
    pub fn tier(&self) -> SendTier {
        self.tier
    }

    /// Estimated execution cost (the §5 break-even input).
    pub fn cost(&self) -> PlanCost {
        self.cost
    }

    /// Number of leaf rewrites planned.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether queued array resizes will run before the leaf patches.
    pub fn has_deferred_resizes(&self) -> bool {
        self.deferred_resizes
    }
}

/// Failure-injection points for the atomicity tests: set via
/// `MessageTemplate::inject_fault` (test support, never set in production).
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// `plan()` returns an error before computing anything.
    PlanError,
    /// The executor panics after validation, before any mutation.
    ExecutorPanic,
}
