//! The shared template store: sharded, byte-budgeted, multi-tenant
//! template ownership (§ DESIGN 3.14).
//!
//! The paper keeps saved templates inside each client stub; a server
//! fleet wants the inverse — one concurrently-accessed store whose
//! resident bytes are bounded no matter how many tenants show up.
//! [`TemplateStore`] is that store:
//!
//! * **Sharded.** Keys hash onto cache-line-padded mutex shards (the same
//!   padding idiom `bsoap-obs` uses for its counters), so concurrent
//!   clients rarely contend on one lock.
//! * **Budgeted.** A hard global byte budget caps resident template bytes
//!   (plus reserved overlay-window bytes). Admission past the budget
//!   evicts until the store fits again.
//! * **Cost-aware.** Victims are chosen by
//!   [`MessageTemplate::rebuild_estimate`] — the §5 cost model's price of
//!   re-serializing from scratch. Cheap-to-rebuild templates go first;
//!   an expensive template survives a cheap one under pressure, because
//!   evicting it would cost the most to undo.
//! * **Tenant-isolated.** Per-tenant byte quotas stop one hot tenant from
//!   evicting everyone else: a tenant over quota only ever evicts its own
//!   templates.
//!
//! Ownership moves through the store by value: [`TemplateStore::checkout`]
//! removes the best-matching template (its bytes leave the budget
//! immediately — a checked-out template a cost gate later discards can
//! never strand budget), the caller diffs and sends, then
//! [`TemplateStore::admit`] returns it. One checkout is one lookup:
//! `TemplateHits + TemplateMisses` reconciles exactly with the number of
//! checkouts.

use crate::cache::{TemplateKey, TemplateSet};
use crate::template::MessageTemplate;
use crate::value::Value;
use bsoap_obs::{Counter, Level, Metrics, Recorder};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of map shards. Power of two, same scale as the obs counter
/// sharding: enough that a worker pool of the sizes this engine runs
/// rarely collides on one lock.
const SHARDS: usize = 16;

/// Store key: tenant plus the per-client cache key. Tenant `0` is the
/// single-tenant default, so a lone client pays nothing for the extra
/// dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Tenant identity (billing/isolation domain).
    pub tenant: u64,
    /// Endpoint + structural signature, as in the per-client cache.
    pub key: TemplateKey,
}

impl StoreKey {
    /// Key for `tenant`'s template for `(endpoint, op)`.
    pub fn new(tenant: u64, key: TemplateKey) -> Self {
        StoreKey { tenant, key }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// One mutex-guarded shard on its own cache line(s), so shard locks and
/// their map headers never share a line (the `bsoap-obs` counter idiom
/// applied to locks).
#[repr(align(64))]
#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<StoreKey, TemplateSet>>,
}

/// What a [`TemplateStore::checkout`] found.
// Hit is by far the common case on a warm store, and the value is
// consumed immediately at the call site — boxing it would put a heap
// allocation on the hot path to shrink a transient enum.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Checkout {
    /// A usable template, removed from the store (its bytes already left
    /// the budget). Diff, send, then [`TemplateStore::admit`] it back.
    Hit(MessageTemplate),
    /// No template stored under this key at all.
    MissEmpty,
    /// Variants exist, but the best match needs a resize and the set has
    /// room for another shape — build a new variant instead (§6
    /// multi-template policy).
    MissVariant,
}

impl Checkout {
    /// The template, if this was a hit.
    pub fn hit(self) -> Option<MessageTemplate> {
        match self {
            Checkout::Hit(t) => Some(t),
            _ => None,
        }
    }
}

/// Sharded, byte-budgeted, multi-tenant template store.
///
/// Construction pins the budget and quota; `0` means unlimited for both.
/// All methods take `&self` — wrap in an [`Arc`] to share across clients,
/// server cores, or threads.
pub struct TemplateStore {
    shards: [Shard; SHARDS],
    /// Tenant → resident bytes, sharded by tenant id. Entries are removed
    /// when they hit zero so the map stays bounded by *live* tenants.
    tenant_bytes: [Mutex<HashMap<u64, u64>>; SHARDS],
    /// Global resident bytes: templates + overlay reservations.
    resident: AtomicU64,
    /// Reserved (non-template, non-evictable) bytes within `resident`.
    reserved: AtomicU64,
    /// Hard global byte budget (`0` = unlimited).
    budget: u64,
    /// Per-tenant byte quota (`0` = unlimited).
    tenant_quota: u64,
    metrics: OnceLock<Arc<Metrics>>,
}

impl std::fmt::Debug for TemplateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateStore")
            .field("resident_bytes", &self.resident_bytes())
            .field("budget", &self.budget)
            .field("tenant_quota", &self.tenant_quota)
            .finish()
    }
}

impl TemplateStore {
    /// Store with a global byte budget and per-tenant quota (`0` =
    /// unlimited for either).
    pub fn new(budget_bytes: usize, tenant_quota_bytes: usize) -> Self {
        TemplateStore {
            shards: std::array::from_fn(|_| Shard::default()),
            tenant_bytes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            resident: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            budget: budget_bytes as u64,
            tenant_quota: tenant_quota_bytes as u64,
            metrics: OnceLock::new(),
        }
    }

    /// Unbudgeted store (both limits off) — the drop-in replacement for a
    /// per-client cache.
    pub fn unbounded() -> Self {
        Self::new(0, 0)
    }

    /// Convenience: a shareable unbudgeted store.
    pub fn shared(budget_bytes: usize, tenant_quota_bytes: usize) -> Arc<Self> {
        Arc::new(Self::new(budget_bytes, tenant_quota_bytes))
    }

    /// Attach an observability registry. First caller wins (the store is
    /// shared; competing registries would split its counters).
    pub fn set_metrics(&self, metrics: Arc<Metrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.get()
    }

    /// The configured global budget in bytes (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// The configured per-tenant quota in bytes (`0` = unlimited).
    pub fn tenant_quota_bytes(&self) -> u64 {
        self.tenant_quota
    }

    /// Resident bytes right now: stored templates plus reservations.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Bytes currently resident for one tenant.
    pub fn tenant_resident_bytes(&self, tenant: u64) -> u64 {
        let g = self.tenant_bytes[(tenant as usize) % SHARDS]
            .lock()
            .unwrap();
        g.get(&tenant).copied().unwrap_or(0)
    }

    /// Number of keys with at least one stored template.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().unwrap().len())
            .sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total templates across all keys.
    pub fn template_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .unwrap()
                    .values()
                    .map(TemplateSet::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether any template is stored under `key`.
    pub fn contains(&self, key: &StoreKey) -> bool {
        let g = self.shards[key.shard()].map.lock().unwrap();
        g.get(key).is_some_and(|s| !s.is_empty())
    }

    /// Walk every shard and re-sum template bytes + reservations — the
    /// audit the concurrency tests reconcile [`TemplateStore::resident_bytes`]
    /// against at quiescence.
    pub fn recount_bytes(&self) -> u64 {
        let stored: u64 = self
            .shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .unwrap()
                    .values()
                    .map(|set| set.total_bytes() as u64)
                    .sum::<u64>()
            })
            .sum();
        stored + self.reserved.load(Ordering::Relaxed)
    }

    fn add_resident(&self, tenant: u64, bytes: u64) {
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        let mut g = self.tenant_bytes[(tenant as usize) % SHARDS]
            .lock()
            .unwrap();
        *g.entry(tenant).or_insert(0) += bytes;
        drop(g);
        self.sync_gauge();
    }

    fn sub_resident(&self, tenant: u64, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        let mut g = self.tenant_bytes[(tenant as usize) % SHARDS]
            .lock()
            .unwrap();
        if let Some(v) = g.get_mut(&tenant) {
            *v = v.saturating_sub(bytes);
            if *v == 0 {
                g.remove(&tenant);
            }
        }
        drop(g);
        self.sync_gauge();
    }

    fn sync_gauge(&self) {
        if let Some(m) = self.metrics.get() {
            m.level_set(
                Level::TemplateBytesResident,
                self.resident.load(Ordering::Relaxed),
            );
        }
    }

    fn tick(&self, c: Counter, n: u64) {
        if n > 0 {
            if let Some(m) = self.metrics.get() {
                m.add(c, n);
            }
        }
    }

    /// Look up the best template for `args` under `key` and, when it can
    /// serve the call without a resize (or the set is already at `cap`
    /// variants), remove and return it. One checkout is one lookup:
    /// exactly one of `TemplateHits` / `TemplateMisses` ticks.
    ///
    /// The removed template's bytes leave the budget immediately, so a
    /// checked-out template that is later discarded (cost fallback,
    /// demotion) can never strand budget — only [`TemplateStore::admit`]
    /// re-charges it.
    pub fn checkout(&self, key: &StoreKey, args: &[Value], cap: usize) -> Checkout {
        let mut g = self.shards[key.shard()].map.lock().unwrap();
        let out = match g.get_mut(key) {
            None => Checkout::MissEmpty,
            Some(set) if set.is_empty() => Checkout::MissEmpty,
            Some(set) => match set.best_match(args) {
                None => Checkout::MissEmpty,
                Some((idx, dist)) => {
                    if dist == 0 || set.len() >= cap.max(1) {
                        let tpl = set.remove(idx);
                        if set.is_empty() {
                            g.remove(key);
                        }
                        Checkout::Hit(tpl)
                    } else {
                        Checkout::MissVariant
                    }
                }
            },
        };
        drop(g);
        match &out {
            Checkout::Hit(tpl) => {
                self.sub_resident(key.tenant, tpl.message_len() as u64);
                self.tick(Counter::TemplateHits, 1);
            }
            _ => self.tick(Counter::TemplateMisses, 1),
        }
        out
    }

    /// Remove and return the most recently used template under `key`
    /// without consulting `args` — the lease the manual fast path
    /// (`Client::template_mut` / `prepare`) takes. Not a send lookup:
    /// ticks neither hits nor misses.
    pub fn lease_front(&self, key: &StoreKey) -> Option<MessageTemplate> {
        let mut g = self.shards[key.shard()].map.lock().unwrap();
        let set = g.get_mut(key)?;
        if set.is_empty() {
            return None;
        }
        let tpl = set.remove(0);
        if set.is_empty() {
            g.remove(key);
        }
        drop(g);
        self.sub_resident(key.tenant, tpl.message_len() as u64);
        Some(tpl)
    }

    /// Store `template` as the MRU variant under `key`, keeping at most
    /// `cap` variants there, then enforce the tenant quota and global
    /// budget (cheapest-to-rebuild victims first). Returns the number of
    /// templates evicted to make room (0 when everything fit).
    pub fn admit(&self, key: StoreKey, template: MessageTemplate, cap: usize) -> u64 {
        let tenant = key.tenant;
        let bytes = template.message_len() as u64;
        let mut evicted = 0u64;
        let dropped = {
            let mut g = self.shards[key.shard()].map.lock().unwrap();
            g.entry(key).or_default().insert_evicting(template, cap)
        };
        for tpl in &dropped {
            self.sub_resident(tenant, tpl.message_len() as u64);
            evicted += 1;
        }
        self.add_resident(tenant, bytes);
        if self.tenant_quota > 0 {
            evicted += self.evict_until(Some(tenant), self.tenant_quota);
        }
        if self.budget > 0 {
            evicted += self.evict_until(None, self.budget);
        }
        self.tick(Counter::TemplateEvictions, evicted);
        evicted
    }

    /// A cost-gate fallback discarded a checked-out template. Its bytes
    /// already left the budget at checkout; this only records the loss.
    pub fn note_discard(&self, _template: &MessageTemplate) {
        self.tick(Counter::TemplateEvictions, 1);
    }

    /// Drop every template under `key` (degraded-mode demotion, manual
    /// eviction). Returns how many templates were removed.
    pub fn purge(&self, key: &StoreKey) -> usize {
        let mut g = self.shards[key.shard()].map.lock().unwrap();
        let Some(set) = g.remove(key) else {
            return 0;
        };
        drop(g);
        let n = set.len();
        let bytes = set.total_bytes() as u64;
        if bytes > 0 || n > 0 {
            self.sub_resident(key.tenant, bytes);
        }
        self.tick(Counter::TemplateEvictions, n as u64);
        n
    }

    /// Clone a same-structure template saved for a *different* endpoint of
    /// the *same tenant* — the §6 cross-endpoint sharing candidate,
    /// tenant-scoped so sharing never leaks bytes across isolation
    /// domains.
    pub fn find_shareable(&self, key: &StoreKey) -> Option<MessageTemplate> {
        for shard in &self.shards {
            let g = shard.map.lock().unwrap();
            let found = g.iter().find_map(|(k, set)| {
                (k.tenant == key.tenant
                    && k.key.signature == key.key.signature
                    && k.key.endpoint != key.key.endpoint)
                    .then(|| set.templates().first().cloned())
                    .flatten()
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Reserve non-evictable bytes against the budget (overlay window
    /// fragments live outside the template map but are template memory
    /// all the same). Reservation evicts templates to fit but is itself
    /// never evicted; pair with [`TemplateStore::release`].
    pub fn reserve(&self, tenant: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.reserved.fetch_add(bytes, Ordering::Relaxed);
        self.add_resident(tenant, bytes);
        let mut evicted = 0u64;
        if self.tenant_quota > 0 {
            evicted += self.evict_until(Some(tenant), self.tenant_quota);
        }
        if self.budget > 0 {
            evicted += self.evict_until(None, self.budget);
        }
        self.tick(Counter::TemplateEvictions, evicted);
    }

    /// Return bytes previously taken with [`TemplateStore::reserve`].
    pub fn release(&self, tenant: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.reserved.fetch_sub(bytes, Ordering::Relaxed);
        self.sub_resident(tenant, bytes);
    }

    /// Evict cheapest-to-rebuild templates until the watched byte count
    /// (one tenant's, or the global total) is back under `limit`.
    /// Locks one shard at a time — never two — so concurrent admits
    /// cannot deadlock; the limit is enforced at every admission
    /// boundary, with transient overshoot bounded by in-flight admits.
    fn evict_until(&self, tenant: Option<u64>, limit: u64) -> u64 {
        let mut evicted = 0u64;
        loop {
            let current = match tenant {
                Some(t) => self.tenant_resident_bytes(t),
                None => self.resident.load(Ordering::Relaxed),
            };
            if current <= limit {
                break;
            }
            // Scan for the globally cheapest victim by rebuild estimate.
            let mut victim: Option<(u64, usize, StoreKey)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let g = shard.map.lock().unwrap();
                for (k, set) in g.iter() {
                    if tenant.is_some_and(|t| k.tenant != t) {
                        continue;
                    }
                    for tpl in set.templates() {
                        let score = tpl.rebuild_estimate();
                        if victim.as_ref().is_none_or(|(s, _, _)| score < *s) {
                            victim = Some((score, i, k.clone()));
                        }
                    }
                }
            }
            let Some((_, shard_idx, key)) = victim else {
                // Nothing evictable (reservations alone exceed the limit).
                break;
            };
            let mut g = self.shards[shard_idx].map.lock().unwrap();
            let Some(set) = g.get_mut(&key) else {
                continue; // raced with a concurrent purge; rescan
            };
            let Some(idx) = set
                .templates()
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.rebuild_estimate())
                .map(|(i, _)| i)
            else {
                continue;
            };
            let tpl = set.remove(idx);
            if set.is_empty() {
                g.remove(&key);
            }
            drop(g);
            self.sub_resident(key.tenant, tpl.message_len() as u64);
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::schema::{OpDesc, TypeDesc};
    use bsoap_convert::ScalarKind;
    use bsoap_obs::EngineStats;

    fn arr_op() -> OpDesc {
        OpDesc::single(
            "f",
            "urn:t",
            "a",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )
    }

    fn arr_tpl(n: usize) -> MessageTemplate {
        MessageTemplate::build(
            EngineConfig::paper_default(),
            &arr_op(),
            &[Value::DoubleArray(vec![0.5; n])],
        )
        .unwrap()
    }

    fn skey(tenant: u64, endpoint: &str) -> StoreKey {
        StoreKey::new(tenant, TemplateKey::new(endpoint, &arr_op()))
    }

    #[test]
    fn checkout_admit_round_trip_accounts_bytes() {
        let store = TemplateStore::unbounded();
        let tpl = arr_tpl(8);
        let bytes = tpl.message_len() as u64;
        store.admit(skey(0, "ep"), tpl, 1);
        assert_eq!(store.resident_bytes(), bytes);
        assert_eq!(store.tenant_resident_bytes(0), bytes);
        assert_eq!(store.recount_bytes(), bytes);

        let out = store
            .checkout(&skey(0, "ep"), &[Value::DoubleArray(vec![0.5; 8])], 1)
            .hit()
            .expect("exact-geometry hit");
        assert_eq!(store.resident_bytes(), 0, "checkout frees bytes at once");
        assert_eq!(store.tenant_resident_bytes(0), 0);
        store.admit(skey(0, "ep"), out, 1);
        assert_eq!(store.resident_bytes(), bytes);
    }

    #[test]
    fn hits_plus_misses_reconcile_with_checkouts() {
        let store = TemplateStore::unbounded();
        let m = Metrics::shared();
        store.set_metrics(Arc::clone(&m));
        let args = [Value::DoubleArray(vec![0.5; 4])];
        let mut checkouts = 0u64;

        // Miss on the empty store, miss-variant with room, hit when full.
        assert!(store.checkout(&skey(0, "ep"), &args, 2).hit().is_none());
        checkouts += 1;
        store.admit(skey(0, "ep"), arr_tpl(9), 2);
        assert!(
            store.checkout(&skey(0, "ep"), &args, 2).hit().is_none(),
            "resize needed and the set has room: build a variant instead"
        );
        checkouts += 1;
        store.admit(skey(0, "ep"), arr_tpl(4), 2);
        let hit = store.checkout(&skey(0, "ep"), &args, 2).hit();
        checkouts += 1;
        store.admit(skey(0, "ep"), hit.unwrap(), 2);

        let s = EngineStats::snapshot(&m);
        assert_eq!(s.get(Counter::TemplateHits), 1);
        assert_eq!(s.get(Counter::TemplateMisses), 2);
        assert_eq!(
            s.get(Counter::TemplateHits) + s.get(Counter::TemplateMisses),
            checkouts
        );
    }

    #[test]
    fn budget_evicts_cheapest_rebuild_first() {
        // Budget sized so the expensive (large) template plus one small
        // one fit, but not two smalls more: the small, cheap-to-rebuild
        // templates must be the victims while the expensive one survives.
        let expensive = arr_tpl(256);
        let small = arr_tpl(4);
        assert!(expensive.rebuild_estimate() > small.rebuild_estimate());
        let budget = expensive.message_len() + small.message_len() + 8;
        let store = TemplateStore::new(budget, 0);
        let m = Metrics::shared();
        store.set_metrics(Arc::clone(&m));

        store.admit(skey(0, "big"), expensive, 1);
        store.admit(skey(0, "s1"), arr_tpl(4), 1);
        // Over budget now: the cheapest of the two smalls goes, never the
        // expensive template.
        store.admit(skey(0, "s2"), arr_tpl(4), 1);
        assert!(store.resident_bytes() <= budget as u64);
        assert!(
            store.contains(&skey(0, "big")),
            "higher rebuild_estimate survives lower under pressure"
        );
        assert_eq!(
            store.template_count(),
            2,
            "exactly one small template was evicted"
        );
        let s = EngineStats::snapshot(&m);
        assert_eq!(s.get(Counter::TemplateEvictions), 1);
        assert_eq!(store.recount_bytes(), store.resident_bytes());
    }

    #[test]
    fn tenant_quota_only_evicts_the_offender() {
        let probe = arr_tpl(4).message_len();
        // Quota fits two small templates per tenant, not three.
        let quota = 2 * probe + 4;
        let store = TemplateStore::new(0, quota);
        store.admit(skey(1, "a"), arr_tpl(4), 1);
        store.admit(skey(2, "a"), arr_tpl(4), 1);
        store.admit(skey(1, "b"), arr_tpl(4), 1);
        store.admit(skey(1, "c"), arr_tpl(4), 1); // tenant 1 over quota
        assert!(store.tenant_resident_bytes(1) <= quota as u64);
        assert_eq!(
            store.tenant_resident_bytes(2),
            probe as u64,
            "tenant 2 untouched by tenant 1's overflow"
        );
        assert_eq!(store.recount_bytes(), store.resident_bytes());
    }

    #[test]
    fn per_key_cap_returns_bytes_of_lru_variant() {
        let store = TemplateStore::unbounded();
        store.admit(skey(0, "ep"), arr_tpl(2), 2);
        store.admit(skey(0, "ep"), arr_tpl(3), 2);
        let two = store.resident_bytes();
        store.admit(skey(0, "ep"), arr_tpl(5), 2); // cap 2: n=2 falls out
        assert!(store.resident_bytes() > 0);
        assert!(
            store.resident_bytes() != two + arr_tpl(5).message_len() as u64,
            "the evicted variant's bytes were returned to the budget"
        );
        assert_eq!(store.template_count(), 2);
        assert_eq!(store.recount_bytes(), store.resident_bytes());
    }

    #[test]
    fn purge_and_discard_accounting() {
        let store = TemplateStore::unbounded();
        let m = Metrics::shared();
        store.set_metrics(Arc::clone(&m));
        store.admit(skey(0, "ep"), arr_tpl(2), 2);
        store.admit(skey(0, "ep"), arr_tpl(3), 2);
        assert_eq!(store.purge(&skey(0, "ep")), 2);
        assert_eq!(store.resident_bytes(), 0);
        assert!(!store.contains(&skey(0, "ep")));

        // Cost-fallback discard: bytes already freed at checkout, the
        // discard only records the eviction.
        store.admit(skey(0, "ep"), arr_tpl(4), 1);
        let t = store
            .checkout(&skey(0, "ep"), &[Value::DoubleArray(vec![0.5; 4])], 1)
            .hit()
            .unwrap();
        assert_eq!(store.resident_bytes(), 0);
        store.note_discard(&t);
        let s = EngineStats::snapshot(&m);
        assert_eq!(s.get(Counter::TemplateEvictions), 3);
    }

    #[test]
    fn reservations_charge_the_budget_but_never_evict_themselves() {
        let probe = arr_tpl(4).message_len();
        let budget = 3 * probe;
        let store = TemplateStore::new(budget, 0);
        store.admit(skey(0, "a"), arr_tpl(4), 1);
        store.reserve(0, (2 * probe + probe / 2) as u64);
        // The reservation pushed the store over budget; the template is
        // the only evictable thing.
        assert_eq!(store.template_count(), 0);
        let floor = store.resident_bytes();
        store.reserve(0, budget as u64); // way over: nothing left to evict
        assert_eq!(store.resident_bytes(), floor + budget as u64);
        store.release(0, budget as u64);
        assert_eq!(store.resident_bytes(), floor);
        assert_eq!(store.recount_bytes(), store.resident_bytes());
    }

    #[test]
    fn find_shareable_is_tenant_scoped() {
        let store = TemplateStore::unbounded();
        store.admit(skey(7, "a"), arr_tpl(5), 1);
        assert!(store.find_shareable(&skey(7, "b")).is_some());
        assert!(
            store.find_shareable(&skey(8, "b")).is_none(),
            "no cross-tenant sharing"
        );
        assert!(
            store.find_shareable(&skey(7, "a")).is_none(),
            "same endpoint is a direct hit, not a share"
        );
    }

    #[test]
    fn level_gauge_tracks_resident_bytes() {
        let store = TemplateStore::unbounded();
        let m = Metrics::shared();
        store.set_metrics(Arc::clone(&m));
        store.admit(skey(0, "ep"), arr_tpl(8), 1);
        assert_eq!(
            m.level_get(Level::TemplateBytesResident),
            store.resident_bytes()
        );
        store.purge(&skey(0, "ep"));
        assert_eq!(m.level_get(Level::TemplateBytesResident), 0);
    }
}
