//! Differential flush: rewrite only dirty values, expanding fields on
//! demand via stealing and shifting (§3.2).
//!
//! ## Parallel flush
//!
//! With [`crate::EngineConfig::parallel_workers`] ≥ 2 the flush shards
//! work by *chunk boundary*: each chunk's dirty entries form a run, runs
//! are distributed over scoped worker threads, and every worker rewrites
//! the in-width dirty values of its chunks concurrently. This is safe —
//! and byte-identical to the sequential flush — because an in-width
//! rewrite only touches bytes inside its own field region of its own
//! chunk and never changes the chunk's length or any field's location.
//!
//! Entries whose new value exceeds the field width need stealing or
//! shifting, which rearranges chunk bytes and downstream DUT locations;
//! those are *deferred* and replayed sequentially, in ascending entry
//! order, after the workers join — exactly the order and state the
//! sequential path would have seen. One subtlety: stealing from entry `i`
//! inspects entry `i+1`'s pre-patch geometry, so when stealing is enabled
//! an entry directly following a deferred entry in the same chunk is
//! deferred too (contagion) rather than rewritten concurrently.

use super::{MessageTemplate, SendReport, SendTier};
use crate::config::GrowthPolicy;
use crate::dut::DutEntry;
use bsoap_obs::{Counter, Recorder, TraceKind};

/// One parallel-flush work unit: the global index of the run's first
/// entry, the run's DUT entries, and the chunk buffer they live in.
type FlushRun<'a> = (usize, &'a mut [DutEntry], &'a mut [u8]);

/// Counters for one flush (folded into the report and lifetime stats).
#[derive(Default)]
struct PatchCounters {
    values_written: usize,
    shifts: usize,
    steals: usize,
    splits: usize,
    shifted_bytes: u64,
    dut_fixups: u64,
}

impl MessageTemplate {
    /// Re-serialize all dirty leaves into the stored message.
    pub(crate) fn flush_dirty(&mut self) -> SendReport {
        let tier = self.pending_tier();
        let dirty = self.dut.dirty_count();
        let flush_start = self.metrics.as_ref().map(|m| m.now_ns());
        let mut counters = PatchCounters::default();

        if self.dut.dirty_count() > 0 && !self.try_flush_parallel(&mut counters) {
            self.flush_sequential(&mut counters);
        }

        self.structure_changed = false;
        match tier {
            SendTier::ContentMatch => self.stats.content += 1,
            SendTier::PerfectStructural => self.stats.perfect += 1,
            SendTier::PartialStructural => self.stats.partial += 1,
            SendTier::FirstTime => unreachable!("flush never reports first-time"),
        }
        self.stats.values_written += counters.values_written as u64;
        self.stats.shifts += counters.shifts as u64;
        self.stats.steals += counters.steals as u64;
        self.stats.splits += counters.splits as u64;
        self.stats.shifted_bytes += counters.shifted_bytes;

        // Scoop chunk-store churn accumulated since the last flush (this
        // includes resize work done in update_args before this flush).
        let churn = self.store.take_counters();
        if let Some(m) = &self.metrics {
            m.add(Counter::send(tier.obs()), 1);
            m.add(Counter::ChunkGrows, churn.grows);
            m.add(Counter::ChunkMerges, churn.merges);
            m.add(Counter::ChunkMovedBytes, churn.moved_bytes);
            m.add(Counter::ValuesWritten, counters.values_written as u64);
            m.add(Counter::Shifts, counters.shifts as u64);
            m.add(Counter::Steals, counters.steals as u64);
            m.add(Counter::Splits, counters.splits as u64);
            m.add(Counter::ShiftedBytes, counters.shifted_bytes);
            m.add(Counter::DutFixups, counters.dut_fixups);
            m.trace(TraceKind::SendSpan {
                tier: tier.obs(),
                dirty: dirty as u64,
                values_written: counters.values_written as u64,
                shifted_bytes: counters.shifted_bytes,
                shifts: counters.shifts as u64,
                steals: counters.steals as u64,
                splits: counters.splits as u64,
                dut_fixups: counters.dut_fixups,
                bytes: self.store.total_len() as u64,
                elapsed_ns: m.now_ns().saturating_sub(flush_start.unwrap_or(0)),
            });
        }

        SendReport {
            tier,
            bytes: self.store.total_len(),
            values_written: counters.values_written,
            shifts: counters.shifts,
            steals: counters.steals,
            splits: counters.splits,
        }
    }

    /// The classic sequential flush: serialize and patch each dirty leaf
    /// in ascending entry order.
    fn flush_sequential(&mut self, counters: &mut PatchCounters) {
        // Serialize into a detached scratch to sidestep borrow overlap
        // with the DUT entry we read the value from.
        let mut scratch = std::mem::take(&mut self.scratch);
        let float = self.config.float;
        let n = self.dut.len();
        for i in 0..n {
            if !self.dut.entry(i).dirty {
                continue;
            }
            self.dut
                .entry(i)
                .value
                .serialize_into_with(&mut scratch, float);
            self.patch_entry(i, &scratch, counters);
            self.dut.clear_dirty(i);
        }
        self.scratch = scratch;
    }

    /// Chunk-sharded parallel flush. Returns `false` (without touching
    /// anything) when the configuration or dirty-set shape does not
    /// warrant threads; the caller then runs the sequential path.
    fn try_flush_parallel(&mut self, counters: &mut PatchCounters) -> bool {
        if self.config.parallel_workers < 2 {
            return false;
        }

        // Find per-chunk runs of dirty work. Entries are stored in
        // document order, so each chunk's entries occupy one contiguous
        // index range; a run is the `first_dirty..=last_dirty` span of a
        // chunk that has any dirt (clean entries inside are skipped by the
        // worker). Ranges instead of index lists keep this pre-pass
        // allocation-light and let workers own their entries mutably.
        let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (i, e) in self.dut.entries().iter().enumerate() {
            if !e.dirty {
                continue;
            }
            let chunk = e.loc.chunk as usize;
            match runs.last_mut() {
                Some((c, r)) if *c == chunk => r.end = i + 1,
                other => {
                    debug_assert!(other.is_none_or(|(c, _)| *c < chunk), "document order");
                    runs.push((chunk, i..i + 1));
                }
            }
        }
        if runs.len() < 2 {
            return false; // all dirt in one chunk: threads cannot help
        }

        let nworkers = self.config.parallel_workers.min(runs.len());
        let float = self.config.float;
        let steal = self.config.steal;

        // Split the borrow: each worker owns disjoint slices of the DUT
        // table and disjoint chunk buffers; `self` is untouched until they
        // join. Slicing the table mutably lets workers commit `ser_len`
        // and dirty bits themselves, so the post-join pass is O(deferred)
        // rather than O(dirty).
        let MessageTemplate { store, dut, .. } = &mut *self;
        let mut bufs: Vec<Option<&mut [u8]>> =
            store.chunk_bufs_mut().into_iter().map(Some).collect();
        let mut tail: &mut [DutEntry] = dut.entries_mut_raw();
        let mut consumed = 0usize;
        // (global index of run start, the run's entries, its chunk buffer)
        let mut sliced: Vec<FlushRun> = Vec::with_capacity(runs.len());
        for (chunk, r) in runs {
            let (_, rest) = std::mem::take(&mut tail).split_at_mut(r.start - consumed);
            let (run, rest) = rest.split_at_mut(r.end - r.start);
            tail = rest;
            consumed = r.end;
            let buf = bufs[chunk].take().expect("one run per chunk");
            sliced.push((r.start, run, buf));
        }

        // Greedy least-loaded assignment of runs (largest first) so one
        // hot chunk does not serialize the whole flush behind it.
        sliced.sort_by_key(|(_, run, _)| std::cmp::Reverse(run.len()));
        let mut buckets: Vec<Vec<FlushRun>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; nworkers];
        for item in sliced {
            let w = (0..nworkers)
                .min_by_key(|&w| load[w])
                .expect("nworkers >= 2");
            load[w] += item.1.len();
            buckets[w].push(item);
        }

        // Each worker returns (entries written, deferred global indices).
        let results: Vec<(usize, Vec<usize>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut scratch: Vec<u8> = Vec::with_capacity(64);
                        let mut cleared = 0usize;
                        let mut deferred: Vec<usize> = Vec::new();
                        for (start, run, buf) in bucket {
                            let mut prev_deferred = false;
                            for (i, e) in run.iter_mut().enumerate() {
                                if !e.dirty {
                                    prev_deferred = false;
                                    continue;
                                }
                                // Contagion: a steal by the deferred
                                // predecessor will read this entry's
                                // pre-patch geometry — keep it pristine.
                                if steal && prev_deferred {
                                    deferred.push(start + i);
                                    continue;
                                }
                                e.value.serialize_into_with(&mut scratch, float);
                                if scratch.len() as u32 > e.width {
                                    deferred.push(start + i);
                                    prev_deferred = true;
                                    continue;
                                }
                                write_in_width(buf, e, &scratch);
                                e.ser_len = scratch.len() as u32;
                                e.dirty = false;
                                cleared += 1;
                                prev_deferred = false;
                            }
                        }
                        (cleared, deferred)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flush worker panicked"))
                .collect()
        });

        // Workers cleared dirty bits directly; settle the aggregate count,
        // then replay deferred (expanding) entries in ascending order —
        // sequential semantics.
        let mut deferred_all: Vec<usize> = Vec::new();
        for (cleared, deferred) in results {
            counters.values_written += cleared;
            self.dut.note_bits_cleared(cleared);
            deferred_all.extend(deferred);
        }
        deferred_all.sort_unstable();
        if !deferred_all.is_empty() {
            let mut scratch = std::mem::take(&mut self.scratch);
            let float = self.config.float;
            for idx in deferred_all {
                self.dut
                    .entry(idx)
                    .value
                    .serialize_into_with(&mut scratch, float);
                self.patch_entry(idx, &scratch, counters);
                self.dut.clear_dirty(idx);
            }
            self.scratch = scratch;
        }
        true
    }

    /// Write the (already serialized) bytes of leaf `i` into its field,
    /// expanding the field if required.
    fn patch_entry(&mut self, i: usize, bytes: &[u8], counters: &mut PatchCounters) {
        counters.values_written += 1;
        let e = self.dut.entry(i);
        let new_len = bytes.len() as u32;

        if new_len == e.ser_len {
            // Same length: overwrite the value bytes only; tags and padding
            // are untouched (the cheapest dirty-write path).
            self.store.write_at(e.loc, bytes);
            return;
        }

        if new_len <= e.width {
            // Fits in the allocated field: rewrite value + closing tag +
            // whitespace pad (§3.2's "closing tag shift").
            self.rewrite_region(i, bytes, None);
            return;
        }

        // Expansion required: the new serialized form exceeds field width.
        let target_width = match self.config.growth {
            GrowthPolicy::Exact => new_len,
            GrowthPolicy::ToMax => e
                .kind
                .max_width()
                .map(|m| (m as u32).max(new_len))
                .unwrap_or(new_len),
        };
        let delta = target_width - e.width;

        if self.config.steal && self.try_steal(i, delta) {
            counters.steals += 1;
            self.rewrite_region(i, bytes, Some(target_width));
            return;
        }

        self.make_gap_at_region_end(i, delta, counters);
        counters.shifts += 1;
        self.rewrite_region(i, bytes, Some(target_width));
    }

    /// Compose and write the full field region `[value][suffix][pad]`.
    ///
    /// `new_width` updates the field width first (after a steal/shift made
    /// room); `None` keeps the current width.
    fn rewrite_region(&mut self, i: usize, bytes: &[u8], new_width: Option<u32>) {
        let e = self.dut.entry(i);
        let (loc, old_ser, suffix_len) = (e.loc, e.ser_len, e.suffix_len);
        let width = new_width.unwrap_or(e.width);
        debug_assert!(bytes.len() as u32 <= width);

        let mut region = std::mem::take(&mut self.region_scratch);
        region.clear();
        region.extend_from_slice(bytes);
        // The closing tag still sits after the OLD value length; carry it over.
        let suffix_loc = bsoap_chunks::Loc {
            chunk: loc.chunk,
            offset: loc.offset + old_ser,
        };
        region.extend_from_slice(self.store.read_at(suffix_loc, suffix_len as usize));
        region.resize((width + suffix_len) as usize, b' ');
        self.store.write_at(loc, &region);
        self.region_scratch = region;

        let e = self.dut.entry_mut_raw(i);
        e.ser_len = bytes.len() as u32;
        e.width = width;
    }

    /// Try to satisfy a `delta`-byte expansion of leaf `i` by stealing
    /// padding from the next leaf in the same chunk (§3.2: "stealing extra
    /// space from neighboring fields, instead of shifting entire portions
    /// of message chunks").
    ///
    /// On success the span between this field's region end and the
    /// neighbor's value+suffix end is moved right by `delta` (a handful of
    /// tag bytes), the neighbor's width shrinks, and this field's region
    /// gains `delta` bytes.
    fn try_steal(&mut self, i: usize, delta: u32) -> bool {
        let j = i + 1;
        if j >= self.dut.len() {
            return false;
        }
        let e = self.dut.entry(i);
        let n = self.dut.entry(j);
        if n.loc.chunk != e.loc.chunk {
            return false;
        }
        if n.pad() < delta || n.width - delta < n.ser_len {
            return false;
        }
        let span_start = e.region_end();
        let span_end = n.loc.offset + n.ser_len + n.suffix_len;
        debug_assert!(span_start <= n.loc.offset);
        let chunk = e.loc.chunk;

        self.store.move_range_right(
            chunk as usize,
            span_start as usize,
            span_end as usize,
            delta as usize,
        );

        // Fix the neighbor's geometry.
        {
            let n = self.dut.entry_mut_raw(j);
            n.loc.offset += delta;
            n.width -= delta;
        }
        // Markers inside or at the start of the moved span ride along.
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= span_start && m.offset < span_end {
                    m.offset += delta;
                }
            }
        }
        true
    }

    /// Open a `delta`-byte gap at the end of leaf `i`'s field region by
    /// shifting the chunk tail, growing or splitting the chunk as the
    /// config allows. Fixes all downstream DUT pointers and markers.
    fn make_gap_at_region_end(&mut self, i: usize, delta: u32, counters: &mut PatchCounters) {
        let e = self.dut.entry(i);
        let chunk = e.loc.chunk as usize;
        let gap_at = e.region_end();

        if !self.store.try_grow(chunk, delta as usize) {
            // Split at this field's region end: the whole tail moves to a
            // fresh chunk; this bounds future shifting to the chunk size.
            self.store.split_chunk(chunk, gap_at as usize);
            counters.splits += 1;
            counters.dut_fixups += self.apply_split_fixups(i, chunk as u32, gap_at);
            if !self.store.try_grow(chunk, delta as usize) {
                // A single region larger than the threshold: correctness
                // over policy.
                self.store.grow_unbounded(chunk, delta as usize);
            }
        }

        let tail = self.store.chunk(chunk).len() as u32 - gap_at;
        counters.shifted_bytes += tail as u64;
        self.store
            .shift_tail_right(chunk, gap_at as usize, delta as usize);
        counters.dut_fixups += self.apply_shift_fixups(i, chunk as u32, gap_at, delta);
    }

    /// After inserting `delta` bytes at `(chunk, from)`: move every later
    /// entry and marker at-or-past the insertion point right by `delta`.
    /// Returns the number of DUT entries whose location was adjusted.
    fn apply_shift_fixups(&mut self, after_entry: usize, chunk: u32, from: u32, delta: u32) -> u64 {
        let mut fixed = 0u64;
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk != chunk {
                break; // document order: once past this chunk, done
            }
            if e.loc.offset >= from {
                e.loc.offset += delta;
                fixed += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= from {
                    m.offset += delta;
                }
            }
        }
        fixed
    }

    /// After splitting `chunk` at `split_at`: rehome entries and markers in
    /// the moved tail to `(chunk+1, offset−split_at)` and bump the chunk
    /// index of everything in later chunks. Returns the number of DUT
    /// entries rehomed or renumbered.
    fn apply_split_fixups(&mut self, after_entry: usize, chunk: u32, split_at: u32) -> u64 {
        let mut fixed = 0u64;
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk == chunk {
                debug_assert!(e.loc.offset >= split_at, "entry left of split after pivot");
                e.loc.chunk = chunk + 1;
                e.loc.offset -= split_at;
                fixed += 1;
            } else if e.loc.chunk > chunk {
                e.loc.chunk += 1;
                fixed += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= split_at {
                    m.chunk = chunk + 1;
                    m.offset -= split_at;
                } else if m.chunk > chunk {
                    m.chunk += 1;
                }
            }
        }
        fixed
    }
}

/// In-place region rewrite on a raw chunk buffer: the thread-safe subset
/// of [`MessageTemplate::rewrite_region`] for values that fit their field.
///
/// Produces the identical `[value][suffix][pad]` layout: the closing tag
/// is slid from its old position (after `ser_len` bytes) to the new value
/// end, then the remainder of the region is padded with spaces. The
/// suffix move runs first because the regions may overlap.
fn write_in_width(buf: &mut [u8], e: &DutEntry, bytes: &[u8]) {
    let off = e.loc.offset as usize;
    let old_ser = e.ser_len as usize;
    let sfx = e.suffix_len as usize;
    let width = e.width as usize;
    let new_len = bytes.len();
    debug_assert!(new_len <= width);
    if new_len == old_ser {
        // Same length: value bytes only, tags and padding untouched.
        buf[off..off + new_len].copy_from_slice(bytes);
        return;
    }
    buf.copy_within(off + old_ser..off + old_ser + sfx, off + new_len);
    buf[off..off + new_len].copy_from_slice(bytes);
    buf[off + new_len + sfx..off + width + sfx].fill(b' ');
}
