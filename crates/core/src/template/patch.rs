//! Differential flush: rewrite only dirty values, expanding fields on
//! demand via stealing and shifting (§3.2).
//!
//! ## Plan/execute split (default, [`crate::config::FlushMode::Planned`])
//!
//! The planner (`planner.rs`) computes a read-only [`SendPlan`]; this
//! module's executor applies it in three phases, each byte-equivalent to
//! the legacy interleaved order because steals never change a region's end
//! position and shifts only move bytes at-or-past a region end:
//!
//! 1. **Steals** (ascending): move each steal span right, narrow the
//!    neighbor. The plan's simulated widths match live geometry exactly.
//! 2. **Coalesced shifts**: group planned gaps by chunk and open them all
//!    with one right-to-left pass ([`bsoap_chunks::ChunkStore::open_gaps_right`])
//!    and one batched DUT fixup — O(chunk) per chunk instead of
//!    O(shifts × chunk). When a chunk cannot grow, it splits at the first
//!    gap and the remaining gaps re-group in the new tail chunk.
//! 3. **Writes** (ascending, parallelizable by chunk): every region's final
//!    location and width are settled, so writing `[value][suffix][pad]`
//!    from the plan blob is embarrassingly parallel — no contagion rule.
//!
//! ## Parallel flush (legacy path)
//!
//! With [`crate::EngineConfig::parallel_workers`] ≥ 2 the flush shards
//! work by *chunk boundary*: each chunk's dirty entries form a run, runs
//! are distributed over scoped worker threads, and every worker rewrites
//! the in-width dirty values of its chunks concurrently. This is safe —
//! and byte-identical to the sequential flush — because an in-width
//! rewrite only touches bytes inside its own field region of its own
//! chunk and never changes the chunk's length or any field's location.
//!
//! Entries whose new value exceeds the field width need stealing or
//! shifting, which rearranges chunk bytes and downstream DUT locations;
//! those are *deferred* and replayed sequentially, in ascending entry
//! order, after the workers join — exactly the order and state the
//! sequential path would have seen. One subtlety: stealing from entry `i`
//! inspects entry `i+1`'s pre-patch geometry, so when stealing is enabled
//! an entry directly following a deferred entry in the same chunk is
//! deferred too (contagion) rather than rewritten concurrently.

use super::{MessageTemplate, SendReport, SendTier};
use crate::config::{FlushMode, GrowthPolicy, KernelPolicy};
use crate::dut::DutEntry;
use crate::error::EngineError;
use crate::plan::{InjectedFault, OpKind, PlannedOp, SendPlan};
use bsoap_obs::{Counter, Recorder, TraceKind};

/// One parallel-flush work unit: the global index of the run's first
/// entry, the run's DUT entries, and the chunk buffer they live in.
type FlushRun<'a> = (usize, &'a mut [DutEntry], &'a mut [u8]);

/// One parallel-write work unit (planned executor): the run's ops, its
/// first entry's global index, the run's DUT entries, and their chunk.
type WriteRun<'a, 'p> = (&'p [PlannedOp], usize, &'a mut [DutEntry], &'a mut [u8]);

/// Counters for one flush. [`MessageTemplate::finish_flush`] is the single
/// fold that turns these into lifetime stats, obs counters, the trace span,
/// and the [`SendReport`] — new counters are added there and here only.
#[derive(Default)]
struct PatchCounters {
    values_written: usize,
    shifts: usize,
    steals: usize,
    splits: usize,
    shifted_bytes: u64,
    dut_fixups: u64,
    coalesced_passes: u64,
}

impl MessageTemplate {
    /// Re-serialize all dirty leaves into the stored message, via the
    /// configured flush path.
    pub(crate) fn flush_dirty(&mut self) -> SendReport {
        match self.config.flush_mode {
            FlushMode::Planned => {
                let plan = self
                    .plan()
                    .expect("planning is infallible without injected faults");
                self.flush_planned(&plan)
                    .expect("a freshly computed plan cannot be stale")
            }
            FlushMode::Legacy => {
                let tier = self.pending_tier();
                let dirty = self.dut.dirty_count();
                let flush_start = self.metrics.as_ref().map(|m| m.now_ns());
                let mut counters = PatchCounters::default();
                if dirty > 0 && !self.try_flush_parallel(&mut counters) {
                    self.flush_sequential(&mut counters);
                }
                self.finish_flush(tier, dirty, flush_start, counters)
            }
        }
    }

    /// Apply a previously computed [`SendPlan`] (the execute half of the
    /// plan/execute split). The template must not have been mutated since
    /// the plan was computed; a drifted stamp returns
    /// [`EngineError::PlanStale`] without touching anything.
    pub fn flush_planned(&mut self, plan: &SendPlan) -> Result<SendReport, EngineError> {
        let stamp = self.plan_stamp();
        if plan.stamp != stamp {
            return Err(EngineError::PlanStale {
                why: format!("plan stamp {:?} vs template {:?}", plan.stamp, stamp),
            });
        }
        let tier = plan.tier;
        let dirty = plan.stamp.dirty;
        let flush_start = self.metrics.as_ref().map(|m| m.now_ns());
        let mut counters = PatchCounters::default();
        self.execute_plan(plan, &mut counters);
        Ok(self.finish_flush(tier, dirty, flush_start, counters))
    }

    /// The single counter fold shared by every flush path: lifetime stats,
    /// obs counters (including chunk-store churn scooped since the last
    /// flush — resize work included), the per-send trace span, and the
    /// report.
    fn finish_flush(
        &mut self,
        tier: SendTier,
        dirty: usize,
        flush_start: Option<u64>,
        counters: PatchCounters,
    ) -> SendReport {
        self.structure_changed = false;
        match tier {
            SendTier::ContentMatch => self.stats.content += 1,
            SendTier::PerfectStructural => self.stats.perfect += 1,
            SendTier::PartialStructural => self.stats.partial += 1,
            SendTier::FirstTime => unreachable!("flush never reports first-time"),
        }
        self.stats.values_written += counters.values_written as u64;
        self.stats.shifts += counters.shifts as u64;
        self.stats.steals += counters.steals as u64;
        self.stats.splits += counters.splits as u64;
        self.stats.shifted_bytes += counters.shifted_bytes;

        let churn = self.store.take_counters();
        let simd_hits = bsoap_kernels::take_simd_hits();
        if let Some(m) = &self.metrics {
            m.add(Counter::send(tier.obs()), 1);
            m.add(
                match self.config.wire_format {
                    crate::config::WireFormat::SoapXml => Counter::SendsXml,
                    crate::config::WireFormat::CompactBinary => Counter::SendsBinary,
                },
                1,
            );
            m.add(Counter::SimdKernelHits, simd_hits);
            m.add(Counter::ChunkGrows, churn.grows);
            m.add(Counter::ChunkMerges, churn.merges);
            m.add(Counter::ChunkMovedBytes, churn.moved_bytes);
            m.add(Counter::ValuesWritten, counters.values_written as u64);
            m.add(Counter::Shifts, counters.shifts as u64);
            m.add(Counter::Steals, counters.steals as u64);
            m.add(Counter::Splits, counters.splits as u64);
            m.add(Counter::ShiftedBytes, counters.shifted_bytes);
            m.add(Counter::DutFixups, counters.dut_fixups);
            m.add(Counter::CoalescedShiftPasses, counters.coalesced_passes);
            m.trace(TraceKind::SendSpan {
                tier: tier.obs(),
                dirty: dirty as u64,
                values_written: counters.values_written as u64,
                shifted_bytes: counters.shifted_bytes,
                shifts: counters.shifts as u64,
                steals: counters.steals as u64,
                splits: counters.splits as u64,
                dut_fixups: counters.dut_fixups,
                bytes: self.store.total_len() as u64,
                elapsed_ns: m.now_ns().saturating_sub(flush_start.unwrap_or(0)),
            });
        }

        SendReport {
            tier,
            bytes: self.store.total_len(),
            values_written: counters.values_written,
            shifts: counters.shifts,
            steals: counters.steals,
            splits: counters.splits,
            fell_back: false,
        }
    }

    // ------------------------------------------------------------------
    // Planned executor
    // ------------------------------------------------------------------

    /// Apply a validated plan: queued resizes first (re-planning the leaf
    /// patches against the post-resize geometry), then the three phases.
    fn execute_plan(&mut self, plan: &SendPlan, counters: &mut PatchCounters) {
        // The injected-executor-fault fires after validation but before any
        // mutation: the atomicity tests assert the template is untouched.
        assert!(
            self.fault != Some(InjectedFault::ExecutorPanic),
            "injected executor fault"
        );
        if plan.deferred_resizes {
            let pending = std::mem::take(&mut self.pending_resizes);
            for (idx, value) in &pending {
                self.resize_array(*idx, value)
                    .expect("resize tail validated at update_args time");
            }
            let inner = self.compute_plan();
            debug_assert!(!inner.deferred_resizes);
            self.execute_ops(&inner, counters);
        } else {
            self.execute_ops(plan, counters);
        }
    }

    /// The three executor phases over a resize-free plan.
    fn execute_ops(&mut self, plan: &SendPlan, counters: &mut PatchCounters) {
        // Phase 1: steals, ascending. A steal never moves its own region's
        // end, so later gap positions are unaffected.
        for op in &plan.ops {
            if let OpKind::Steal { delta, .. } = op.kind {
                self.execute_steal(op.entry, delta);
                counters.steals += 1;
            }
        }
        // Phase 2: coalesced shifts, grouped by (live) chunk.
        let shifts: Vec<(usize, u32)> = plan
            .ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Shift { delta, .. } => Some((op.entry, delta)),
                _ => None,
            })
            .collect();
        let mut i = 0;
        while i < shifts.len() {
            let chunk = self.dut.entry(shifts[i].0).loc.chunk;
            let mut end = i + 1;
            while end < shifts.len() && self.dut.entry(shifts[end].0).loc.chunk == chunk {
                end += 1;
            }
            self.execute_shift_group(&shifts[i..end], counters);
            i = end;
        }
        // Phase 3: writes. Locations and widths are final.
        self.execute_writes(&plan.ops, &plan.blob, counters);
    }

    /// Apply one planned steal (the mutation half of [`Self::try_steal`];
    /// feasibility was proven by the planner against the same geometry).
    fn execute_steal(&mut self, i: usize, delta: u32) {
        let e = self.dut.entry(i);
        let n = self.dut.entry(i + 1);
        debug_assert_eq!(n.loc.chunk, e.loc.chunk);
        debug_assert!(n.pad() >= delta && n.width - delta >= n.ser_len);
        self.do_steal(i, delta);
    }

    /// Open every planned gap of one chunk. The fast path is a single
    /// right-to-left pass; when the chunk cannot grow to hold all the gaps
    /// it splits at the first gap (bounding future shift work, as the
    /// legacy path does) and the remaining gaps re-group in the tail chunk.
    fn execute_shift_group(&mut self, group: &[(usize, u32)], counters: &mut PatchCounters) {
        let mut rest = group;
        while !rest.is_empty() {
            let first_entry = rest[0].0;
            let chunk = self.dut.entry(first_entry).loc.chunk;
            let total: usize = rest.iter().map(|&(_, d)| d as usize).sum();
            if self.store.try_grow(chunk as usize, total) {
                let gaps: Vec<(u32, u32)> = rest
                    .iter()
                    .map(|&(entry, d)| (self.dut.entry(entry).region_end(), d))
                    .collect();
                let gaps_bytes: Vec<(usize, usize)> = gaps
                    .iter()
                    .map(|&(g, d)| (g as usize, d as usize))
                    .collect();
                counters.shifted_bytes += self.store.open_gaps_right_with(
                    chunk as usize,
                    &gaps_bytes,
                    self.config.kernel,
                );
                counters.shifts += rest.len();
                counters.coalesced_passes += 1;
                counters.dut_fixups += self.apply_multi_gap_fixups(first_entry, chunk, &gaps);
                return;
            }
            // Split at the first gap; the tail (including all later gap
            // positions) rehomes to the new chunk and the loop continues
            // there. The lone first gap then sits at its chunk's end, so
            // its shift moves zero bytes.
            let (entry, delta) = rest[0];
            let gap_at = self.dut.entry(entry).region_end();
            self.store.split_chunk(chunk as usize, gap_at as usize);
            counters.splits += 1;
            counters.dut_fixups += self.apply_split_fixups(entry, chunk, gap_at);
            if !self.store.try_grow(chunk as usize, delta as usize) {
                self.store.grow_unbounded(chunk as usize, delta as usize);
            }
            self.store
                .shift_tail_right(chunk as usize, gap_at as usize, delta as usize);
            counters.shifts += 1;
            rest = &rest[1..];
        }
    }

    /// Batched DUT/marker fixup after [`bsoap_chunks::ChunkStore::open_gaps_right`]:
    /// everything in `chunk` after the first gap's entry moves right by the
    /// sum of the deltas of gaps at-or-before its offset (positions in
    /// pre-pass coordinates, ascending). One sweep replaces the per-gap
    /// sweeps of the legacy path.
    ///
    /// Entries within a chunk sit at ascending offsets (document order), so
    /// the entry sweep and the ascending gap list merge with two pointers —
    /// O(entries + gaps) where the former `take_while` rescan was
    /// O(entries × gaps). Array markers are few and unsorted; they use a
    /// binary search over the same prefix sums.
    fn apply_multi_gap_fixups(
        &mut self,
        after_entry: usize,
        chunk: u32,
        gaps: &[(u32, u32)],
    ) -> u64 {
        // prefix[i] = sum of deltas of gaps[0..i].
        let mut prefix: Vec<u32> = Vec::with_capacity(gaps.len() + 1);
        prefix.push(0);
        for &(_, d) in gaps {
            prefix.push(prefix.last().unwrap() + d);
        }

        let mut fixed = 0u64;
        let entries = self.dut.entries_mut_raw();
        let mut gi = 0usize; // gaps[..gi] lie at-or-before the current offset
        let mut prev_offset = 0u32;
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk != chunk {
                break; // document order: once past this chunk, done
            }
            debug_assert!(e.loc.offset >= prev_offset, "entries not ascending");
            prev_offset = e.loc.offset;
            while gi < gaps.len() && gaps[gi].0 <= e.loc.offset {
                gi += 1;
            }
            let bump = prefix[gi];
            if bump > 0 {
                e.loc.offset += bump;
                fixed += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk {
                    let at = gaps.partition_point(|&(g, _)| g <= m.offset);
                    m.offset += prefix[at];
                }
            }
        }
        fixed
    }

    /// Phase 3: write every planned region `[value][suffix][pad]` from the
    /// plan blob. Regions are disjoint and fully settled, so with ≥ 2
    /// workers and dirt in ≥ 2 chunks the writes shard by chunk with no
    /// deferral or contagion.
    fn execute_writes(&mut self, ops: &[PlannedOp], blob: &[u8], counters: &mut PatchCounters) {
        counters.values_written += ops.len();
        if self.config.parallel_workers >= 2 && self.try_write_parallel(ops, blob) {
            return;
        }
        let kernel = self.config.kernel;
        let MessageTemplate { store, dut, .. } = &mut *self;
        let mut cleared = 0usize;
        for op in ops {
            let e = &mut dut.entries_mut_raw()[op.entry];
            apply_write(
                store.chunk_buf_mut(e.loc.chunk as usize),
                e,
                op,
                blob,
                kernel,
            );
            cleared += 1;
        }
        dut.note_bits_cleared(cleared);
    }

    /// Chunk-sharded parallel writes. Returns `false` when the op set does
    /// not span multiple chunks (the sequential loop is cheaper).
    fn try_write_parallel(&mut self, ops: &[PlannedOp], blob: &[u8]) -> bool {
        // Per-chunk runs of ops (ops are in ascending entry order, entries
        // in document order, so each chunk's ops are contiguous).
        let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let chunk = self.dut.entry(op.entry).loc.chunk as usize;
            match runs.last_mut() {
                Some((c, r)) if *c == chunk => r.end = i + 1,
                _ => runs.push((chunk, i..i + 1)),
            }
        }
        if runs.len() < 2 {
            return false;
        }
        let nworkers = self.config.parallel_workers.min(runs.len());
        let kernel = self.config.kernel;

        let MessageTemplate { store, dut, .. } = &mut *self;
        let mut bufs: Vec<Option<&mut [u8]>> =
            store.chunk_bufs_mut().into_iter().map(Some).collect();
        let mut tail: &mut [DutEntry] = dut.entries_mut_raw();
        let mut consumed = 0usize;
        let mut sliced: Vec<WriteRun> = Vec::with_capacity(runs.len());
        for (chunk, r) in runs {
            let run_ops = &ops[r.clone()];
            let first_entry = run_ops[0].entry;
            let last_entry = run_ops[run_ops.len() - 1].entry;
            let (_, rest) = std::mem::take(&mut tail).split_at_mut(first_entry - consumed);
            let (entries, rest) = rest.split_at_mut(last_entry + 1 - first_entry);
            tail = rest;
            consumed = last_entry + 1;
            let buf = bufs[chunk].take().expect("one run per chunk");
            sliced.push((run_ops, first_entry, entries, buf));
        }

        // Greedy least-loaded assignment, largest runs first.
        sliced.sort_by_key(|(run_ops, ..)| std::cmp::Reverse(run_ops.len()));
        let mut buckets: Vec<Vec<WriteRun>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; nworkers];
        for item in sliced {
            let w = (0..nworkers)
                .min_by_key(|&w| load[w])
                .expect("nworkers >= 2");
            load[w] += item.0.len();
            buckets[w].push(item);
        }

        let cleared: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut cleared = 0usize;
                        for (run_ops, first_entry, entries, buf) in bucket {
                            for op in run_ops {
                                let e = &mut entries[op.entry - first_entry];
                                apply_write(buf, e, op, blob, kernel);
                                cleared += 1;
                            }
                        }
                        cleared
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("write worker panicked"))
                .sum()
        });
        self.dut.note_bits_cleared(cleared);
        true
    }

    // ------------------------------------------------------------------
    // Legacy interleaved flush
    // ------------------------------------------------------------------

    /// The classic sequential flush: serialize and patch each dirty leaf
    /// in ascending entry order.
    fn flush_sequential(&mut self, counters: &mut PatchCounters) {
        // Serialize into a detached scratch to sidestep borrow overlap
        // with the DUT entry we read the value from.
        let mut scratch = std::mem::take(&mut self.scratch);
        let float = self.config.float;
        let kernel = self.config.kernel;
        let format = self.config.wire_format;
        let n = self.dut.len();
        for i in 0..n {
            if !self.dut.entry(i).dirty {
                continue;
            }
            self.dut
                .entry(i)
                .value
                .serialize_wire(&mut scratch, float, kernel, format);
            self.patch_entry(i, &scratch, counters);
            self.dut.clear_dirty(i);
        }
        self.scratch = scratch;
    }

    /// Chunk-sharded parallel flush. Returns `false` (without touching
    /// anything) when the configuration or dirty-set shape does not
    /// warrant threads; the caller then runs the sequential path.
    fn try_flush_parallel(&mut self, counters: &mut PatchCounters) -> bool {
        if self.config.parallel_workers < 2 {
            return false;
        }

        // Find per-chunk runs of dirty work. Entries are stored in
        // document order, so each chunk's entries occupy one contiguous
        // index range; a run is the `first_dirty..=last_dirty` span of a
        // chunk that has any dirt (clean entries inside are skipped by the
        // worker). Ranges instead of index lists keep this pre-pass
        // allocation-light and let workers own their entries mutably.
        let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (i, e) in self.dut.entries().iter().enumerate() {
            if !e.dirty {
                continue;
            }
            let chunk = e.loc.chunk as usize;
            match runs.last_mut() {
                Some((c, r)) if *c == chunk => r.end = i + 1,
                other => {
                    debug_assert!(other.is_none_or(|(c, _)| *c < chunk), "document order");
                    runs.push((chunk, i..i + 1));
                }
            }
        }
        if runs.len() < 2 {
            return false; // all dirt in one chunk: threads cannot help
        }

        let nworkers = self.config.parallel_workers.min(runs.len());
        let float = self.config.float;
        let steal = self.config.steal;
        let kernel = self.config.kernel;
        let format = self.config.wire_format;

        // Split the borrow: each worker owns disjoint slices of the DUT
        // table and disjoint chunk buffers; `self` is untouched until they
        // join. Slicing the table mutably lets workers commit `ser_len`
        // and dirty bits themselves, so the post-join pass is O(deferred)
        // rather than O(dirty).
        let MessageTemplate { store, dut, .. } = &mut *self;
        let mut bufs: Vec<Option<&mut [u8]>> =
            store.chunk_bufs_mut().into_iter().map(Some).collect();
        let mut tail: &mut [DutEntry] = dut.entries_mut_raw();
        let mut consumed = 0usize;
        // (global index of run start, the run's entries, its chunk buffer)
        let mut sliced: Vec<FlushRun> = Vec::with_capacity(runs.len());
        for (chunk, r) in runs {
            let (_, rest) = std::mem::take(&mut tail).split_at_mut(r.start - consumed);
            let (run, rest) = rest.split_at_mut(r.end - r.start);
            tail = rest;
            consumed = r.end;
            let buf = bufs[chunk].take().expect("one run per chunk");
            sliced.push((r.start, run, buf));
        }

        // Greedy least-loaded assignment of runs (largest first) so one
        // hot chunk does not serialize the whole flush behind it.
        sliced.sort_by_key(|(_, run, _)| std::cmp::Reverse(run.len()));
        let mut buckets: Vec<Vec<FlushRun>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; nworkers];
        for item in sliced {
            let w = (0..nworkers)
                .min_by_key(|&w| load[w])
                .expect("nworkers >= 2");
            load[w] += item.1.len();
            buckets[w].push(item);
        }

        // Each worker returns (entries written, deferred global indices).
        let results: Vec<(usize, Vec<usize>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut scratch: Vec<u8> = Vec::with_capacity(64);
                        let mut cleared = 0usize;
                        let mut deferred: Vec<usize> = Vec::new();
                        for (start, run, buf) in bucket {
                            let mut prev_deferred = false;
                            for (i, e) in run.iter_mut().enumerate() {
                                if !e.dirty {
                                    prev_deferred = false;
                                    continue;
                                }
                                // Contagion: a steal by the deferred
                                // predecessor will read this entry's
                                // pre-patch geometry — keep it pristine.
                                if steal && prev_deferred {
                                    deferred.push(start + i);
                                    continue;
                                }
                                e.value.serialize_wire(&mut scratch, float, kernel, format);
                                if scratch.len() as u32 > e.width {
                                    deferred.push(start + i);
                                    prev_deferred = true;
                                    continue;
                                }
                                write_in_width_kern(buf, e, &scratch, kernel);
                                e.ser_len = scratch.len() as u32;
                                e.dirty = false;
                                cleared += 1;
                                prev_deferred = false;
                            }
                        }
                        (cleared, deferred)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flush worker panicked"))
                .collect()
        });

        // Workers cleared dirty bits directly; settle the aggregate count,
        // then replay deferred (expanding) entries in ascending order —
        // sequential semantics.
        let mut deferred_all: Vec<usize> = Vec::new();
        for (cleared, deferred) in results {
            counters.values_written += cleared;
            self.dut.note_bits_cleared(cleared);
            deferred_all.extend(deferred);
        }
        deferred_all.sort_unstable();
        if !deferred_all.is_empty() {
            let mut scratch = std::mem::take(&mut self.scratch);
            let float = self.config.float;
            let kernel = self.config.kernel;
            let format = self.config.wire_format;
            for idx in deferred_all {
                self.dut
                    .entry(idx)
                    .value
                    .serialize_wire(&mut scratch, float, kernel, format);
                self.patch_entry(idx, &scratch, counters);
                self.dut.clear_dirty(idx);
            }
            self.scratch = scratch;
        }
        true
    }

    /// Write the (already serialized) bytes of leaf `i` into its field,
    /// expanding the field if required.
    fn patch_entry(&mut self, i: usize, bytes: &[u8], counters: &mut PatchCounters) {
        counters.values_written += 1;
        let e = self.dut.entry(i);
        let new_len = bytes.len() as u32;

        if new_len == e.ser_len {
            // Same length: overwrite the value bytes only; tags and padding
            // are untouched (the cheapest dirty-write path).
            self.store.write_at(e.loc, bytes);
            return;
        }

        if new_len <= e.width {
            // Fits in the allocated field: rewrite value + closing tag +
            // whitespace pad (§3.2's "closing tag shift").
            self.rewrite_region(i, bytes, None);
            return;
        }

        // Expansion required: the new serialized form exceeds field width.
        let target_width = match self.config.growth {
            GrowthPolicy::Exact => new_len,
            GrowthPolicy::ToMax => e
                .kind
                .max_width()
                .map(|m| (m as u32).max(new_len))
                .unwrap_or(new_len),
        };
        let delta = target_width - e.width;

        if self.config.steal && self.try_steal(i, delta) {
            counters.steals += 1;
            self.rewrite_region(i, bytes, Some(target_width));
            return;
        }

        self.make_gap_at_region_end(i, delta, counters);
        counters.shifts += 1;
        self.rewrite_region(i, bytes, Some(target_width));
    }

    /// Compose and write the full field region `[value][suffix][pad]`.
    ///
    /// `new_width` updates the field width first (after a steal/shift made
    /// room); `None` keeps the current width.
    fn rewrite_region(&mut self, i: usize, bytes: &[u8], new_width: Option<u32>) {
        let e = self.dut.entry(i);
        let (loc, old_ser, suffix_len) = (e.loc, e.ser_len, e.suffix_len);
        let width = new_width.unwrap_or(e.width);
        debug_assert!(bytes.len() as u32 <= width);

        let mut region = std::mem::take(&mut self.region_scratch);
        region.clear();
        region.extend_from_slice(bytes);
        // The closing tag still sits after the OLD value length; carry it over.
        let suffix_loc = bsoap_chunks::Loc {
            chunk: loc.chunk,
            offset: loc.offset + old_ser,
        };
        region.extend_from_slice(self.store.read_at(suffix_loc, suffix_len as usize));
        region.resize((width + suffix_len) as usize, b' ');
        self.store.write_at(loc, &region);
        self.region_scratch = region;

        let e = self.dut.entry_mut_raw(i);
        e.ser_len = bytes.len() as u32;
        e.width = width;
    }

    /// Try to satisfy a `delta`-byte expansion of leaf `i` by stealing
    /// padding from the next leaf in the same chunk (§3.2: "stealing extra
    /// space from neighboring fields, instead of shifting entire portions
    /// of message chunks").
    ///
    /// On success the span between this field's region end and the
    /// neighbor's value+suffix end is moved right by `delta` (a handful of
    /// tag bytes), the neighbor's width shrinks, and this field's region
    /// gains `delta` bytes.
    fn try_steal(&mut self, i: usize, delta: u32) -> bool {
        let j = i + 1;
        if j >= self.dut.len() {
            return false;
        }
        let e = self.dut.entry(i);
        let n = self.dut.entry(j);
        if n.loc.chunk != e.loc.chunk {
            return false;
        }
        if n.pad() < delta || n.width - delta < n.ser_len {
            return false;
        }
        self.do_steal(i, delta);
        true
    }

    /// The steal mutation itself (shared by the legacy path, which checks
    /// feasibility live, and the planned executor, which proved it at plan
    /// time): move the span between this region's end and the neighbor's
    /// value+suffix end right by `delta`, narrowing the neighbor.
    fn do_steal(&mut self, i: usize, delta: u32) {
        let j = i + 1;
        let e = self.dut.entry(i);
        let n = self.dut.entry(j);
        let span_start = e.region_end();
        let span_end = n.loc.offset + n.ser_len + n.suffix_len;
        debug_assert!(span_start <= n.loc.offset);
        let chunk = e.loc.chunk;

        self.store.move_range_right(
            chunk as usize,
            span_start as usize,
            span_end as usize,
            delta as usize,
        );

        // Fix the neighbor's geometry.
        {
            let n = self.dut.entry_mut_raw(j);
            n.loc.offset += delta;
            n.width -= delta;
        }
        // Markers inside or at the start of the moved span ride along.
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= span_start && m.offset < span_end {
                    m.offset += delta;
                }
            }
        }
    }

    /// Open a `delta`-byte gap at the end of leaf `i`'s field region by
    /// shifting the chunk tail, growing or splitting the chunk as the
    /// config allows. Fixes all downstream DUT pointers and markers.
    fn make_gap_at_region_end(&mut self, i: usize, delta: u32, counters: &mut PatchCounters) {
        let e = self.dut.entry(i);
        let chunk = e.loc.chunk as usize;
        let gap_at = e.region_end();

        if !self.store.try_grow(chunk, delta as usize) {
            // Split at this field's region end: the whole tail moves to a
            // fresh chunk; this bounds future shifting to the chunk size.
            self.store.split_chunk(chunk, gap_at as usize);
            counters.splits += 1;
            counters.dut_fixups += self.apply_split_fixups(i, chunk as u32, gap_at);
            if !self.store.try_grow(chunk, delta as usize) {
                // A single region larger than the threshold: correctness
                // over policy.
                self.store.grow_unbounded(chunk, delta as usize);
            }
        }

        let tail = self.store.chunk(chunk).len() as u32 - gap_at;
        counters.shifted_bytes += tail as u64;
        self.store
            .shift_tail_right(chunk, gap_at as usize, delta as usize);
        counters.dut_fixups += self.apply_shift_fixups(i, chunk as u32, gap_at, delta);
    }

    /// After inserting `delta` bytes at `(chunk, from)`: move every later
    /// entry and marker at-or-past the insertion point right by `delta`.
    /// Returns the number of DUT entries whose location was adjusted.
    fn apply_shift_fixups(&mut self, after_entry: usize, chunk: u32, from: u32, delta: u32) -> u64 {
        let mut fixed = 0u64;
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk != chunk {
                break; // document order: once past this chunk, done
            }
            if e.loc.offset >= from {
                e.loc.offset += delta;
                fixed += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= from {
                    m.offset += delta;
                }
            }
        }
        fixed
    }

    /// After splitting `chunk` at `split_at`: rehome entries and markers in
    /// the moved tail to `(chunk+1, offset−split_at)` and bump the chunk
    /// index of everything in later chunks. Returns the number of DUT
    /// entries rehomed or renumbered.
    fn apply_split_fixups(&mut self, after_entry: usize, chunk: u32, split_at: u32) -> u64 {
        let mut fixed = 0u64;
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk == chunk {
                debug_assert!(e.loc.offset >= split_at, "entry left of split after pivot");
                e.loc.chunk = chunk + 1;
                e.loc.offset -= split_at;
                fixed += 1;
            } else if e.loc.chunk > chunk {
                e.loc.chunk += 1;
                fixed += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= split_at {
                    m.chunk = chunk + 1;
                    m.offset -= split_at;
                } else if m.chunk > chunk {
                    m.chunk += 1;
                }
            }
        }
        fixed
    }
}

/// Apply one planned write to its entry and chunk buffer: commit the new
/// width (room was made in phases 1–2), lay down `[value][suffix][pad]`
/// from the plan blob, and settle the entry's bookkeeping. Safe to run
/// concurrently across chunks — it touches only this region's bytes.
fn apply_write(
    buf: &mut [u8],
    e: &mut DutEntry,
    op: &PlannedOp,
    blob: &[u8],
    kernel: KernelPolicy,
) {
    if let Some(w) = op.kind.new_width() {
        e.width = w;
    }
    let bytes = &blob[op.lo as usize..op.hi as usize];
    write_in_width_kern(buf, e, bytes, kernel);
    e.ser_len = op.hi - op.lo;
    e.dirty = false;
}

/// In-place region rewrite on a raw chunk buffer: the thread-safe subset
/// of [`MessageTemplate::rewrite_region`] for values that fit their field.
///
/// Produces the identical `[value][suffix][pad]` layout: the closing tag
/// is slid from its old position (after `ser_len` bytes) to the new value
/// end, then the remainder of the region is padded with spaces. The
/// suffix move runs first because the regions may overlap; the trailing
/// pad goes through the wide-store space fill when the policy resolves
/// to a SIMD level.
fn write_in_width_kern(buf: &mut [u8], e: &DutEntry, bytes: &[u8], kernel: KernelPolicy) {
    let off = e.loc.offset as usize;
    let old_ser = e.ser_len as usize;
    let sfx = e.suffix_len as usize;
    let width = e.width as usize;
    let new_len = bytes.len();
    debug_assert!(new_len <= width);
    if new_len == old_ser {
        // Same length: value bytes only, tags and padding untouched.
        buf[off..off + new_len].copy_from_slice(bytes);
        return;
    }
    buf.copy_within(off + old_ser..off + old_ser + sfx, off + new_len);
    buf[off..off + new_len].copy_from_slice(bytes);
    bsoap_convert::pad_spaces_with(&mut buf[off + new_len + sfx..off + width + sfx], kernel);
}
