//! Differential flush: rewrite only dirty values, expanding fields on
//! demand via stealing and shifting (§3.2).

use super::{MessageTemplate, SendReport, SendTier};
use crate::config::GrowthPolicy;

/// Counters for one flush (folded into the report and lifetime stats).
#[derive(Default)]
struct PatchCounters {
    values_written: usize,
    shifts: usize,
    steals: usize,
    splits: usize,
    shifted_bytes: u64,
}

impl MessageTemplate {
    /// Re-serialize all dirty leaves into the stored message.
    pub(crate) fn flush_dirty(&mut self) -> SendReport {
        let tier = self.pending_tier();
        let mut counters = PatchCounters::default();

        if self.dut.dirty_count() > 0 {
            // Serialize into a detached scratch to sidestep borrow overlap
            // with the DUT entry we read the value from.
            let mut scratch = std::mem::take(&mut self.scratch);
            let n = self.dut.len();
            for i in 0..n {
                if !self.dut.entry(i).dirty {
                    continue;
                }
                self.dut.entry(i).value.serialize_into(&mut scratch);
                self.patch_entry(i, &scratch, &mut counters);
                self.dut.clear_dirty(i);
            }
            self.scratch = scratch;
        }

        self.structure_changed = false;
        match tier {
            SendTier::ContentMatch => self.stats.content += 1,
            SendTier::PerfectStructural => self.stats.perfect += 1,
            SendTier::PartialStructural => self.stats.partial += 1,
            SendTier::FirstTime => unreachable!("flush never reports first-time"),
        }
        self.stats.values_written += counters.values_written as u64;
        self.stats.shifts += counters.shifts as u64;
        self.stats.steals += counters.steals as u64;
        self.stats.splits += counters.splits as u64;
        self.stats.shifted_bytes += counters.shifted_bytes;

        SendReport {
            tier,
            bytes: self.store.total_len(),
            values_written: counters.values_written,
            shifts: counters.shifts,
            steals: counters.steals,
            splits: counters.splits,
        }
    }

    /// Write the (already serialized) bytes of leaf `i` into its field,
    /// expanding the field if required.
    fn patch_entry(&mut self, i: usize, bytes: &[u8], counters: &mut PatchCounters) {
        counters.values_written += 1;
        let e = self.dut.entry(i);
        let new_len = bytes.len() as u32;

        if new_len == e.ser_len {
            // Same length: overwrite the value bytes only; tags and padding
            // are untouched (the cheapest dirty-write path).
            self.store.write_at(e.loc, bytes);
            return;
        }

        if new_len <= e.width {
            // Fits in the allocated field: rewrite value + closing tag +
            // whitespace pad (§3.2's "closing tag shift").
            self.rewrite_region(i, bytes, None);
            return;
        }

        // Expansion required: the new serialized form exceeds field width.
        let target_width = match self.config.growth {
            GrowthPolicy::Exact => new_len,
            GrowthPolicy::ToMax => e
                .kind
                .max_width()
                .map(|m| (m as u32).max(new_len))
                .unwrap_or(new_len),
        };
        let delta = target_width - e.width;

        if self.config.steal && self.try_steal(i, delta) {
            counters.steals += 1;
            self.rewrite_region(i, bytes, Some(target_width));
            return;
        }

        self.make_gap_at_region_end(i, delta, counters);
        counters.shifts += 1;
        self.rewrite_region(i, bytes, Some(target_width));
    }

    /// Compose and write the full field region `[value][suffix][pad]`.
    ///
    /// `new_width` updates the field width first (after a steal/shift made
    /// room); `None` keeps the current width.
    fn rewrite_region(&mut self, i: usize, bytes: &[u8], new_width: Option<u32>) {
        let e = self.dut.entry(i);
        let (loc, old_ser, suffix_len) = (e.loc, e.ser_len, e.suffix_len);
        let width = new_width.unwrap_or(e.width);
        debug_assert!(bytes.len() as u32 <= width);

        let mut region = std::mem::take(&mut self.region_scratch);
        region.clear();
        region.extend_from_slice(bytes);
        // The closing tag still sits after the OLD value length; carry it over.
        let suffix_loc = bsoap_chunks::Loc { chunk: loc.chunk, offset: loc.offset + old_ser };
        region.extend_from_slice(self.store.read_at(suffix_loc, suffix_len as usize));
        region.resize((width + suffix_len) as usize, b' ');
        self.store.write_at(loc, &region);
        self.region_scratch = region;

        let e = self.dut.entry_mut_raw(i);
        e.ser_len = bytes.len() as u32;
        e.width = width;
    }

    /// Try to satisfy a `delta`-byte expansion of leaf `i` by stealing
    /// padding from the next leaf in the same chunk (§3.2: "stealing extra
    /// space from neighboring fields, instead of shifting entire portions
    /// of message chunks").
    ///
    /// On success the span between this field's region end and the
    /// neighbor's value+suffix end is moved right by `delta` (a handful of
    /// tag bytes), the neighbor's width shrinks, and this field's region
    /// gains `delta` bytes.
    fn try_steal(&mut self, i: usize, delta: u32) -> bool {
        let j = i + 1;
        if j >= self.dut.len() {
            return false;
        }
        let e = self.dut.entry(i);
        let n = self.dut.entry(j);
        if n.loc.chunk != e.loc.chunk {
            return false;
        }
        if n.pad() < delta || n.width - delta < n.ser_len {
            return false;
        }
        let span_start = e.region_end();
        let span_end = n.loc.offset + n.ser_len + n.suffix_len;
        debug_assert!(span_start <= n.loc.offset);
        let chunk = e.loc.chunk;

        self.store.move_range_right(
            chunk as usize,
            span_start as usize,
            span_end as usize,
            delta as usize,
        );

        // Fix the neighbor's geometry.
        {
            let n = self.dut.entry_mut_raw(j);
            n.loc.offset += delta;
            n.width -= delta;
        }
        // Markers inside or at the start of the moved span ride along.
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= span_start && m.offset < span_end {
                    m.offset += delta;
                }
            }
        }
        true
    }

    /// Open a `delta`-byte gap at the end of leaf `i`'s field region by
    /// shifting the chunk tail, growing or splitting the chunk as the
    /// config allows. Fixes all downstream DUT pointers and markers.
    fn make_gap_at_region_end(&mut self, i: usize, delta: u32, counters: &mut PatchCounters) {
        let e = self.dut.entry(i);
        let chunk = e.loc.chunk as usize;
        let gap_at = e.region_end();

        if !self.store.try_grow(chunk, delta as usize) {
            // Split at this field's region end: the whole tail moves to a
            // fresh chunk; this bounds future shifting to the chunk size.
            self.store.split_chunk(chunk, gap_at as usize);
            counters.splits += 1;
            self.apply_split_fixups(i, chunk as u32, gap_at);
            if !self.store.try_grow(chunk, delta as usize) {
                // A single region larger than the threshold: correctness
                // over policy.
                self.store.grow_unbounded(chunk, delta as usize);
            }
        }

        let tail = self.store.chunk(chunk).len() as u32 - gap_at;
        counters.shifted_bytes += tail as u64;
        self.store.shift_tail_right(chunk, gap_at as usize, delta as usize);
        self.apply_shift_fixups(i, chunk as u32, gap_at, delta);
    }

    /// After inserting `delta` bytes at `(chunk, from)`: move every later
    /// entry and marker at-or-past the insertion point right by `delta`.
    fn apply_shift_fixups(&mut self, after_entry: usize, chunk: u32, from: u32, delta: u32) {
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk != chunk {
                break; // document order: once past this chunk, done
            }
            if e.loc.offset >= from {
                e.loc.offset += delta;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= from {
                    m.offset += delta;
                }
            }
        }
    }

    /// After splitting `chunk` at `split_at`: rehome entries and markers in
    /// the moved tail to `(chunk+1, offset−split_at)` and bump the chunk
    /// index of everything in later chunks.
    fn apply_split_fixups(&mut self, after_entry: usize, chunk: u32, split_at: u32) {
        let entries = self.dut.entries_mut_raw();
        for e in entries.iter_mut().skip(after_entry + 1) {
            if e.loc.chunk == chunk {
                debug_assert!(e.loc.offset >= split_at, "entry left of split after pivot");
                e.loc.chunk = chunk + 1;
                e.loc.offset -= split_at;
            } else if e.loc.chunk > chunk {
                e.loc.chunk += 1;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= split_at {
                    m.chunk = chunk + 1;
                    m.offset -= split_at;
                } else if m.chunk > chunk {
                    m.chunk += 1;
                }
            }
        }
    }
}
