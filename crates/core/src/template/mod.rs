//! Saved message templates — the object the whole technique revolves
//! around.
//!
//! A [`MessageTemplate`] is the fully serialized form of one SOAP call,
//! stored in chunks, plus its DUT table and per-array bookkeeping. It is
//! created on the first send ([`MessageTemplate::build`]), then mutated
//! through `set_*`/`update_*` accessors and re-sent with
//! [`MessageTemplate::send`], which picks the cheapest matching tier.

mod binary;
mod build;
mod patch;
mod planner;
mod resize;

use crate::config::{EngineConfig, FlushMode};
use crate::dut::DutTable;
use crate::error::EngineError;
use crate::plan::InjectedFault;
use crate::schema::{OpDesc, TypeDesc};
use crate::value::{Scalar, Value};
use bsoap_chunks::{ChunkStore, Loc};
use bsoap_obs::{Counter, Metrics, Recorder};
use std::io::Write;
use std::sync::Arc;

/// Which of the paper's four matching tiers a send used (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SendTier {
    /// First-time send: full serialization, template built.
    FirstTime,
    /// Message content match: nothing dirty, bytes resent verbatim.
    ContentMatch,
    /// Perfect structural match: only dirty values rewritten in place.
    PerfectStructural,
    /// Partial structural match: array sizes changed; template expanded or
    /// contracted before patching.
    PartialStructural,
}

impl SendTier {
    /// Human-readable tier name (matches the paper's terminology).
    pub fn name(self) -> &'static str {
        match self {
            SendTier::FirstTime => "first-time send",
            SendTier::ContentMatch => "message content match",
            SendTier::PerfectStructural => "perfect structural match",
            SendTier::PartialStructural => "partial structural match",
        }
    }

    /// The observability-layer tier id for this tier.
    pub fn obs(self) -> bsoap_obs::Tier {
        match self {
            SendTier::FirstTime => bsoap_obs::Tier::FirstTime,
            SendTier::ContentMatch => bsoap_obs::Tier::ContentMatch,
            SendTier::PerfectStructural => bsoap_obs::Tier::PerfectStructural,
            SendTier::PartialStructural => bsoap_obs::Tier::PartialStructural,
        }
    }
}

/// Outcome of one send.
#[derive(Clone, Copy, Debug)]
pub struct SendReport {
    /// Tier used.
    pub tier: SendTier,
    /// Total message bytes handed to the transport.
    pub bytes: usize,
    /// Leaf values re-serialized for this send.
    pub values_written: usize,
    /// Expansion events that shifted a chunk tail.
    pub shifts: usize,
    /// Expansion events satisfied by stealing neighbor padding.
    pub steals: usize,
    /// Chunk splits triggered by expansion.
    pub splits: usize,
    /// The cost gate discarded the saved template and this send took the
    /// FirstTime path instead of patching (see `EngineConfig::cost_fallback`).
    pub fell_back: bool,
}

/// Cumulative statistics over a template's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct TemplateStats {
    /// Sends by tier: first-time, content, perfect, partial.
    pub first_time: u64,
    /// Content-match sends.
    pub content: u64,
    /// Perfect structural match sends.
    pub perfect: u64,
    /// Partial structural match sends.
    pub partial: u64,
    /// Total leaf values re-serialized.
    pub values_written: u64,
    /// Total shift events.
    pub shifts: u64,
    /// Total steal events.
    pub steals: u64,
    /// Total chunk splits.
    pub splits: u64,
    /// Total bytes moved by shifting (the cost §4.3 measures).
    pub shifted_bytes: u64,
}

/// Per-array bookkeeping inside a template.
#[derive(Clone, Debug)]
pub(crate) struct ArrayInfo {
    /// Parameter index this array corresponds to.
    #[allow(dead_code)]
    pub param: usize,
    /// DUT index of the first element leaf.
    pub base_leaf: usize,
    /// DUT leaves per element.
    pub leaves_per_elem: usize,
    /// Current element count.
    pub len: usize,
    /// DUT index of the length field inside `SOAP-ENC:arrayType="T[N]"`.
    pub len_leaf: usize,
    /// Element type.
    pub item_desc: TypeDesc,
    /// First byte of the first element's open tag.
    pub content_start: Loc,
    /// One past the last element's final byte (start of `</name>`).
    pub content_end: Loc,
    /// Bytes of per-element close run after the last leaf's region
    /// (`</item>` for struct items; 0 for scalar items whose suffix is the
    /// close tag itself).
    pub elem_close_run: u32,
}

/// A saved, mutable, resendable serialized message.
///
/// Cloning a template copies its serialized bytes and DUT table — the
/// basis of cross-endpoint template sharing (§6): a client talking to a
/// new service with a structure it has already serialized elsewhere can
/// clone the sibling template and diff, instead of serializing from
/// scratch.
#[derive(Clone, Debug)]
pub struct MessageTemplate {
    pub(crate) config: EngineConfig,
    pub(crate) op: OpDesc,
    pub(crate) store: ChunkStore,
    pub(crate) dut: DutTable,
    pub(crate) arrays: Vec<ArrayInfo>,
    /// Scratch for value serialization (reused across flushes).
    pub(crate) scratch: Vec<u8>,
    /// Scratch for region composition.
    pub(crate) region_scratch: Vec<u8>,
    pub(crate) stats: TemplateStats,
    /// Set when the current update cycle changed array sizes.
    pub(crate) structure_changed: bool,
    /// Array resizes queued by `update_args` under [`FlushMode::Planned`]
    /// (`(array index, pending value)`, ascending, at most one per array).
    /// The executor applies them at flush time; until then the template
    /// bytes and DUT stay untouched, which is what makes a failed send
    /// side-effect free.
    pub(crate) pending_resizes: Vec<(usize, Value)>,
    /// Failure-injection point for the atomicity tests; never set in
    /// production.
    pub(crate) fault: Option<InjectedFault>,
    /// Observability sink. `None` means instrumentation is off: every
    /// record site is a single branch on this option (cloning a template
    /// shares the registry, so cross-endpoint clones report to the same
    /// place).
    pub(crate) metrics: Option<Arc<Metrics>>,
}

impl MessageTemplate {
    // build() lives in build.rs; flush/patch in patch.rs; resize in resize.rs.

    /// The operation this template serves.
    pub fn op(&self) -> &OpDesc {
        &self.op
    }

    /// The engine configuration in force.
    pub fn engine_config(&self) -> EngineConfig {
        self.config
    }

    /// Number of DUT-tracked leaves (including internal array-length
    /// fields).
    pub fn leaf_count(&self) -> usize {
        self.dut.len()
    }

    /// Current total serialized size in bytes.
    pub fn message_len(&self) -> usize {
        self.store.total_len()
    }

    /// Number of storage chunks.
    pub fn chunk_count(&self) -> usize {
        self.store.chunk_count()
    }

    /// Dirty-leaf count — zero means the next send is a content match.
    pub fn dirty_count(&self) -> usize {
        self.dut.dirty_count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TemplateStats {
        self.stats
    }

    /// Attach an observability registry: subsequent flushes record tier
    /// counters, patch-work counters, and a per-send trace span into it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Read-only view of the DUT table.
    pub fn dut(&self) -> &DutTable {
        &self.dut
    }

    /// Current length of array parameter `array_idx`.
    pub fn array_len(&self, array_idx: usize) -> usize {
        self.arrays[array_idx].len
    }

    /// Number of array parameters.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// DUT leaf index of `(element, field)` of array `array_idx`.
    ///
    /// `field` is the leaf offset within one element (0 for scalar items;
    /// 0..n for struct items in declaration order).
    pub fn array_leaf(&self, array_idx: usize, element: usize, field: usize) -> usize {
        let a = &self.arrays[array_idx];
        debug_assert!(element < a.len && field < a.leaves_per_elem);
        a.base_leaf + element * a.leaves_per_elem + field
    }

    fn is_internal_leaf(&self, idx: usize) -> bool {
        self.arrays.iter().any(|a| a.len_leaf == idx)
    }

    fn set_scalar(&mut self, idx: usize, value: Scalar) -> Result<(), EngineError> {
        if idx >= self.dut.len() {
            return Err(EngineError::BadLeafIndex {
                index: idx,
                leaf_count: self.dut.len(),
            });
        }
        if self.is_internal_leaf(idx) {
            return Err(EngineError::KindMismatch {
                index: idx,
                expected: self.dut.entry(idx).kind,
            });
        }
        if self.dut.entry(idx).kind != value.kind() {
            return Err(EngineError::KindMismatch {
                index: idx,
                expected: self.dut.entry(idx).kind,
            });
        }
        self.dut.set_value(idx, value);
        Ok(())
    }

    /// Update a double leaf (marks dirty only when the bits change).
    pub fn set_double(&mut self, idx: usize, v: f64) -> Result<(), EngineError> {
        self.set_scalar(idx, Scalar::Double(v))
    }

    /// Update an int leaf.
    pub fn set_int(&mut self, idx: usize, v: i32) -> Result<(), EngineError> {
        self.set_scalar(idx, Scalar::Int(v))
    }

    /// Update a long leaf.
    pub fn set_long(&mut self, idx: usize, v: i64) -> Result<(), EngineError> {
        self.set_scalar(idx, Scalar::Long(v))
    }

    /// Update a bool leaf.
    pub fn set_bool(&mut self, idx: usize, v: bool) -> Result<(), EngineError> {
        self.set_scalar(idx, Scalar::Bool(v))
    }

    /// Update a string leaf.
    pub fn set_str(&mut self, idx: usize, v: &str) -> Result<(), EngineError> {
        self.set_scalar(idx, Scalar::Str(v.into()))
    }

    /// Force a leaf dirty without changing its value — benchmark support
    /// for measuring pure re-serialization cost.
    pub fn touch(&mut self, idx: usize) {
        self.dut.mark_dirty(idx);
    }

    /// Diff a whole new argument list against the template, marking changed
    /// leaves dirty and resizing arrays as needed. Does not send.
    ///
    /// Returns the tier the next [`flush`](Self::flush) will use.
    pub fn update_args(&mut self, args: &[Value]) -> Result<SendTier, EngineError> {
        self.op.clone().check_args(args)?;
        let mut array_cursor = 0usize;
        let mut leaf_cursor = 0usize;
        for (pidx, (param, arg)) in self.op.params.clone().iter().zip(args).enumerate() {
            match &param.desc {
                TypeDesc::Array { .. } => {
                    self.update_array(array_cursor, arg)?;
                    // Leaf cursor moves past len leaf + all element leaves.
                    let a = &self.arrays[array_cursor];
                    leaf_cursor = a.base_leaf + a.len * a.leaves_per_elem;
                    array_cursor += 1;
                }
                desc => {
                    leaf_cursor = self.update_plain(leaf_cursor, desc, arg, pidx)?;
                }
            }
        }
        Ok(self.pending_tier())
    }

    /// The tier the next flush will take, given current dirty/structure
    /// state (queued planned-mode resizes count as structural change).
    pub fn pending_tier(&self) -> SendTier {
        if self.structure_changed || !self.pending_resizes.is_empty() {
            SendTier::PartialStructural
        } else if self.dut.dirty_count() == 0 {
            SendTier::ContentMatch
        } else {
            SendTier::PerfectStructural
        }
    }

    fn update_plain(
        &mut self,
        mut leaf: usize,
        desc: &TypeDesc,
        value: &Value,
        pidx: usize,
    ) -> Result<usize, EngineError> {
        match (desc, value) {
            (TypeDesc::Scalar(_), v) => {
                let scalar = match v {
                    Value::Int(x) => Scalar::Int(*x),
                    Value::Long(x) => Scalar::Long(*x),
                    Value::Double(x) => Scalar::Double(*x),
                    Value::Bool(x) => Scalar::Bool(*x),
                    Value::Str(x) => Scalar::Str(x.as_str().into()),
                    other => {
                        return Err(EngineError::TypeMismatch {
                            at: format!("param {pidx}"),
                            expected: "scalar",
                            found: other.variant_name(),
                        })
                    }
                };
                self.set_scalar(leaf, scalar)?;
                Ok(leaf + 1)
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                for ((_, fdesc), fval) in fields.iter().zip(vals) {
                    leaf = self.update_plain(leaf, fdesc, fval, pidx)?;
                }
                Ok(leaf)
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: format!("param {pidx}"),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    _ => "matching value",
                },
                found: v.variant_name(),
            }),
        }
    }

    /// Update (and if needed resize) array parameter `array_idx` from a new
    /// value. Existing elements are diffed leaf-by-leaf; a length change
    /// triggers the partial-structural-match machinery.
    pub fn update_array(&mut self, array_idx: usize, value: &Value) -> Result<(), EngineError> {
        let new_len = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
            at: format!("array {array_idx}"),
            expected: "array value",
            found: value.variant_name(),
        })?;
        let old_len = self.arrays[array_idx].len;
        let common = old_len.min(new_len);
        // Diff the common prefix.
        self.diff_elements(array_idx, value, 0, common)?;
        if new_len != old_len {
            match self.config.flush_mode {
                // Legacy path resizes eagerly, mutating the template here.
                FlushMode::Legacy => self.resize_array(array_idx, value)?,
                // Planned path defers: validate the new tail now (so the
                // flush-time resize cannot fail), then queue the value for
                // the executor. `old_len` stays the template's length until
                // the flush applies the resize.
                FlushMode::Planned => {
                    if new_len > old_len {
                        let item_desc = self.arrays[array_idx].item_desc.clone();
                        planner::validate_elements(&item_desc, value, old_len, new_len)?;
                    }
                    self.queue_resize(array_idx, value.clone());
                }
            }
        } else {
            // Back to the template's length: any queued resize is moot.
            self.cancel_resize(array_idx);
        }
        Ok(())
    }

    /// Queue (or replace) a planned-mode resize for `array_idx`.
    fn queue_resize(&mut self, array_idx: usize, value: Value) {
        match self
            .pending_resizes
            .binary_search_by_key(&array_idx, |(i, _)| *i)
        {
            Ok(pos) => self.pending_resizes[pos].1 = value,
            Err(pos) => self.pending_resizes.insert(pos, (array_idx, value)),
        }
    }

    /// Drop any queued resize for `array_idx`.
    fn cancel_resize(&mut self, array_idx: usize) {
        if let Ok(pos) = self
            .pending_resizes
            .binary_search_by_key(&array_idx, |(i, _)| *i)
        {
            self.pending_resizes.remove(pos);
        }
    }

    /// Diff elements `[from, to)` of `value` against the template.
    fn diff_elements(
        &mut self,
        array_idx: usize,
        value: &Value,
        from: usize,
        to: usize,
    ) -> Result<(), EngineError> {
        let base = self.arrays[array_idx].base_leaf;
        let lpe = self.arrays[array_idx].leaves_per_elem;
        match value {
            Value::DoubleArray(v) => {
                for (i, &x) in v.iter().enumerate().take(to).skip(from) {
                    self.dut.set_value(base + i, Scalar::Double(x));
                }
            }
            Value::IntArray(v) => {
                for (i, &x) in v.iter().enumerate().take(to).skip(from) {
                    self.dut.set_value(base + i, Scalar::Int(x));
                }
            }
            Value::Array(elems) => {
                let item_desc = self.arrays[array_idx].item_desc.clone();
                for (i, elem) in elems.iter().enumerate().take(to).skip(from) {
                    let mut leaf = base + i * lpe;
                    leaf = self.diff_value_leaves(leaf, &item_desc, elem)?;
                    debug_assert_eq!(leaf, base + (i + 1) * lpe);
                }
            }
            other => {
                return Err(EngineError::TypeMismatch {
                    at: format!("array {array_idx}"),
                    expected: "array value",
                    found: other.variant_name(),
                })
            }
        }
        Ok(())
    }

    pub(crate) fn diff_value_leaves(
        &mut self,
        mut leaf: usize,
        desc: &TypeDesc,
        value: &Value,
    ) -> Result<usize, EngineError> {
        match (desc, value) {
            (TypeDesc::Scalar(_), v) => {
                let scalar = match v {
                    Value::Int(x) => Scalar::Int(*x),
                    Value::Long(x) => Scalar::Long(*x),
                    Value::Double(x) => Scalar::Double(*x),
                    Value::Bool(x) => Scalar::Bool(*x),
                    Value::Str(x) => Scalar::Str(x.as_str().into()),
                    other => {
                        return Err(EngineError::TypeMismatch {
                            at: "array element".to_owned(),
                            expected: "scalar",
                            found: other.variant_name(),
                        })
                    }
                };
                self.dut.set_value(leaf, scalar);
                Ok(leaf + 1)
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                for ((_, fdesc), fval) in fields.iter().zip(vals) {
                    leaf = self.diff_value_leaves(leaf, fdesc, fval)?;
                }
                Ok(leaf)
            }
            (_, v) => Err(EngineError::TypeMismatch {
                at: "array element".to_owned(),
                expected: "struct",
                found: v.variant_name(),
            }),
        }
    }

    /// Re-serialize all dirty leaves into the stored bytes (no I/O).
    ///
    /// Returns the tier this flush realized plus patch statistics.
    pub fn flush(&mut self) -> SendReport {
        self.flush_dirty()
    }

    /// Flush dirty leaves, then write the whole message to `sink` with
    /// vectored I/O. This is the paper's measured "Send Time" operation.
    pub fn send(&mut self, sink: &mut impl Write) -> Result<SendReport, EngineError> {
        let mut report = self.flush_dirty();
        let slices = self.store.io_slices();
        let n = crate::sendv::write_all_vectored_metered(sink, &slices, self.metrics.as_deref())?;
        report.bytes = n;
        if let Some(m) = &self.metrics {
            m.add(Counter::BytesSent, n as u64);
        }
        Ok(report)
    }

    /// Copy the current serialized message into one flat buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.store.flatten()
    }

    /// Inject a fault for the failure-atomicity tests (test support).
    #[doc(hidden)]
    pub fn inject_fault(&mut self, fault: Option<InjectedFault>) {
        self.fault = fault;
    }

    /// Bytes between two document positions (chunk boundaries transparent).
    pub(crate) fn doc_distance(&self, from: Loc, to: Loc) -> usize {
        if from.chunk == to.chunk {
            return (to.offset - from.offset) as usize;
        }
        let mut n = self.store.chunk(from.chunk as usize).len() - from.offset as usize;
        for c in (from.chunk + 1)..to.chunk {
            n += self.store.chunk(c as usize).len();
        }
        n + to.offset as usize
    }

    /// Average serialized bytes per element of array `array_idx` — the
    /// per-element currency of resize cost estimates (planner and template
    /// cache). Falls back to a coarse constant for empty arrays.
    pub(crate) fn array_elem_bytes(&self, array_idx: usize) -> usize {
        let a = &self.arrays[array_idx];
        if a.len == 0 {
            return 64;
        }
        self.doc_distance(a.content_start, a.content_end) / a.len
    }

    /// Gather view of the current serialized message.
    pub fn io_slices(&self) -> Vec<std::io::IoSlice<'_>> {
        self.store.io_slices()
    }

    /// Verify all internal invariants (test support): DUT ordering and
    /// widths, chunk accounting, and that every entry's stored bytes parse
    /// back to its in-memory value when clean.
    pub fn assert_invariants(&self) {
        self.dut.assert_invariants();
        self.store.assert_consistent();
        for (i, e) in self.dut.entries().iter().enumerate() {
            let end = e.region_end() as usize;
            assert!(
                end <= self.store.chunk(e.loc.chunk as usize).len(),
                "entry {i} region extends past chunk end"
            );
        }
    }
}
