//! First-time send on the compact binary lane (§ DESIGN 3.15).
//!
//! The binary builder mirrors `build.rs` exactly — same DUT geometry,
//! same `ArrayInfo` bookkeeping, same resize/flush machinery downstream —
//! but emits the tagged fixed-width framing of [`crate::wire`] instead of
//! XML tag runs. Because every numeric leaf serializes to a constant
//! length, the patch path degenerates to in-place overwrites and the
//! planner never emits shifts or steals for numeric workloads: tier 3
//! collapses into tier 2.

use super::build::{scalar_from_value, validate_param_type, Builder};
use super::{ArrayInfo, MessageTemplate, TemplateStats};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::schema::{OpDesc, TypeDesc};
use crate::value::{Scalar, Value};
use crate::wire;
use bsoap_convert::ScalarKind;

/// Byte length of the fixed marker run after an element's last leaf
/// region on the binary lane: scalars close with nothing, struct items
/// close with one `STRUCT_END` per still-open struct.
pub(crate) fn binary_elem_close_run(item_desc: &TypeDesc) -> usize {
    match item_desc {
        TypeDesc::Scalar(_) => 0,
        TypeDesc::Struct { .. } => binary_last_field_close_run(item_desc) + 1,
        TypeDesc::Array { .. } => unreachable!("validated: no nested arrays"),
    }
}

fn binary_last_field_close_run(desc: &TypeDesc) -> usize {
    match desc {
        TypeDesc::Struct { fields, .. } => {
            let (_, fdesc) = fields.last().expect("structs have fields");
            match fdesc {
                TypeDesc::Scalar(_) => 0,
                TypeDesc::Struct { .. } => binary_last_field_close_run(fdesc) + 1,
                TypeDesc::Array { .. } => unreachable!("validated: no nested arrays"),
            }
        }
        _ => 0,
    }
}

impl Builder {
    /// Serialize a non-array value as binary records.
    pub(crate) fn binary_plain_value(
        &mut self,
        name: &str,
        desc: &TypeDesc,
        value: &Value,
    ) -> Result<(), EngineError> {
        match (desc, value) {
            (TypeDesc::Scalar(kind), v) => {
                let scalar = scalar_from_value(v, *kind)?;
                self.leaf(scalar, "", None);
                Ok(())
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                self.raw_bytes(&[wire::STRUCT_BEGIN]);
                for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                    self.binary_plain_value(fname, fdesc, fval)?;
                }
                self.raw_bytes(&[wire::STRUCT_END]);
                Ok(())
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: format!("element {name}"),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    TypeDesc::Array { .. } => "Array",
                    TypeDesc::Scalar(_) => "scalar",
                },
                found: v.variant_name(),
            }),
        }
    }

    /// Binary analog of `Builder::elements`: one tagged record per scalar
    /// element, `STRUCT_BEGIN..STRUCT_END` per struct element. Shared by
    /// first-time builds and array growth (resize builds into a fresh
    /// `Builder` carrying the same config, so it lands here too).
    pub(crate) fn binary_elements(
        &mut self,
        item_desc: &TypeDesc,
        value: &Value,
        from: usize,
        to: usize,
    ) -> Result<(), EngineError> {
        match (value, item_desc) {
            (Value::DoubleArray(v), TypeDesc::Scalar(ScalarKind::Double)) => {
                for &x in &v[from..to] {
                    self.leaf(Scalar::Double(x), "", None);
                }
                Ok(())
            }
            (Value::IntArray(v), TypeDesc::Scalar(ScalarKind::Int)) => {
                for &x in &v[from..to] {
                    self.leaf(Scalar::Int(x), "", None);
                }
                Ok(())
            }
            (Value::Array(elems), _) => {
                for elem in &elems[from..to] {
                    self.binary_one_element(item_desc, elem)?;
                }
                Ok(())
            }
            (v, _) => Err(EngineError::TypeMismatch {
                at: "array".to_owned(),
                expected: "array value matching item type",
                found: v.variant_name(),
            }),
        }
    }

    fn binary_one_element(
        &mut self,
        item_desc: &TypeDesc,
        elem: &Value,
    ) -> Result<(), EngineError> {
        match (item_desc, elem) {
            (TypeDesc::Scalar(kind), v) => {
                let scalar = scalar_from_value(v, *kind)?;
                self.leaf(scalar, "", None);
                Ok(())
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                self.raw_bytes(&[wire::STRUCT_BEGIN]);
                for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                    self.binary_plain_value(fname, fdesc, fval)?;
                }
                self.raw_bytes(&[wire::STRUCT_END]);
                Ok(())
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: "array item".to_owned(),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    _ => "scalar",
                },
                found: v.variant_name(),
            }),
        }
    }

    /// Serialize a full binary array parameter: `ARRAY_BEGIN`, a
    /// DUT-tracked int leaf holding the element count (fixed 5 bytes on
    /// the wire, so a resize rewrites it in place — the binary analog of
    /// the XML length field's `INT_MAX_WIDTH` stuffing), the elements,
    /// `ARRAY_END`. Registers the [`ArrayInfo`].
    pub(crate) fn binary_array_param(
        &mut self,
        pidx: usize,
        name: &str,
        item_desc: &TypeDesc,
        value: &Value,
    ) -> Result<(), EngineError> {
        let len = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
            at: format!("param {pidx} ({name})"),
            expected: "array value",
            found: value.variant_name(),
        })?;
        self.raw_bytes(&[wire::ARRAY_BEGIN]);
        let len_leaf = self.dut.len();
        self.leaf(Scalar::Int(len as i32), "", None);
        let content_start = self.tell();
        let base_leaf = self.dut.len();
        self.binary_elements(item_desc, value, 0, len)?;
        let content_end = self.tell();
        self.raw_bytes(&[wire::ARRAY_END]);
        self.arrays.push(ArrayInfo {
            param: pidx,
            base_leaf,
            leaves_per_elem: item_desc.leaves_per_instance(),
            len,
            len_leaf,
            item_desc: item_desc.clone(),
            content_start,
            content_end,
            elem_close_run: binary_elem_close_run(item_desc) as u32,
        });
        Ok(())
    }
}

impl MessageTemplate {
    /// Full binary serialization of `args` for `op` — the binary lane's
    /// first-time send path ([`MessageTemplate::build`] routes here when
    /// the config selects [`crate::config::WireFormat::CompactBinary`]).
    pub(crate) fn build_binary(
        config: EngineConfig,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<MessageTemplate, EngineError> {
        op.check_args(args)?;
        for p in &op.params {
            validate_param_type(&p.desc, true)?;
        }
        let mut b = Builder::new(config);
        let mut prologue = Vec::with_capacity(16 + op.name.len());
        wire::write_prologue(&mut prologue, &op.name, op.params.len());
        b.raw_bytes(&prologue);
        for (pidx, (param, arg)) in op.params.iter().zip(args).enumerate() {
            match &param.desc {
                TypeDesc::Array { item } => b.binary_array_param(pidx, &param.name, item, arg)?,
                desc => b.binary_plain_value(&param.name, desc, arg)?,
            }
        }
        b.raw_bytes(&[wire::END]);

        let stats = TemplateStats {
            first_time: 1,
            ..TemplateStats::default()
        };
        Ok(MessageTemplate {
            config,
            op: op.clone(),
            store: b.store,
            dut: b.dut,
            arrays: b.arrays,
            scratch: b.scratch,
            region_scratch: b.region,
            stats,
            structure_changed: false,
            pending_resizes: Vec::new(),
            fault: None,
            metrics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{EngineConfig, FlushMode, WireFormat};
    use crate::schema::{OpDesc, ParamDesc, TypeDesc};
    use crate::template::{MessageTemplate, SendTier};
    use crate::value::Value;
    use crate::wire;
    use bsoap_convert::ScalarKind;

    fn bin_cfg(mode: FlushMode) -> EngineConfig {
        EngineConfig::paper_default()
            .with_wire_format(WireFormat::CompactBinary)
            .with_flush_mode(mode)
    }

    fn mesh_op() -> OpDesc {
        OpDesc::new(
            "updateMesh",
            "urn:mesh",
            vec![
                ParamDesc {
                    name: "step".to_owned(),
                    desc: TypeDesc::Scalar(ScalarKind::Int),
                },
                ParamDesc {
                    name: "field".to_owned(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                },
                ParamDesc {
                    name: "tag".to_owned(),
                    desc: TypeDesc::Scalar(ScalarKind::Str),
                },
            ],
        )
    }

    fn mesh_args(step: i32, field: &[f64], tag: &str) -> Vec<Value> {
        vec![
            Value::Int(step),
            Value::DoubleArray(field.to_vec()),
            Value::Str(tag.to_owned()),
        ]
    }

    #[test]
    fn binary_build_is_framed_and_compact() {
        let t = MessageTemplate::build(
            bin_cfg(FlushMode::Planned),
            &mesh_op(),
            &mesh_args(1, &[1.0, 2.5, -3.0], "run"),
        )
        .unwrap();
        let bytes = t.to_bytes();
        assert!(wire::is_binary(&bytes));
        assert_eq!(*bytes.last().unwrap(), wire::END);
        // prologue + int leaf + array(begin + len leaf + 3 doubles + end) + str leaf + END
        let expected = 4 + 2 + "updateMesh".len() + 1   // prologue
            + 5                                          // step
            + 1 + 5 + 3 * 9 + 1                          // field
            + (1 + 4 + 3)                                // tag
            + 1; // END
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn numeric_rewrites_are_pure_overwrites() {
        for mode in [FlushMode::Planned, FlushMode::Legacy] {
            let mut t = MessageTemplate::build(
                bin_cfg(mode),
                &mesh_op(),
                &mesh_args(1, &[1.0, 2.5, -3.0], "run"),
            )
            .unwrap();
            let len0 = t.message_len();
            let tier = t
                .update_args(&mesh_args(2, &[9.0, f64::MIN_POSITIVE, 1e300], "run"))
                .unwrap();
            assert_eq!(tier, SendTier::PerfectStructural);
            let report = t.flush();
            assert_eq!(report.shifts, 0, "{mode:?}");
            assert_eq!(report.steals, 0, "{mode:?}");
            assert_eq!(t.message_len(), len0);
            // The patched bytes equal a from-scratch build of the new args.
            let fresh = MessageTemplate::build(
                bin_cfg(mode),
                &mesh_op(),
                &mesh_args(2, &[9.0, f64::MIN_POSITIVE, 1e300], "run"),
            )
            .unwrap();
            assert_eq!(t.to_bytes(), fresh.to_bytes());
        }
    }

    #[test]
    fn resize_matches_fresh_build_bytes() {
        for mode in [FlushMode::Planned, FlushMode::Legacy] {
            let mut t =
                MessageTemplate::build(bin_cfg(mode), &mesh_op(), &mesh_args(1, &[1.0, 2.0], "t"))
                    .unwrap();
            // Grow.
            let grown = mesh_args(1, &[1.0, 2.0, 3.0, 4.0, 5.0], "t");
            assert_eq!(
                t.update_args(&grown).unwrap(),
                SendTier::PartialStructural,
                "{mode:?}"
            );
            t.flush();
            let fresh = MessageTemplate::build(bin_cfg(mode), &mesh_op(), &grown).unwrap();
            assert_eq!(t.to_bytes(), fresh.to_bytes(), "grow {mode:?}");
            // Shrink back below the original length.
            let shrunk = mesh_args(1, &[7.0], "t");
            t.update_args(&shrunk).unwrap();
            t.flush();
            let fresh = MessageTemplate::build(bin_cfg(mode), &mesh_op(), &shrunk).unwrap();
            assert_eq!(t.to_bytes(), fresh.to_bytes(), "shrink {mode:?}");
        }
    }

    #[test]
    fn string_shrink_pads_in_place_growth_reflows() {
        let mut t = MessageTemplate::build(
            bin_cfg(FlushMode::Planned),
            &mesh_op(),
            &mesh_args(1, &[1.0], "abcdef"),
        )
        .unwrap();
        let len0 = t.message_len();
        // Shrink: the string record rewrites inside its width, padding the
        // slack with spaces; total length is unchanged.
        t.update_args(&mesh_args(1, &[1.0], "ab")).unwrap();
        let r = t.flush();
        assert_eq!(r.shifts, 0);
        assert_eq!(t.message_len(), len0);
        let bytes = t.to_bytes();
        assert_eq!(&bytes[bytes.len() - 5..], b"    \x0B");
        // Growth past the width shifts, like an XML string.
        t.update_args(&mesh_args(1, &[1.0], "abcdefghij")).unwrap();
        t.flush();
        let fresh = MessageTemplate::build(
            bin_cfg(FlushMode::Planned),
            &mesh_op(),
            &mesh_args(1, &[1.0], "abcdefghij"),
        )
        .unwrap();
        assert_eq!(t.to_bytes(), fresh.to_bytes());
    }

    #[test]
    fn mio_struct_array_binary_lane() {
        let op = OpDesc::single(
            "sendMios",
            "urn:mesh",
            "mios",
            TypeDesc::array_of(TypeDesc::mio()),
        );
        let mios = |n: usize| {
            Value::Array(
                (0..n)
                    .map(|i| crate::value::mio(i as i32, (i * 2) as i32, i as f64 * 0.5))
                    .collect(),
            )
        };
        let mut t = MessageTemplate::build(bin_cfg(FlushMode::Planned), &op, &[mios(4)]).unwrap();
        let bytes = t.to_bytes();
        assert!(wire::is_binary(&bytes));
        // Resize down then up; bytes must always match a fresh build.
        for n in [2usize, 6, 1] {
            t.update_args(&[mios(n)]).unwrap();
            t.flush();
            let fresh =
                MessageTemplate::build(bin_cfg(FlushMode::Planned), &op, &[mios(n)]).unwrap();
            assert_eq!(t.to_bytes(), fresh.to_bytes(), "n={n}");
        }
    }

    #[test]
    fn cost_gate_prices_binary_rebuilds_in_binary_bytes() {
        // The §5 break-even gate compares plan cost to rebuild_estimate =
        // total_len + leaves. A binary template of the same payload is
        // far smaller than its XML twin, so the gate automatically prices
        // a binary rebuild cheaper — the lane needs no special casing.
        let op = mesh_op();
        let args = mesh_args(6, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], "tag");
        let bin = MessageTemplate::build(bin_cfg(FlushMode::Planned), &op, &args).unwrap();
        // Pin the twin to the XML lane explicitly: under a process-wide
        // `BSOAP_WIRE_FORMAT=binary` override, `paper_default()` would
        // otherwise build a second binary template.
        let xml = MessageTemplate::build(
            EngineConfig::paper_default()
                .with_wire_format(WireFormat::SoapXml)
                .with_flush_mode(FlushMode::Planned),
            &op,
            &args,
        )
        .unwrap();
        assert!(
            bin.rebuild_estimate() < xml.rebuild_estimate(),
            "binary rebuild ({}) must be priced below XML rebuild ({})",
            bin.rebuild_estimate(),
            xml.rebuild_estimate()
        );
        assert_eq!(
            bin.rebuild_estimate(),
            bin.message_len() as u64 + bin.dut().len() as u64
        );
    }
}
