//! The send planner: simulate a differential flush against the current
//! template geometry without mutating it (see [`crate::plan`]).
//!
//! The simulation walks the dirty DUT entries in ascending order, exactly
//! as the executor will apply them, and decides per leaf whether the new
//! serialization overwrites, rewrites in width, steals neighbor padding, or
//! shifts. One carried width override is all the state this needs: a steal
//! at entry `i` only ever narrows entry `i+1`, and the neighbor is still
//! pristine when the decision is made, so the simulated geometry matches
//! what the executor sees live.

use super::{build, MessageTemplate};
use crate::config::GrowthPolicy;
use crate::error::EngineError;
use crate::plan::{InjectedFault, OpKind, PlanCost, PlanStamp, PlannedOp, SendPlan};
use crate::schema::TypeDesc;
use crate::value::Value;
use bsoap_convert::ScalarKind;
use bsoap_obs::{Counter, Recorder};

impl MessageTemplate {
    /// Snapshot of the state a plan is valid against.
    pub(crate) fn plan_stamp(&self) -> PlanStamp {
        PlanStamp {
            leaves: self.dut.len(),
            dirty: self.dut.dirty_count(),
            total_len: self.store.total_len(),
            resizes: self.pending_resizes.len(),
        }
    }

    /// Compute a read-only [`SendPlan`] for the current dirty set and
    /// queued resizes. Does not touch a template byte.
    pub fn plan(&self) -> Result<SendPlan, EngineError> {
        if self.fault == Some(InjectedFault::PlanError) {
            return Err(EngineError::StructureMismatch {
                why: "injected planner fault".into(),
            });
        }
        let plan = self.compute_plan();
        if let Some(m) = &self.metrics {
            m.add(Counter::PlansComputed, 1);
        }
        Ok(plan)
    }

    /// The pure planning pass (uncounted; `plan()` is the metered entry).
    pub(crate) fn compute_plan(&self) -> SendPlan {
        let mut plan = SendPlan {
            tier: self.pending_tier(),
            ops: Vec::new(),
            blob: Vec::new(),
            deferred_resizes: !self.pending_resizes.is_empty(),
            cost: PlanCost::default(),
            stamp: self.plan_stamp(),
        };

        if plan.deferred_resizes {
            // Structural send: the executor applies the queued resizes and
            // re-plans the leaf patches against the post-resize geometry.
            // Estimate the resize work coarsely here so the cost gate can
            // still price the send.
            for (idx, value) in &self.pending_resizes {
                let a = &self.arrays[*idx];
                let new_len = value.array_len().unwrap_or(a.len);
                let elem_bytes = self.array_elem_bytes(*idx) as u64;
                if new_len > a.len {
                    let added = (new_len - a.len) as u64;
                    plan.cost.bytes_moved += added * elem_bytes;
                    plan.cost.values_reserialized += added * a.leaves_per_elem as u64 + 1;
                } else {
                    plan.cost.bytes_moved += (a.len - new_len) as u64 * elem_bytes;
                    plan.cost.values_reserialized += 1;
                }
            }
            plan.cost.values_reserialized += self.dut.dirty_count() as u64;
            return plan;
        }

        let float = self.config.float;
        let kernel = self.config.kernel;
        let format = self.config.wire_format;
        let growth = self.config.growth;
        let steal_on = self.config.steal;
        let entries = self.dut.entries();
        let mut scratch: Vec<u8> = Vec::with_capacity(64);
        // A planned steal at entry i narrows entry i+1 before it is
        // considered; dropped unread if i+1 turns out clean.
        let mut next_override: Option<(usize, u32)> = None;
        // First planned gap per chunk — the coalesced pass moves
        // `chunk_len − first_gap` bytes regardless of how many gaps open.
        let mut chunk_first_gap: Vec<(u32, u32)> = Vec::new();

        for (i, e) in entries.iter().enumerate() {
            if !e.dirty {
                continue;
            }
            e.value.serialize_wire(&mut scratch, float, kernel, format);
            let new_len = scratch.len() as u32;
            let lo = plan.blob.len() as u32;
            plan.blob.extend_from_slice(&scratch);
            let hi = plan.blob.len() as u32;
            let eff_width = match next_override.take() {
                Some((j, w)) if j == i => w,
                _ => e.width,
            };
            let kind = if new_len == e.ser_len {
                OpKind::Overwrite
            } else if new_len <= eff_width {
                OpKind::InWidth
            } else {
                let target = match growth {
                    GrowthPolicy::Exact => new_len,
                    GrowthPolicy::ToMax => e
                        .kind
                        .max_width()
                        .map(|m| (m as u32).max(new_len))
                        .unwrap_or(new_len),
                };
                let delta = target - eff_width;
                let neighbor = entries.get(i + 1).filter(|n| {
                    steal_on
                        && n.loc.chunk == e.loc.chunk
                        && n.pad() >= delta
                        && n.width - delta >= n.ser_len
                });
                if let Some(n) = neighbor {
                    next_override = Some((i + 1, n.width - delta));
                    let span = (n.loc.offset + n.ser_len + n.suffix_len) - e.region_end();
                    plan.cost.bytes_moved += span as u64;
                    OpKind::Steal {
                        delta,
                        new_width: target,
                    }
                } else {
                    if chunk_first_gap.last().map(|&(c, _)| c) != Some(e.loc.chunk) {
                        chunk_first_gap.push((e.loc.chunk, e.region_end()));
                    }
                    OpKind::Shift {
                        delta,
                        new_width: target,
                    }
                }
            };
            plan.cost.values_reserialized += 1;
            plan.ops.push(PlannedOp {
                entry: i,
                kind,
                lo,
                hi,
            });
        }

        for (c, gap) in chunk_first_gap {
            let chunk_len = self.store.chunk(c as usize).len() as u64;
            plan.cost.bytes_moved += chunk_len.saturating_sub(gap as u64);
        }
        plan
    }

    /// The cost a from-scratch FirstTime serialization would incur, in the
    /// same currency as [`PlanCost::total`]: every byte written, every leaf
    /// re-serialized. The §5 break-even gate compares a plan against this.
    pub fn rebuild_estimate(&self) -> u64 {
        self.store.total_len() as u64 + self.dut.len() as u64
    }
}

/// Type-check elements `[from, to)` of an array value without serializing —
/// the same acceptance set as `Builder::elements`, so a resize queued at
/// `update_args` time cannot fail when the executor applies it at flush
/// time.
pub(crate) fn validate_elements(
    item_desc: &TypeDesc,
    value: &Value,
    from: usize,
    to: usize,
) -> Result<(), EngineError> {
    match (value, item_desc) {
        (Value::DoubleArray(_), TypeDesc::Scalar(ScalarKind::Double)) => Ok(()),
        (Value::IntArray(_), TypeDesc::Scalar(ScalarKind::Int)) => Ok(()),
        (Value::Array(elems), _) => {
            for elem in &elems[from..to] {
                validate_element(item_desc, elem)?;
            }
            Ok(())
        }
        (v, _) => Err(EngineError::TypeMismatch {
            at: "array".to_owned(),
            expected: "array value matching item type",
            found: v.variant_name(),
        }),
    }
}

/// Mirror of `Builder::one_element` / `Builder::plain_value` checks.
fn validate_element(desc: &TypeDesc, value: &Value) -> Result<(), EngineError> {
    match (desc, value) {
        (TypeDesc::Scalar(kind), v) => build::scalar_from_value(v, *kind).map(|_| ()),
        (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
            for ((_, fdesc), fval) in fields.iter().zip(vals) {
                validate_element(fdesc, fval)?;
            }
            Ok(())
        }
        (d, v) => Err(EngineError::TypeMismatch {
            at: "array item".to_owned(),
            expected: match d {
                TypeDesc::Struct { .. } => "Struct",
                _ => "scalar",
            },
            found: v.variant_name(),
        }),
    }
}
