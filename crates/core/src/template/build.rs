//! First-time send: full serialization and template construction.
//!
//! "Messages are completely serialized and saved during the first
//! invocation of the SOAP call" (§1). The builder walks the argument
//! values, appending tag runs and DUT-tracked field regions to the chunk
//! store in document order.

use super::{ArrayInfo, MessageTemplate, TemplateStats};
use crate::config::EngineConfig;
use crate::dut::{DutEntry, DutTable};
use crate::error::EngineError;
use crate::schema::{OpDesc, TypeDesc};
use crate::soap;
use crate::value::{Scalar, Value};
use bsoap_chunks::{ChunkStore, Loc};
use bsoap_convert::{ScalarKind, INT_MAX_WIDTH};

/// Byte length of the fixed close-tag run after an element's last leaf
/// region (0 for scalar items — their close tag is the leaf suffix).
pub(crate) fn elem_close_run(item_desc: &TypeDesc) -> usize {
    match item_desc {
        TypeDesc::Scalar(_) => 0,
        TypeDesc::Struct { .. } => {
            last_field_close_run(item_desc) + soap::elem_close(soap::ITEM_NAME).len()
        }
        TypeDesc::Array { .. } => unreachable!("validated: no nested arrays"),
    }
}

fn last_field_close_run(desc: &TypeDesc) -> usize {
    match desc {
        TypeDesc::Struct { fields, .. } => {
            let (fname, fdesc) = fields.last().expect("structs have fields");
            match fdesc {
                TypeDesc::Scalar(_) => 0,
                TypeDesc::Struct { .. } => {
                    last_field_close_run(fdesc) + soap::elem_close(fname).len()
                }
                TypeDesc::Array { .. } => unreachable!("validated: no nested arrays"),
            }
        }
        _ => 0,
    }
}

/// Reject template shapes the engine does not support: arrays are only
/// allowed as top-level parameters, and array items are scalars or structs
/// (of scalars/structs). This matches the paper's workloads exactly
/// (arrays of ints, doubles, and MIOs).
pub(crate) fn validate_param_type(desc: &TypeDesc, top_level: bool) -> Result<(), EngineError> {
    match desc {
        TypeDesc::Scalar(_) => Ok(()),
        TypeDesc::Struct { fields, .. } => {
            for (_, f) in fields {
                if matches!(f, TypeDesc::Array { .. }) {
                    return Err(EngineError::StructureMismatch {
                        why: "arrays inside structs are not supported by templates".into(),
                    });
                }
                validate_param_type(f, false)?;
            }
            Ok(())
        }
        TypeDesc::Array { item } => {
            if !top_level {
                return Err(EngineError::StructureMismatch {
                    why: "nested arrays are not supported by templates".into(),
                });
            }
            match item.as_ref() {
                TypeDesc::Scalar(_) => Ok(()),
                TypeDesc::Struct { .. } => validate_param_type(item, false),
                TypeDesc::Array { .. } => Err(EngineError::StructureMismatch {
                    why: "arrays of arrays are not supported by templates".into(),
                }),
            }
        }
    }
}

/// Internal builder state.
pub(crate) struct Builder {
    pub config: EngineConfig,
    pub store: ChunkStore,
    pub dut: DutTable,
    pub arrays: Vec<ArrayInfo>,
    pub(crate) scratch: Vec<u8>,
    pub(crate) region: Vec<u8>,
}

impl Builder {
    pub(crate) fn new(config: EngineConfig) -> Self {
        Builder {
            config,
            store: ChunkStore::new(config.chunk),
            dut: DutTable::default(),
            arrays: Vec::new(),
            scratch: Vec::with_capacity(64),
            region: Vec::with_capacity(128),
        }
    }

    /// Current append position (end of the last chunk). A `Loc` at a chunk
    /// boundary is byte-equivalent to `(next chunk, 0)`.
    pub(crate) fn tell(&self) -> Loc {
        if self.store.chunk_count() == 0 {
            Loc::new(0, 0)
        } else {
            let idx = self.store.chunk_count() - 1;
            Loc::new(idx, self.store.chunk(idx).len())
        }
    }

    /// Append raw tag bytes.
    pub(crate) fn raw(&mut self, s: &str) {
        self.store.append_region(s.as_bytes());
    }

    /// Append raw marker bytes (the binary lane's tag runs).
    pub(crate) fn raw_bytes(&mut self, bytes: &[u8]) {
        self.store.append_region(bytes);
    }

    /// Append one DUT-tracked leaf region `[value][close_tag][pad]`.
    ///
    /// `width_override` forces a specific minimum width (the array-length
    /// field stuffs to `INT_MAX_WIDTH` so resizes never shift). On the
    /// binary lane the width is always exactly the serialized length:
    /// numeric records are fixed-width by construction, so stuffing buys
    /// nothing, and string records carry their own length prefix.
    pub(crate) fn leaf(&mut self, value: Scalar, close_tag: &str, width_override: Option<usize>) {
        let kind = value.kind();
        value.serialize_wire(
            &mut self.scratch,
            self.config.float,
            self.config.kernel,
            self.config.wire_format,
        );
        let ser_len = self.scratch.len();
        let width = if self.config.wire_format == crate::config::WireFormat::CompactBinary {
            ser_len
        } else {
            match width_override {
                Some(w) => w.max(ser_len),
                None => self.config.width.initial_width(kind, ser_len),
            }
        };
        self.region.clear();
        self.region.extend_from_slice(&self.scratch);
        self.region.extend_from_slice(close_tag.as_bytes());
        self.region.resize(width + close_tag.len(), b' ');
        let loc = self.store.append_region(&self.region);
        self.dut.push(DutEntry {
            kind,
            dirty: false,
            loc,
            ser_len: ser_len as u32,
            width: width as u32,
            suffix_len: close_tag.len() as u32,
            value,
        });
    }

    /// Serialize a non-array value under element name `name`.
    pub(crate) fn plain_value(
        &mut self,
        name: &str,
        desc: &TypeDesc,
        value: &Value,
    ) -> Result<(), EngineError> {
        match (desc, value) {
            (TypeDesc::Scalar(kind), v) => {
                let scalar = scalar_from_value(v, *kind)?;
                self.raw(&soap::scalar_open(name, kind.xsi_type()));
                self.leaf(scalar, &soap::elem_close(name), None);
                Ok(())
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                self.raw(&format!("<{name} xsi:type=\"{}\">", desc.xsi_type()));
                for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                    self.plain_value(fname, fdesc, fval)?;
                }
                self.raw(&soap::elem_close(name));
                Ok(())
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: format!("element {name}"),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    TypeDesc::Array { .. } => "Array",
                    TypeDesc::Scalar(_) => "scalar",
                },
                found: v.variant_name(),
            }),
        }
    }

    /// Serialize the elements of an array value; used both at build time
    /// and when growing an array (resize builds into a fresh `Builder`).
    pub(crate) fn elements(
        &mut self,
        item_desc: &TypeDesc,
        value: &Value,
        from: usize,
        to: usize,
    ) -> Result<(), EngineError> {
        if self.config.wire_format == crate::config::WireFormat::CompactBinary {
            return self.binary_elements(item_desc, value, from, to);
        }
        match (value, item_desc) {
            (Value::DoubleArray(v), TypeDesc::Scalar(ScalarKind::Double)) => {
                let open = soap::scalar_open(soap::ITEM_NAME, "xsd:double");
                let close = soap::elem_close(soap::ITEM_NAME);
                for &x in &v[from..to] {
                    self.raw(&open);
                    self.leaf(Scalar::Double(x), &close, None);
                }
                Ok(())
            }
            (Value::IntArray(v), TypeDesc::Scalar(ScalarKind::Int)) => {
                let open = soap::scalar_open(soap::ITEM_NAME, "xsd:int");
                let close = soap::elem_close(soap::ITEM_NAME);
                for &x in &v[from..to] {
                    self.raw(&open);
                    self.leaf(Scalar::Int(x), &close, None);
                }
                Ok(())
            }
            (Value::Array(elems), _) => {
                for elem in &elems[from..to] {
                    self.one_element(item_desc, elem)?;
                }
                Ok(())
            }
            (v, _) => Err(EngineError::TypeMismatch {
                at: "array".to_owned(),
                expected: "array value matching item type",
                found: v.variant_name(),
            }),
        }
    }

    /// Serialize a single `<item>` element.
    fn one_element(&mut self, item_desc: &TypeDesc, elem: &Value) -> Result<(), EngineError> {
        match (item_desc, elem) {
            (TypeDesc::Scalar(kind), v) => {
                let scalar = scalar_from_value(v, *kind)?;
                self.raw(&soap::scalar_open(soap::ITEM_NAME, kind.xsi_type()));
                self.leaf(scalar, &soap::elem_close(soap::ITEM_NAME), None);
                Ok(())
            }
            (TypeDesc::Struct { fields, .. }, Value::Struct(vals)) => {
                self.raw(&format!(
                    "<{} xsi:type=\"{}\">",
                    soap::ITEM_NAME,
                    item_desc.xsi_type()
                ));
                for ((fname, fdesc), fval) in fields.iter().zip(vals) {
                    self.plain_value(fname, fdesc, fval)?;
                }
                self.raw(&soap::elem_close(soap::ITEM_NAME));
                Ok(())
            }
            (d, v) => Err(EngineError::TypeMismatch {
                at: "array item".to_owned(),
                expected: match d {
                    TypeDesc::Struct { .. } => "Struct",
                    _ => "scalar",
                },
                found: v.variant_name(),
            }),
        }
    }

    /// Serialize a full array parameter: open tag with DUT-tracked length,
    /// elements, close tag. Registers the [`ArrayInfo`].
    pub(crate) fn array_param(
        &mut self,
        pidx: usize,
        name: &str,
        item_desc: &TypeDesc,
        value: &Value,
    ) -> Result<(), EngineError> {
        let len = value.array_len().ok_or_else(|| EngineError::TypeMismatch {
            at: format!("param {pidx} ({name})"),
            expected: "array value",
            found: value.variant_name(),
        })?;
        let (prefix, suffix) = soap::array_open_parts(name, &item_desc.xsi_type());
        self.raw(&prefix);
        let len_leaf = self.dut.len();
        // The length field is always stuffed to the full int width so a
        // resize rewrites it in place, never shifting the array open tag.
        self.leaf(Scalar::Int(len as i32), suffix, Some(INT_MAX_WIDTH));
        self.raw("\n");
        let content_start = self.tell();
        let base_leaf = self.dut.len();
        self.elements(item_desc, value, 0, len)?;
        let content_end = self.tell();
        self.raw(&soap::elem_close(name));
        self.raw("\n");
        self.arrays.push(ArrayInfo {
            param: pidx,
            base_leaf,
            leaves_per_elem: item_desc.leaves_per_instance(),
            len,
            len_leaf,
            item_desc: item_desc.clone(),
            content_start,
            content_end,
            elem_close_run: elem_close_run(item_desc) as u32,
        });
        Ok(())
    }
}

/// Convert a `Value` scalar variant into a `Scalar`, checking the kind.
pub(crate) fn scalar_from_value(v: &Value, kind: ScalarKind) -> Result<Scalar, EngineError> {
    let scalar = match v {
        Value::Int(x) => Scalar::Int(*x),
        Value::Long(x) => Scalar::Long(*x),
        Value::Double(x) => Scalar::Double(*x),
        Value::Bool(x) => Scalar::Bool(*x),
        Value::Str(x) => Scalar::Str(x.as_str().into()),
        other => {
            return Err(EngineError::TypeMismatch {
                at: "scalar".to_owned(),
                expected: "scalar value",
                found: other.variant_name(),
            })
        }
    };
    if scalar.kind() != kind {
        return Err(EngineError::TypeMismatch {
            at: "scalar".to_owned(),
            expected: kind.xsi_type(),
            found: v.variant_name(),
        });
    }
    Ok(scalar)
}

impl MessageTemplate {
    /// Full serialization of `args` for `op` — the first-time send path.
    ///
    /// The resulting template holds the complete serialized message, its
    /// DUT table, and array bookkeeping; subsequent sends go through
    /// [`MessageTemplate::update_args`] / [`MessageTemplate::send`].
    pub fn build(
        config: EngineConfig,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<MessageTemplate, EngineError> {
        op.check_args(args)?;
        for p in &op.params {
            validate_param_type(&p.desc, true)?;
        }
        if config.wire_format == crate::config::WireFormat::CompactBinary {
            return Self::build_binary(config, op, args);
        }
        let mut b = Builder::new(config);
        b.raw(soap::XML_DECL);
        b.raw(&soap::envelope_open(&op.namespace));
        b.raw(soap::BODY_OPEN);
        b.raw(&soap::op_open(&op.name));
        for (pidx, (param, arg)) in op.params.iter().zip(args).enumerate() {
            match &param.desc {
                TypeDesc::Array { item } => b.array_param(pidx, &param.name, item, arg)?,
                desc => {
                    b.plain_value(&param.name, desc, arg)?;
                    b.raw("\n");
                }
            }
        }
        b.raw(&soap::op_close(&op.name));
        b.raw(soap::CLOSES);

        let stats = TemplateStats {
            first_time: 1,
            ..TemplateStats::default()
        };
        Ok(MessageTemplate {
            config,
            op: op.clone(),
            store: b.store,
            dut: b.dut,
            arrays: b.arrays,
            scratch: b.scratch,
            region_scratch: b.region,
            stats,
            structure_changed: false,
            pending_resizes: Vec::new(),
            fault: None,
            metrics: None,
        })
    }

    /// Serialize elements `[from, to)` of an array value as a standalone
    /// fragment (no envelope, no array open/close) — the window object of
    /// chunk overlaying (§3.3). The fragment's DUT leaves are indexed from
    /// zero in element order.
    pub(crate) fn build_fragment(
        config: EngineConfig,
        item_desc: &TypeDesc,
        value: &Value,
        from: usize,
        to: usize,
    ) -> Result<MessageTemplate, EngineError> {
        let mut b = Builder::new(config);
        b.elements(item_desc, value, from, to)?;
        Ok(MessageTemplate {
            config,
            op: OpDesc::new("__overlay_fragment", "", Vec::new()),
            store: b.store,
            dut: b.dut,
            arrays: Vec::new(),
            scratch: b.scratch,
            region_scratch: b.region,
            stats: TemplateStats::default(),
            structure_changed: false,
            pending_resizes: Vec::new(),
            fault: None,
            metrics: None,
        })
    }
}
