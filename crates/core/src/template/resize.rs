//! Partial structural matches: in-place template expansion/contraction
//! when an array's length changes (§3, "the template could be expanded (or
//! contracted) to meet the requirements of the new message").
//!
//! Geometry invariant used throughout: a `Loc` at `(c, len(c))` denotes the
//! same byte position as `(c+1, 0)` — positions are document offsets, and
//! chunk boundaries are transparent.

use super::build::Builder;
use super::MessageTemplate;
use crate::error::EngineError;
use crate::value::{Scalar, Value};
use bsoap_chunks::Loc;

impl MessageTemplate {
    /// Resize array `array_idx` to match `value`'s length. The common
    /// prefix of elements must already have been diffed by the caller;
    /// this routine removes surplus tail elements or serializes and grafts
    /// new ones, updates the length field, and fixes all DUT pointers.
    pub(crate) fn resize_array(
        &mut self,
        array_idx: usize,
        value: &Value,
    ) -> Result<(), EngineError> {
        let new_len = value.array_len().expect("caller checked array value");
        let old_len = self.arrays[array_idx].len;
        debug_assert_ne!(new_len, old_len);

        if new_len < old_len {
            self.shrink_array(array_idx, new_len);
        } else {
            self.grow_array(array_idx, value, new_len)?;
        }

        // Rewrite the (stuffed, shift-free) length field lazily via the
        // normal dirty path.
        let len_leaf = self.arrays[array_idx].len_leaf;
        self.dut.set_value(len_leaf, Scalar::Int(new_len as i32));
        self.arrays[array_idx].len = new_len;
        self.structure_changed = true;
        Ok(())
    }

    /// Advance a document position by `n` bytes, walking across chunk
    /// boundaries.
    fn advance_pos(&self, mut pos: Loc, mut n: usize) -> Loc {
        loop {
            let chunk_len = self.store.chunk(pos.chunk as usize).len();
            let room = chunk_len - pos.offset as usize;
            if n <= room {
                pos.offset += n as u32;
                return pos;
            }
            n -= room;
            pos.chunk += 1;
            pos.offset = 0;
        }
    }

    // ------------------------------------------------------------------
    // Contraction
    // ------------------------------------------------------------------

    fn shrink_array(&mut self, array_idx: usize, new_len: usize) {
        let (base, lpe, close_run) = {
            let a = &self.arrays[array_idx];
            (a.base_leaf, a.leaves_per_elem, a.elem_close_run as usize)
        };
        let old_leaf_end = base + self.arrays[array_idx].len * lpe;
        let new_leaf_end = base + new_len * lpe;

        // Deletion range [del_start, del_end).
        let del_start = if new_len == 0 {
            self.arrays[array_idx].content_start
        } else {
            let last_kept = self.dut.entry(new_leaf_end - 1);
            self.advance_pos(
                Loc {
                    chunk: last_kept.loc.chunk,
                    offset: last_kept.region_end(),
                },
                close_run,
            )
        };
        let del_end = self.arrays[array_idx].content_end;

        // Drop the removed leaves from the DUT first so fix-up sweeps only
        // see survivors; remember how many entries vanished for the
        // later-array index adjustment.
        let removed_entries = old_leaf_end - new_leaf_end;
        self.dut.remove_range(new_leaf_end..old_leaf_end);

        // Delete bytes chunk by chunk, last chunk first so indices stay
        // stable while iterating.
        let (c1, o1) = (del_start.chunk as usize, del_start.offset as usize);
        let (c2, o2) = (del_end.chunk as usize, del_end.offset as usize);
        for c in (c1..=c2).rev() {
            let from = if c == c1 { o1 } else { 0 };
            let to = if c == c2 {
                o2
            } else {
                self.store.chunk(c).len()
            };
            if to > from {
                self.store.delete_range(c, from, to - from);
                self.fixup_delete(c as u32, to as u32, (to - from) as u32);
            }
        }
        // Chunks emptied by the deletion are kept in place: a `(c, 0)`
        // position in an empty chunk is document-equivalent to the start of
        // the next chunk, the gather view skips empty chunks, and keeping
        // them means no marker can ever dangle. (Repeated grow/shrink can
        // accumulate a few empty slots; that is bounded by resize count and
        // harmless.)

        // Later arrays' leaf indices shift down by the removed entry count.
        for a in &mut self.arrays {
            if a.base_leaf > base {
                a.base_leaf -= removed_entries;
                a.len_leaf -= removed_entries;
            }
        }
    }

    /// After deleting `len` bytes ending at `(chunk, end)`: move every
    /// entry/marker in that chunk at-or-past `end` left by `len`.
    fn fixup_delete(&mut self, chunk: u32, end: u32, len: u32) {
        for e in self.dut.entries_mut_raw() {
            if e.loc.chunk == chunk && e.loc.offset >= end {
                e.loc.offset -= len;
            }
        }
        for a in &mut self.arrays {
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= end {
                    m.offset -= len;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expansion
    // ------------------------------------------------------------------

    fn grow_array(
        &mut self,
        array_idx: usize,
        value: &Value,
        new_len: usize,
    ) -> Result<(), EngineError> {
        let (base, lpe, old_len, item_desc) = {
            let a = &self.arrays[array_idx];
            (a.base_leaf, a.leaves_per_elem, a.len, a.item_desc.clone())
        };
        let insert_leaf_at = base + old_len * lpe;

        // Serialize the new tail elements into a fresh mini-store with the
        // same chunking config.
        let mut mini = Builder::new(self.config);
        mini.elements(&item_desc, value, old_len, new_len)?;
        let tail_total = mini.store.total_len();
        let added_entries = mini.dut.len();
        debug_assert_eq!(added_entries, (new_len - old_len) * lpe);

        let p = self.arrays[array_idx].content_end;
        let (c, o) = (p.chunk as usize, p.offset as usize);

        let new_content_end;
        if mini.store.chunk_count() == 1 && self.store.try_grow(c, tail_total) {
            // Inline path: open a gap at the insertion point and write the
            // tail bytes directly into the existing chunk.
            self.store.shift_tail_right(c, o, tail_total);
            // Everything at-or-past the insertion point moves right — but
            // not this array's own markers, which we set manually below.
            self.fixup_insert_inline(array_idx, c as u32, o as u32, tail_total as u32);
            let mini_chunk = mini.store.chunk(0).bytes().to_vec();
            self.store.write_at(Loc::new(c, o), &mini_chunk);
            // Rehome the new entries into the main store's coordinates.
            let mut new_entries = Vec::with_capacity(added_entries);
            for e in mini.dut.entries() {
                let mut e = e.clone();
                debug_assert_eq!(e.loc.chunk, 0);
                e.loc = Loc::new(c, o + e.loc.offset as usize);
                new_entries.push(e);
            }
            self.dut.splice_in(insert_leaf_at, new_entries);
            new_content_end = Loc::new(c, o + tail_total);
        } else {
            // Graft path: split at the insertion point if it is mid-chunk,
            // then insert the mini-store's chunks wholesale.
            let chunk_len = self.store.chunk(c).len();
            let insert_at = if o == chunk_len {
                c + 1
            } else if o == 0 {
                c
            } else {
                self.store.split_chunk(c, o);
                self.fixup_split_full(array_idx, c as u32, o as u32);
                c + 1
            };
            let mini_chunks = mini.store.chunk_count();
            let last_mini_len = mini.store.chunk(mini_chunks - 1).len();
            let count = self.store.graft(insert_at, mini.store);
            self.fixup_chunks_inserted(array_idx, insert_at as u32, count as u32);
            let mut new_entries = Vec::with_capacity(added_entries);
            for e in mini.dut.entries() {
                let mut e = e.clone();
                e.loc.chunk += insert_at as u32;
                new_entries.push(e);
            }
            self.dut.splice_in(insert_leaf_at, new_entries);
            new_content_end = Loc::new(insert_at + count - 1, last_mini_len);
        }

        // Later arrays' leaf indices shift up.
        for a in &mut self.arrays {
            if a.base_leaf > base {
                a.base_leaf += added_entries;
                a.len_leaf += added_entries;
            }
        }
        self.arrays[array_idx].content_end = new_content_end;
        Ok(())
    }

    /// Inline-insert fix-up: entries/markers in `chunk` at-or-past `at`
    /// move right by `delta`. This array's own markers are exempt (they are
    /// reset explicitly by the caller).
    fn fixup_insert_inline(&mut self, array_idx: usize, chunk: u32, at: u32, delta: u32) {
        for e in self.dut.entries_mut_raw() {
            if e.loc.chunk == chunk && e.loc.offset >= at {
                e.loc.offset += delta;
            }
        }
        for (i, a) in self.arrays.iter_mut().enumerate() {
            if i == array_idx {
                continue;
            }
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= at {
                    m.offset += delta;
                }
            }
        }
    }

    /// Full-sweep split fix-up (resize variant of the patch-path helper —
    /// resize cannot assume the split point is past a known DUT index).
    fn fixup_split_full(&mut self, array_idx: usize, chunk: u32, split_at: u32) {
        for e in self.dut.entries_mut_raw() {
            if e.loc.chunk == chunk && e.loc.offset >= split_at {
                e.loc.chunk = chunk + 1;
                e.loc.offset -= split_at;
            } else if e.loc.chunk > chunk {
                e.loc.chunk += 1;
            }
        }
        for (i, a) in self.arrays.iter_mut().enumerate() {
            if i == array_idx {
                continue;
            }
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk == chunk && m.offset >= split_at {
                    m.chunk = chunk + 1;
                    m.offset -= split_at;
                } else if m.chunk > chunk {
                    m.chunk += 1;
                }
            }
        }
    }

    /// Chunk-insertion fix-up: everything in chunks ≥ `at` renumbers.
    fn fixup_chunks_inserted(&mut self, array_idx: usize, at: u32, count: u32) {
        for e in self.dut.entries_mut_raw() {
            if e.loc.chunk >= at {
                e.loc.chunk += count;
            }
        }
        for (i, a) in self.arrays.iter_mut().enumerate() {
            if i == array_idx {
                continue;
            }
            for m in [&mut a.content_start, &mut a.content_end] {
                if m.chunk >= at {
                    m.chunk += count;
                }
            }
        }
    }
}
