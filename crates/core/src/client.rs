//! The client stub: automatic four-tier differential sends.
//!
//! "When called upon to make an outcall, the client stub determines
//! whether parts or all of the last copy of the same message type can be
//! reused" (§3.1). [`Client::call`] is that stub: it consults the template
//! cache, diffs the new arguments against the saved copy, resizes on a
//! length mismatch, and sends through the cheapest tier.
//!
//! Two §6 ("Future Work") refinements are opt-in:
//!
//! * [`Client::set_templates_per_key`] keeps up to *k* templates per
//!   `(endpoint, structure)` and serves the one whose array lengths match
//!   the outgoing call — alternating message shapes stop paying for
//!   resizes;
//! * [`Client::set_endpoint_sharing`] lets a first call to a *new*
//!   endpoint clone a same-structure template saved for another service
//!   and merely diff it, amortizing serialization across services.

use crate::cache::{TemplateCache, TemplateKey};
use crate::config::{EngineConfig, FlushMode, StoreMode, WireFormat};
use crate::error::EngineError;
use crate::overlay::{max_element_bytes, OverlayReport, OverlaySender};
use crate::schema::{OpDesc, TypeDesc};
use crate::sendv::write_all_vectored;
use crate::store::{Checkout, StoreKey, TemplateStore};
use crate::template::{MessageTemplate, SendReport, SendTier};
use crate::value::Value;
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;

/// Cumulative client statistics across all templates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls that built a new template from scratch.
    pub first_time: u64,
    /// Calls resent verbatim.
    pub content_match: u64,
    /// Calls that patched values in place.
    pub perfect_structural: u64,
    /// Calls that resized the template.
    pub partial_structural: u64,
    /// Calls that bootstrapped a new endpoint by cloning a sibling
    /// template (§6 cross-endpoint sharing). Also counted under the tier
    /// the post-clone diff realized.
    pub shared_clones: u64,
    /// Calls served in degraded mode: stateless full serialization with
    /// no template retained. Also counted under `first_time`.
    pub degraded_sends: u64,
    /// Total bytes handed to transports.
    pub bytes_sent: u64,
}

impl ClientStats {
    /// Total call count.
    pub fn calls(&self) -> u64 {
        self.first_time + self.content_match + self.perfect_structural + self.partial_structural
    }

    fn record(&mut self, report: &SendReport) {
        match report.tier {
            SendTier::FirstTime => self.first_time += 1,
            SendTier::ContentMatch => self.content_match += 1,
            SendTier::PerfectStructural => self.perfect_structural += 1,
            SendTier::PartialStructural => self.partial_structural += 1,
        }
        self.bytes_sent += report.bytes as u64;
    }
}

/// Per-endpoint failure bookkeeping for the degraded-mode ladder.
#[derive(Clone, Copy, Debug, Default)]
struct EndpointHealth {
    /// Transport failures since the last success.
    consecutive_failures: u32,
    /// Whether the endpoint is demoted to stateless full sends.
    degraded: bool,
    /// Successes accumulated while degraded (drives recovery).
    degraded_successes: u32,
}

/// How [`Client::call_overlaid`] served a call.
#[derive(Clone, Copy, Debug)]
pub enum OverlaidOutcome {
    /// Large enough to stream: served by the chunk-overlay pipeline.
    Streamed(OverlayReport),
    /// Below [`EngineConfig::overlay_threshold_bytes`] (or not a
    /// single-array call): served by the buffered tier machinery.
    Buffered(SendReport),
}

/// A differential-serialization SOAP client.
#[derive(Debug)]
pub struct Client {
    config: EngineConfig,
    cache: TemplateCache,
    stats: ClientStats,
    templates_per_key: usize,
    share_across_endpoints: bool,
    metrics: Option<Arc<Metrics>>,
    health: HashMap<String, EndpointHealth>,
    /// Cached overlay senders, keyed like templates: the window fragment
    /// is the overlaid region's "saved copy", so keeping the sender across
    /// calls is what preserves DUT/tier semantics between streamed sends.
    overlays: HashMap<TemplateKey, OverlaySender>,
    /// [`StoreMode::Shared`] template ownership: the shared store handle
    /// (injected via [`Client::set_template_store`], or a private one
    /// created lazily from the config's budget knobs).
    store: Option<Arc<TemplateStore>>,
    /// Tenant this client's templates are charged to in the shared store.
    tenant: u64,
    /// Templates checked out of the shared store for in-place mutation
    /// ([`Client::template_mut`] / [`Client::prepare`]). Returned to the
    /// store at the next tiered call on the same key; their bytes left
    /// the store budget at lease time.
    leases: HashMap<TemplateKey, MessageTemplate>,
    /// Overlay-window bytes currently reserved against the shared store's
    /// budget, per key.
    overlay_reserved: HashMap<TemplateKey, u64>,
    /// Per-endpoint negotiated wire format overrides (set by the
    /// transport's negotiation layer once a peer advertises the binary
    /// lane). Endpoints not present use the config's `wire_format`.
    endpoint_formats: HashMap<String, WireFormat>,
}

impl Client {
    /// Client with the given engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        Client {
            config,
            cache: TemplateCache::new(),
            stats: ClientStats::default(),
            templates_per_key: 1,
            share_across_endpoints: false,
            metrics: None,
            health: HashMap::new(),
            overlays: HashMap::new(),
            store: None,
            tenant: 0,
            leases: HashMap::new(),
            overlay_reserved: HashMap::new(),
            endpoint_formats: HashMap::new(),
        }
    }

    /// Client with the paper-default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::paper_default())
    }

    /// The engine configuration in force.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The per-client template cache — populated only under
    /// [`StoreMode::PerClient`]; see [`Client::template_count`] /
    /// [`Client::cached_keys`] for mode-agnostic accounting.
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// Route template ownership through `store` (shared across clients,
    /// server cores, even processes' worth of tenants). Only consulted
    /// under [`StoreMode::Shared`]; without an injected store the client
    /// lazily creates a private one from the config's budget knobs.
    pub fn set_template_store(&mut self, store: Arc<TemplateStore>) {
        if let Some(m) = &self.metrics {
            store.set_metrics(Arc::clone(m));
        }
        self.store = Some(store);
    }

    /// The template store, if one exists yet (injected or lazily built).
    pub fn template_store(&self) -> Option<&Arc<TemplateStore>> {
        self.store.as_ref()
    }

    /// Tenant this client's templates are charged to in the shared store
    /// (default `0`).
    pub fn set_tenant(&mut self, tenant: u64) {
        self.tenant = tenant;
    }

    /// The shared-store handle, creating a private store from the
    /// config's budget knobs on first use.
    fn store_handle(&mut self) -> Arc<TemplateStore> {
        if self.store.is_none() {
            let store = TemplateStore::new(
                self.config.store_budget_bytes,
                self.config.tenant_quota_bytes,
            );
            if let Some(m) = &self.metrics {
                store.set_metrics(Arc::clone(m));
            }
            self.store = Some(Arc::new(store));
        }
        Arc::clone(self.store.as_ref().expect("just created"))
    }

    fn store_key(&self, key: &TemplateKey) -> StoreKey {
        StoreKey::new(self.tenant, key.clone())
    }

    /// Total templates saved for this client, whichever mode owns them.
    /// Under [`StoreMode::Shared`] with an injected store this counts the
    /// whole store (other clients' templates included) plus this client's
    /// outstanding leases.
    pub fn template_count(&self) -> usize {
        match self.config.store_mode {
            StoreMode::PerClient => self.cache.template_count(),
            StoreMode::Shared => {
                self.store.as_ref().map_or(0, |s| s.template_count()) + self.leases.len()
            }
        }
    }

    /// Distinct `(endpoint, structure)` keys with at least one saved
    /// template, whichever mode owns them.
    pub fn cached_keys(&self) -> usize {
        match self.config.store_mode {
            StoreMode::PerClient => self.cache.len(),
            StoreMode::Shared => {
                let in_store = self.store.as_ref().map_or(0, |s| s.len());
                let leased_only = self
                    .leases
                    .keys()
                    .filter(|k| {
                        self.store
                            .as_ref()
                            .is_none_or(|s| !s.contains(&StoreKey::new(self.tenant, (*k).clone())))
                    })
                    .count();
                in_store + leased_only
            }
        }
    }

    /// Attach an observability registry. Every subsequent call records its
    /// tier counter and patch-work counters (via the template flush), plus
    /// a per-tier send-latency observation covering diff + flush +
    /// transport. Templates built from now on inherit the registry.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        if let Some(store) = &self.store {
            store.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Keep up to `k` templates per `(endpoint, structure)` key (§6).
    /// Values are clamped to at least 1. With `k > 1`, a call whose array
    /// lengths match no cached template builds a new variant instead of
    /// resizing, up to the cap; the least recently used variant is
    /// evicted.
    pub fn set_templates_per_key(&mut self, k: usize) {
        self.templates_per_key = k.max(1);
    }

    /// Enable cross-endpoint template sharing (§6): first calls to a new
    /// endpoint clone a same-structure sibling template and diff it
    /// rather than serializing from scratch.
    pub fn set_endpoint_sharing(&mut self, on: bool) {
        self.share_across_endpoints = on;
    }

    /// Pin the wire format used for `endpoint` — the hook the transport's
    /// negotiation layer calls once the peer's `X-BSOAP-Accept` advert (or
    /// its absence) settles the lane. Templates for the endpoint are keyed
    /// by format, so switching lanes never patches bytes of the other lane;
    /// templates already saved for the previous lane simply go cold.
    pub fn set_endpoint_format(&mut self, endpoint: &str, format: WireFormat) {
        self.endpoint_formats.insert(endpoint.to_owned(), format);
    }

    /// The wire format in force for `endpoint`: the negotiated override if
    /// one was pinned, else the config's `wire_format`.
    pub fn endpoint_format(&self, endpoint: &str) -> WireFormat {
        self.endpoint_formats
            .get(endpoint)
            .copied()
            .unwrap_or(self.config.wire_format)
    }

    /// The engine config with `endpoint`'s negotiated wire format applied.
    fn effective_config(&self, endpoint: &str) -> EngineConfig {
        self.config.with_wire_format(self.endpoint_format(endpoint))
    }

    /// Template key for `(endpoint, op)` under the endpoint's format.
    fn key_for(&self, endpoint: &str, op: &OpDesc) -> TemplateKey {
        TemplateKey::for_format(endpoint, op, self.endpoint_format(endpoint))
    }

    /// Invoke `op` on `endpoint` with `args`, sending the message to
    /// `sink`. Selects the cheapest of the four matching tiers.
    pub fn call(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        sink: &mut impl Write,
    ) -> Result<SendReport, EngineError> {
        self.call_via(endpoint, op, args, |slices| {
            let mut w = sink;
            write_all_vectored(&mut w, slices)
        })
    }

    /// Like [`Client::call`], but hands the serialized message (as its
    /// chunk gather list) to `send` — the hook for framed transports
    /// (e.g. an HTTP POST per message) that need to see whole-message
    /// boundaries rather than a byte stream.
    pub fn call_via<F>(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let out = if self.is_degraded(endpoint) {
            self.degraded_call(self.effective_config(endpoint), op, args, send)
        } else {
            self.call_tiered(endpoint, op, args, send)
        };
        match &out {
            Ok(_) => self.note_send_success(endpoint),
            // Transport failures — I/O and deadline expiry alike — drive
            // the degraded-mode ladder. `DeadlinesExceeded` is counted
            // (and traced) by the layer that *detected* the expiry (the
            // transport's `Resilience`); counting here too would read one
            // expired call as two on a shared registry.
            Err(EngineError::Io(_) | EngineError::DeadlineExceeded) => {
                self.note_send_failure(endpoint, op);
            }
            // Semantic errors (schema/arity/plan) say nothing about the
            // endpoint's health.
            Err(_) => {}
        }
        out
    }

    /// Whether the overlay path would engage for this call: a
    /// single-array operation whose worst-case serialized size meets
    /// [`EngineConfig::overlay_threshold_bytes`].
    pub fn overlay_engages(&self, op: &OpDesc, args: &[Value]) -> bool {
        if op.params.len() != 1 || args.len() != 1 {
            return false;
        }
        let TypeDesc::Array { item } = &op.params[0].desc else {
            return false;
        };
        let Some(n) = args[0].array_len() else {
            return false;
        };
        n.saturating_mul(max_element_bytes(item)) >= self.config.overlay_threshold_bytes
    }

    /// Invoke `op` streaming the array argument through the chunk-overlay
    /// pipeline (§3.3) when the call is large enough to benefit, falling
    /// through to the ordinary tiered [`Client::call`] otherwise. The
    /// engagement decision is [`Client::overlay_engages`]; the knobs are
    /// [`EngineConfig::overlay_threshold_bytes`] and
    /// [`EngineConfig::window_elems`].
    pub fn call_overlaid(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        sink: &mut impl Write,
    ) -> Result<OverlaidOutcome, EngineError> {
        if self.overlay_engages(op, args) {
            let report = self.call_overlaid_via(endpoint, op, args, |slices| {
                let mut w = &mut *sink;
                write_all_vectored(&mut w, slices)
            })?;
            Ok(OverlaidOutcome::Streamed(report))
        } else {
            self.call(endpoint, op, args, sink)
                .map(OverlaidOutcome::Buffered)
        }
    }

    /// Like [`Client::call_overlaid`] but always streaming, handing every
    /// serialized portion to `portion` the moment it exists — the hook a
    /// chunked transport (`ChunkedBodyWriter::write_portion`) plugs into
    /// so each overlaid portion leaves as its own HTTP chunk.
    ///
    /// The overlay sender for `(endpoint, op)` persists across calls:
    /// the first streamed send builds the window fragment (tier
    /// `FirstTime`), subsequent sends re-serialize only values into it
    /// (tier `PerfectStructural`) — the same DUT semantics the buffered
    /// tiers provide, scoped to the reused window.
    pub fn call_overlaid_via<F>(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        portion: F,
    ) -> Result<OverlayReport, EngineError>
    where
        F: FnMut(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        if args.len() != 1 {
            return Err(EngineError::StructureMismatch {
                why: "overlay call takes exactly the array argument".into(),
            });
        }
        let call_start = self.metrics.as_ref().map(|m| m.now_ns());
        // The chunk-overlay pipeline streams the XML envelope around
        // window fragments; it is not format-negotiated, so overlaid
        // sends always take the XML lane regardless of the endpoint's
        // negotiated format (buffered tiers carry the binary lane).
        let key = TemplateKey::new(endpoint, op);
        if !self.overlays.contains_key(&key) {
            let config = self.config.with_wire_format(WireFormat::SoapXml);
            let sender = if config.window_elems == 0 {
                OverlaySender::auto_window(config, op)?
            } else {
                OverlaySender::new(config, op, config.window_elems)?
            };
            self.overlays.insert(key.clone(), sender);
        }
        let sender = self.overlays.get_mut(&key).expect("just inserted");
        if let (Some(m), None) = (self.metrics.clone(), sender.metrics()) {
            sender.set_metrics(m);
        }
        let out = sender.send_portions(&args[0], portion);
        match &out {
            Ok(report) => {
                match report.tier {
                    SendTier::FirstTime => self.stats.first_time += 1,
                    SendTier::PerfectStructural => self.stats.perfect_structural += 1,
                    // Overlay sends realize only the two tiers above.
                    SendTier::ContentMatch => self.stats.content_match += 1,
                    SendTier::PartialStructural => self.stats.partial_structural += 1,
                }
                self.stats.bytes_sent += report.bytes as u64;
                if let Some(m) = &self.metrics {
                    m.add(Counter::send(report.tier.obs()), 1);
                    m.add(Counter::SimdKernelHits, bsoap_kernels::take_simd_hits());
                    m.add(Counter::ValuesWritten, report.values_written as u64);
                    m.add(Counter::BytesSent, report.bytes as u64);
                    let elapsed = m.now_ns().saturating_sub(call_start.unwrap_or(0));
                    m.observe_ns(HistId::send(report.tier.obs()), elapsed);
                }
                // Charge the cached window fragment to the shared store's
                // budget (reserved, non-evictable — it is the overlaid
                // region's saved copy), reconciling as the peak moves.
                if self.config.store_mode == StoreMode::Shared {
                    let window_now = report.window_bytes as u64;
                    let reserved = self.overlay_reserved.get(&key).copied().unwrap_or(0);
                    if window_now != reserved {
                        let store = self.store_handle();
                        if window_now > reserved {
                            store.reserve(self.tenant, window_now - reserved);
                        } else {
                            store.release(self.tenant, reserved - window_now);
                        }
                        self.overlay_reserved.insert(key.clone(), window_now);
                    }
                }
                self.note_send_success(endpoint);
            }
            Err(EngineError::Io(_) | EngineError::DeadlineExceeded) => {
                self.note_send_failure(endpoint, op);
            }
            Err(_) => {}
        }
        out
    }

    /// Whether `endpoint` is currently demoted to stateless full sends.
    pub fn is_degraded(&self, endpoint: &str) -> bool {
        self.config.degrade_after > 0
            && self
                .health
                .get(endpoint)
                .map(|h| h.degraded)
                .unwrap_or(false)
    }

    fn note_send_success(&mut self, endpoint: &str) {
        if self.config.degrade_after == 0 {
            return;
        }
        let recover_after = self.config.recover_after.max(1);
        let h = self.health.entry(endpoint.to_owned()).or_default();
        h.consecutive_failures = 0;
        if h.degraded {
            h.degraded_successes += 1;
            if h.degraded_successes >= recover_after {
                h.degraded = false;
                h.degraded_successes = 0;
                if let Some(m) = &self.metrics {
                    m.trace(TraceKind::Degraded { on: false });
                }
            }
        }
    }

    fn note_send_failure(&mut self, endpoint: &str, op: &OpDesc) {
        if self.config.degrade_after == 0 {
            return;
        }
        let threshold = self.config.degrade_after;
        let h = self.health.entry(endpoint.to_owned()).or_default();
        h.consecutive_failures += 1;
        let demote = !h.degraded && h.consecutive_failures >= threshold;
        if demote {
            h.degraded = true;
            h.degraded_successes = 0;
            // Stateless mode retains nothing: drop the saved template (and
            // any overlay window fragment) so a possibly
            // poisoned-by-the-peer diff state can't linger.
            let key = self.key_for(endpoint, op);
            self.cache.remove(&key);
            self.leases.remove(&key);
            // Overlay senders always live on the XML lane (streamed sends
            // are not negotiated), so their bookkeeping is keyed XML.
            let xml_key = TemplateKey::new(endpoint, op);
            if let Some(store) = &self.store {
                store.purge(&StoreKey::new(self.tenant, key.clone()));
                if let Some(bytes) = self.overlay_reserved.remove(&xml_key) {
                    store.release(self.tenant, bytes);
                }
            }
            self.overlays.remove(&xml_key);
            if let Some(m) = &self.metrics {
                m.trace(TraceKind::Degraded { on: true });
            }
        }
    }

    /// Degraded-mode send: full serialization every call, template
    /// discarded immediately. Counted as a first-time send plus
    /// `DegradedSends`.
    fn degraded_call<F>(
        &mut self,
        config: EngineConfig,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let call_start = self.metrics.as_ref().map(|m| m.now_ns());
        let tpl = MessageTemplate::build(config, op, args)?;
        let bytes = send(&tpl.io_slices())?;
        let report = SendReport {
            tier: SendTier::FirstTime,
            bytes,
            values_written: tpl.leaf_count(),
            shifts: 0,
            steals: 0,
            splits: 0,
            fell_back: false,
        };
        drop(tpl);
        self.stats.record(&report);
        self.stats.degraded_sends += 1;
        if let Some(m) = &self.metrics {
            m.add(Counter::send(bsoap_obs::Tier::FirstTime), 1);
            m.add(format_counter(config.wire_format), 1);
            m.add(Counter::SimdKernelHits, bsoap_kernels::take_simd_hits());
            m.add(Counter::ValuesWritten, report.values_written as u64);
            m.add(Counter::DegradedSends, 1);
            m.add(Counter::BytesSent, report.bytes as u64);
            let elapsed = m.now_ns().saturating_sub(call_start.unwrap_or(0));
            m.observe_ns(HistId::send(report.tier.obs()), elapsed);
        }
        Ok(report)
    }

    /// The four-tier differential path (the pre-fault-tolerance
    /// [`Client::call_via`] body), routed by [`StoreMode`]. Both routes
    /// produce byte-identical wire output and identical engine counters;
    /// only template *ownership* differs (plus the store's own
    /// hit/miss/eviction accounting, which exists only under
    /// [`StoreMode::Shared`]).
    fn call_tiered<F>(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let call_start = self.metrics.as_ref().map(|m| m.now_ns());
        let report = match self.config.store_mode {
            StoreMode::PerClient => self.call_tiered_cache(endpoint, op, args, send)?,
            StoreMode::Shared => self.call_tiered_store(endpoint, op, args, send)?,
        };
        self.stats.record(&report);
        if let Some(m) = &self.metrics {
            m.add(Counter::BytesSent, report.bytes as u64);
            let elapsed = m.now_ns().saturating_sub(call_start.unwrap_or(0));
            m.observe_ns(HistId::send(report.tier.obs()), elapsed);
        }
        Ok(report)
    }

    /// [`StoreMode::PerClient`]: the paper's ownership — templates live in
    /// this client's own cache. Kept verbatim as the differential oracle.
    fn call_tiered_cache<F>(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let key = self.key_for(endpoint, op);
        let cap = self.templates_per_key;
        let config = self.config.with_wire_format(key.format);

        // Can an existing template for this key serve the call? With a
        // multi-template set, a nonzero distance means a resize; prefer
        // building a new variant while the set has room.
        let matched = self.cache.match_for(&key, args);
        let use_existing = matches!(matched, Some((_, dist, len)) if dist == 0 || len >= cap);

        let report = if use_existing {
            let mut send = Some(send);
            let (idx, _, _) = matched.expect("checked above");
            let metrics = self.metrics.clone();
            let gated = {
                let tpl = self.cache.set_mut(&key).promote(idx);
                if let (Some(m), None) = (metrics, tpl.metrics()) {
                    // Template predates set_metrics: attach lazily.
                    tpl.set_metrics(m);
                }
                diff_and_send(&config, tpl, args, &mut send)?
            };
            match gated {
                Some(report) => report,
                None => {
                    // Fallback: drop the (promoted-to-front) template and
                    // take the FirstTime path, which saves a fresh one.
                    self.cache.set_mut(&key).remove(0);
                    if let Some(m) = &self.metrics {
                        m.add(Counter::CostFallbacks, 1);
                    }
                    let send = send.take().expect("send unused");
                    let mut report = self.first_time(key, op, args, send)?;
                    report.fell_back = true;
                    report
                }
            }
        } else if self.share_across_endpoints && matched.is_none() {
            if let Some(sibling) = self.cache.find_shareable(&key) {
                // §6 sharing: clone the sibling's serialized bytes + DUT
                // and diff — the conversion work done for the other
                // endpoint is reused wholesale.
                let mut tpl = sibling.clone();
                if let (Some(m), None) = (self.metrics.clone(), tpl.metrics()) {
                    tpl.set_metrics(m);
                }
                tpl.update_args(args)?;
                let mut report = tpl.flush();
                report.bytes = send(&tpl.io_slices())?;
                self.stats.shared_clones += 1;
                self.cache.insert_with_cap(key, tpl, cap);
                report
            } else {
                self.first_time(key, op, args, send)?
            }
        } else {
            self.first_time(key, op, args, send)?
        };
        Ok(report)
    }

    /// [`StoreMode::Shared`]: templates move through the shared store by
    /// value — checkout (bytes leave the budget), diff + send, admit back
    /// (budget re-charged, evicting if over). Every exit path after a hit
    /// re-admits the template except the cost fallback, which discards it
    /// — exactly the per-client semantics, with the freed bytes returned
    /// to the budget at the `checkout` that removed them.
    fn call_tiered_store<F>(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let key = self.key_for(endpoint, op);
        let cap = self.templates_per_key;
        let config = self.config.with_wire_format(key.format);
        let store = self.store_handle();
        let skey = self.store_key(&key);

        // Return any outstanding manual lease first so matching sees
        // every variant.
        if let Some(leased) = self.leases.remove(&key) {
            store.admit(skey.clone(), leased, cap);
        }

        let mut send = Some(send);
        let report = match store.checkout(&skey, args, cap) {
            Checkout::Hit(mut tpl) => {
                if let (Some(m), None) = (self.metrics.clone(), tpl.metrics()) {
                    // Template predates set_metrics: attach lazily.
                    tpl.set_metrics(m);
                }
                match diff_and_send(&config, &mut tpl, args, &mut send) {
                    Ok(Some(report)) => {
                        store.admit(skey, tpl, cap);
                        report
                    }
                    Ok(None) => {
                        // Cost fallback: the checkout already returned the
                        // template's bytes to the budget; the discard only
                        // records the eviction.
                        store.note_discard(&tpl);
                        drop(tpl);
                        if let Some(m) = &self.metrics {
                            m.add(Counter::CostFallbacks, 1);
                        }
                        let send = send.take().expect("send unused");
                        let mut report = self.first_time_store(&store, skey, op, args, send)?;
                        report.fell_back = true;
                        report
                    }
                    Err(e) => {
                        // Semantic and transport errors alike leave the
                        // template saved (the per-client path's behaviour).
                        store.admit(skey, tpl, cap);
                        return Err(e);
                    }
                }
            }
            Checkout::MissEmpty if self.share_across_endpoints => {
                if let Some(mut tpl) = store.find_shareable(&skey) {
                    // §6 sharing: clone the sibling's serialized bytes +
                    // DUT and diff (tenant-scoped in the shared store).
                    if let (Some(m), None) = (self.metrics.clone(), tpl.metrics()) {
                        tpl.set_metrics(m);
                    }
                    tpl.update_args(args)?;
                    let mut report = tpl.flush();
                    report.bytes = (send.take().expect("send unused"))(&tpl.io_slices())?;
                    self.stats.shared_clones += 1;
                    store.admit(skey, tpl, cap);
                    report
                } else {
                    let send = send.take().expect("send unused");
                    self.first_time_store(&store, skey, op, args, send)?
                }
            }
            Checkout::MissEmpty | Checkout::MissVariant => {
                let send = send.take().expect("send unused");
                self.first_time_store(&store, skey, op, args, send)?
            }
        };
        Ok(report)
    }

    /// First-Time Send: full serialization, then save the template — "the
    /// negligible overhead of checking to see if a stored copy exists and
    /// saving a pointer to it after it has been created" (§3).
    fn first_time<F>(
        &mut self,
        key: TemplateKey,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let config = self.config.with_wire_format(key.format);
        let mut tpl = MessageTemplate::build(config, op, args)?;
        if let Some(m) = &self.metrics {
            tpl.set_metrics(Arc::clone(m));
        }
        let bytes = send(&tpl.io_slices())?;
        let report = SendReport {
            tier: SendTier::FirstTime,
            bytes,
            values_written: tpl.leaf_count(),
            shifts: 0,
            steals: 0,
            splits: 0,
            fell_back: false,
        };
        if let Some(m) = &self.metrics {
            m.add(Counter::send(bsoap_obs::Tier::FirstTime), 1);
            m.add(format_counter(key.format), 1);
            m.add(Counter::SimdKernelHits, bsoap_kernels::take_simd_hits());
            m.add(Counter::ValuesWritten, report.values_written as u64);
        }
        self.cache.insert_with_cap(key, tpl, self.templates_per_key);
        Ok(report)
    }

    /// First-Time Send under [`StoreMode::Shared`]: full serialization,
    /// send, then admit the fresh template into the shared store.
    fn first_time_store<F>(
        &mut self,
        store: &Arc<TemplateStore>,
        skey: StoreKey,
        op: &OpDesc,
        args: &[Value],
        send: F,
    ) -> Result<SendReport, EngineError>
    where
        F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
    {
        let config = self.config.with_wire_format(skey.key.format);
        let mut tpl = MessageTemplate::build(config, op, args)?;
        if let Some(m) = &self.metrics {
            tpl.set_metrics(Arc::clone(m));
        }
        let bytes = send(&tpl.io_slices())?;
        let report = SendReport {
            tier: SendTier::FirstTime,
            bytes,
            values_written: tpl.leaf_count(),
            shifts: 0,
            steals: 0,
            splits: 0,
            fell_back: false,
        };
        if let Some(m) = &self.metrics {
            m.add(Counter::send(bsoap_obs::Tier::FirstTime), 1);
            m.add(format_counter(skey.key.format), 1);
            m.add(Counter::SimdKernelHits, bsoap_kernels::take_simd_hits());
            m.add(Counter::ValuesWritten, report.values_written as u64);
        }
        store.admit(skey, tpl, self.templates_per_key);
        Ok(report)
    }

    /// Get (building if necessary) the template for `(endpoint, op)` — the
    /// manual fast path: mutate leaves directly with `set_*`, then
    /// [`MessageTemplate::send`]. Under [`StoreMode::Shared`] the template
    /// is leased out of the store (bytes leave the budget) until the next
    /// tiered call on the same key returns it.
    ///
    /// Note: sends made directly on the returned template are counted in
    /// the template's own stats, not the client's.
    pub fn prepare(
        &mut self,
        endpoint: &str,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<&mut MessageTemplate, EngineError> {
        let key = self.key_for(endpoint, op);
        let config = self.config.with_wire_format(key.format);
        match self.config.store_mode {
            StoreMode::PerClient => {
                if !self.cache.contains(&key) {
                    let mut tpl = MessageTemplate::build(config, op, args)?;
                    if let Some(m) = &self.metrics {
                        tpl.set_metrics(Arc::clone(m));
                    }
                    self.cache
                        .insert_with_cap(key.clone(), tpl, self.templates_per_key);
                }
                Ok(self.cache.get_mut(&key).expect("just inserted"))
            }
            StoreMode::Shared => {
                if !self.leases.contains_key(&key) {
                    let store = self.store_handle();
                    let skey = self.store_key(&key);
                    let tpl = match store.lease_front(&skey) {
                        Some(t) => t,
                        None => {
                            let mut t = MessageTemplate::build(config, op, args)?;
                            if let Some(m) = &self.metrics {
                                t.set_metrics(Arc::clone(m));
                            }
                            t
                        }
                    };
                    self.leases.insert(key.clone(), tpl);
                }
                Ok(self.leases.get_mut(&key).expect("just inserted"))
            }
        }
    }

    /// Look up an existing template without building (the most recently
    /// used one, when several variants are kept). Under
    /// [`StoreMode::Shared`] this leases the template out of the store;
    /// the next tiered call on the same key returns it.
    pub fn template_mut(&mut self, endpoint: &str, op: &OpDesc) -> Option<&mut MessageTemplate> {
        let key = self.key_for(endpoint, op);
        match self.config.store_mode {
            StoreMode::PerClient => self.cache.get_mut(&key),
            StoreMode::Shared => {
                if !self.leases.contains_key(&key) {
                    let store = self.store_handle();
                    let skey = self.store_key(&key);
                    if let Some(t) = store.lease_front(&skey) {
                        self.leases.insert(key.clone(), t);
                    }
                }
                self.leases.get_mut(&key)
            }
        }
    }

    /// Drop the saved template(s) for `(endpoint, op)` (memory
    /// reclamation).
    pub fn evict(&mut self, endpoint: &str, op: &OpDesc) -> bool {
        let key = self.key_for(endpoint, op);
        let leased = self.leases.remove(&key).is_some();
        match self.config.store_mode {
            StoreMode::PerClient => self.cache.remove(&key).is_some() || leased,
            StoreMode::Shared => {
                let purged = match &self.store {
                    Some(store) => store.purge(&StoreKey::new(self.tenant, key)) > 0,
                    None => false,
                };
                purged || leased
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Return overlay-window reservations to a shared store's budget;
        // leased templates were uncharged at lease time, so dropping them
        // with the client leaks no accounting.
        if let Some(store) = &self.store {
            for (_, bytes) in self.overlay_reserved.drain() {
                store.release(self.tenant, bytes);
            }
        }
    }
}

/// The per-lane send counter for a wire format.
fn format_counter(format: WireFormat) -> Counter {
    match format {
        WireFormat::SoapXml => Counter::SendsXml,
        WireFormat::CompactBinary => Counter::SendsBinary,
    }
}

/// Diff a checked-out (or promoted-in-place) template against `args` and
/// send: the tier-2/3/4 body shared by both [`StoreMode`] routes.
/// `Ok(None)` means the §5 break-even gate priced the patch above
/// `fallback_ratio ×` the rebuild estimate and the caller should discard
/// the template and take the FirstTime path; errors propagate with the
/// template intact (the caller decides where it lives).
fn diff_and_send<F>(
    config: &EngineConfig,
    tpl: &mut MessageTemplate,
    args: &[Value],
    send: &mut Option<F>,
) -> Result<Option<SendReport>, EngineError>
where
    F: FnOnce(&[std::io::IoSlice<'_>]) -> std::io::Result<usize>,
{
    tpl.update_args(args)?;
    // §5 break-even gate: price the differential send before any byte
    // moves; `None` means patching would cost more than a rebuild and the
    // template should be discarded.
    if config.cost_fallback && config.flush_mode == FlushMode::Planned {
        let plan = tpl.plan()?;
        let rebuild = tpl.rebuild_estimate() as f64;
        if plan.cost().total() as f64 > config.fallback_ratio * rebuild {
            return Ok(None);
        }
        let mut report = tpl.flush_planned(&plan)?;
        report.bytes = (send.take().expect("send unused"))(&tpl.io_slices())?;
        Ok(Some(report))
    } else {
        let mut report = tpl.flush();
        report.bytes = (send.take().expect("send unused"))(&tpl.io_slices())?;
        Ok(Some(report))
    }
}
