//! Pipelined send: overlap serialization with transmission.
//!
//! The companion paper the authors cite in §3.3 ("Optimizing Performance
//! of Web Services with Chunk-Overlaying and Pipelined-Send", ICIC 2004)
//! combines chunk overlaying with a send pipeline: while portion *i* is
//! on the wire, portion *i+1* is being serialized. [`PipelinedSender`]
//! implements that scheme on top of [`OverlaySender`]'s window machinery
//! with a bounded ring of transfer buffers and a dedicated writer thread
//! (scoped — no `'static` bounds on the sink).
//!
//! The overlap win is proportional to how much of Send Time the transport
//! itself consumes: against an infinitely fast sink the pipeline only adds
//! a buffer copy, while against a real socket (or any sink whose cost is
//! comparable to serialization) the two costs hide behind each other.

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::overlay::OverlaySender;
use crate::schema::OpDesc;
use crate::value::Value;
use bsoap_obs::{Counter, Gauge, Metrics, Recorder};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Outcome of one pipelined send.
#[derive(Clone, Copy, Debug)]
pub struct PipelineReport {
    /// Total bytes written to the sink.
    pub bytes: usize,
    /// Window portions streamed.
    pub portions: usize,
    /// Transfer buffers simultaneously in flight at the deepest point
    /// (≥ 2 means serialization and transmission actually overlapped).
    pub max_in_flight: usize,
}

/// Double(-or-deeper)-buffered streaming sender.
pub struct PipelinedSender {
    inner: OverlaySender,
    depth: usize,
    /// Bytes per transfer buffer before it ships.
    buffer_target: usize,
    metrics: Option<Arc<Metrics>>,
}

impl PipelinedSender {
    /// Pipelined sender for a single-array operation. `depth` is the
    /// number of transfer buffers (≥ 2 for any overlap; 2 is classic
    /// double buffering).
    pub fn new(
        config: EngineConfig,
        op: &OpDesc,
        window_elems: usize,
        depth: usize,
    ) -> Result<Self, EngineError> {
        if depth < 2 {
            return Err(EngineError::StructureMismatch {
                why: "pipeline depth must be at least 2 (double buffering)".into(),
            });
        }
        Ok(PipelinedSender {
            inner: OverlaySender::new(config, op, window_elems)?,
            depth,
            buffer_target: 32 * 1024,
            metrics: None,
        })
    }

    /// Auto-size the window to one chunk (like
    /// [`OverlaySender::auto_window`]) with double buffering.
    pub fn auto(config: EngineConfig, op: &OpDesc) -> Result<Self, EngineError> {
        Ok(PipelinedSender {
            inner: OverlaySender::auto_window(config, op)?,
            depth: 2,
            buffer_target: 32 * 1024,
            metrics: None,
        })
    }

    /// Elements per window portion.
    pub fn window_elems(&self) -> usize {
        self.inner.window_elems()
    }

    /// Override the transfer-buffer size (default 32 KiB).
    pub fn set_buffer_target(&mut self, bytes: usize) {
        self.buffer_target = bytes.max(1);
    }

    /// Attach an observability registry: each send records its portion
    /// count, peak in-flight depth, and bytes written.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Stream `value` to `sink`, serializing the next portion while the
    /// previous one is being written.
    pub fn send<W: Write + Send>(
        &mut self,
        value: &Value,
        sink: &mut W,
    ) -> Result<PipelineReport, EngineError> {
        // Channels: filled buffers flow to the writer; empties come back.
        let (filled_tx, filled_rx) = mpsc::sync_channel::<Vec<u8>>(self.depth);
        let (empty_tx, empty_rx) = mpsc::channel::<Vec<u8>>();
        for _ in 0..self.depth {
            empty_tx.send(Vec::new()).expect("receiver alive");
        }
        let in_flight = AtomicUsize::new(0);
        let max_in_flight = AtomicUsize::new(0);

        let inner = &mut self.inner;
        let buffer_target = self.buffer_target;
        std::thread::scope(|scope| -> Result<PipelineReport, EngineError> {
            let writer = scope.spawn({
                let in_flight = &in_flight;
                move || -> std::io::Result<usize> {
                    let mut written = 0usize;
                    while let Ok(buf) = filled_rx.recv() {
                        let r = sink.write_all(&buf);
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        r?;
                        written += buf.len();
                        // Hand the buffer back; the serializer may already
                        // have finished, so a closed return lane is fine.
                        let _ = empty_tx.send(buf);
                    }
                    sink.flush()?;
                    Ok(written)
                }
            });

            // Serialize portions into pooled buffers. `OverlaySender::send`
            // writes to a `Write`; this adapter rotates pooled buffers
            // through the channel whenever the current one fills.
            let mut pipe = PipeWriter {
                filled_tx: &filled_tx,
                empty_rx: &empty_rx,
                current: None,
                target: buffer_target,
                in_flight: &in_flight,
                max_in_flight: &max_in_flight,
            };
            let serialize_result = inner.send(value, &mut pipe);
            if serialize_result.is_ok() {
                pipe.flush_current();
            }
            // Close the filled lane so the writer drains and exits.
            drop(pipe);
            drop(filled_tx);
            let written = writer.join().expect("writer thread never panics");
            let overlay_report = serialize_result?;
            let bytes = written.map_err(EngineError::Io)?;
            debug_assert_eq!(bytes, overlay_report.bytes);
            let report = PipelineReport {
                bytes,
                portions: overlay_report.portions,
                max_in_flight: max_in_flight.load(Ordering::Acquire),
            };
            if let Some(m) = &self.metrics {
                m.add(Counter::PipelinePortions, report.portions as u64);
                m.add(Counter::BytesSent, report.bytes as u64);
                m.gauge(Gauge::PipelineMaxInFlight, report.max_in_flight as u64);
            }
            Ok(report)
        })
    }
}

/// `Write` adapter that accumulates into pooled buffers and ships each
/// full buffer to the writer thread.
struct PipeWriter<'a> {
    filled_tx: &'a mpsc::SyncSender<Vec<u8>>,
    empty_rx: &'a mpsc::Receiver<Vec<u8>>,
    current: Option<Vec<u8>>,
    target: usize,
    in_flight: &'a AtomicUsize,
    max_in_flight: &'a AtomicUsize,
}

impl PipeWriter<'_> {
    fn buffer(&mut self) -> &mut Vec<u8> {
        if self.current.is_none() {
            // Blocks when all buffers are in flight (backpressure). If the
            // writer died, its return lane is closed — fall back to a
            // fresh allocation; the writer's error surfaces at join time.
            let mut buf = self.empty_rx.recv().unwrap_or_default();
            buf.clear();
            self.current = Some(buf);
        }
        self.current.as_mut().expect("just filled")
    }

    fn ship(&mut self) {
        if let Some(buf) = self.current.take() {
            if buf.is_empty() {
                self.current = Some(buf);
                return;
            }
            let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
            self.max_in_flight.fetch_max(now, Ordering::AcqRel);
            if self.filled_tx.send(buf).is_err() {
                // Writer gone (I/O error): un-count and keep serializing
                // into the void; the error is reported after join.
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn flush_current(&mut self) {
        self.ship();
    }
}

impl Write for PipeWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let target = self.target;
        let buf = self.buffer();
        buf.extend_from_slice(data);
        if buf.len() >= target {
            self.ship();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeDesc;
    use crate::template::MessageTemplate;
    use bsoap_convert::ScalarKind;
    use bsoap_xml::strip_pad;

    fn doubles_op() -> OpDesc {
        OpDesc::single(
            "send",
            "urn:bench",
            "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )
    }

    fn dvals(n: usize) -> Value {
        Value::DoubleArray((0..n).map(|i| i as f64 * 0.5 + 0.25).collect())
    }

    /// Collecting sink (Vec already implements Write; named for clarity).
    #[derive(Default)]
    struct Collect(Vec<u8>);
    impl Write for Collect {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn pipelined_stream_equals_template() {
        let op = doubles_op();
        // Overlaid sends always ride the XML lane (see OverlaySender::new),
        // so the comparison template must too — even under a process-wide
        // `BSOAP_WIRE_FORMAT=binary` default.
        let config =
            EngineConfig::paper_default().with_wire_format(crate::config::WireFormat::SoapXml);
        for n in [0usize, 1, 100, 5000] {
            let value = dvals(n);
            let mut sender = PipelinedSender::new(config, &op, 64, 2).unwrap();
            let mut sink = Collect::default();
            let report = sender.send(&value, &mut sink).unwrap();
            assert_eq!(report.bytes, sink.0.len());
            let tpl = MessageTemplate::build(config, &op, std::slice::from_ref(&value)).unwrap();
            assert_eq!(strip_pad(&sink.0), strip_pad(&tpl.to_bytes()), "n = {n}");
        }
    }

    #[test]
    fn repeated_sends_reuse_window() {
        // The reused window re-serializes values over the previous
        // portion's, padding where they shrank — so repeated sends are
        // pad-equivalent (not byte-identical) to each other and to a
        // fresh template.
        let op = doubles_op();
        let config =
            EngineConfig::paper_default().with_wire_format(crate::config::WireFormat::SoapXml);
        let mut sender = PipelinedSender::new(config, &op, 32, 3).unwrap();
        let mut first = Collect::default();
        sender.send(&dvals(500), &mut first).unwrap();
        let mut second = Collect::default();
        let r = sender.send(&dvals(500), &mut second).unwrap();
        assert_eq!(strip_pad(&first.0), strip_pad(&second.0));
        let tpl = MessageTemplate::build(config, &op, &[dvals(500)]).unwrap();
        assert_eq!(strip_pad(&second.0), strip_pad(&tpl.to_bytes()));
        assert!(r.portions >= 15);
    }

    #[test]
    fn depth_one_rejected() {
        let op = doubles_op();
        assert!(PipelinedSender::new(EngineConfig::paper_default(), &op, 8, 1).is_err());
    }

    #[test]
    fn writer_errors_propagate() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "boom"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let op = doubles_op();
        let mut sender = PipelinedSender::new(EngineConfig::paper_default(), &op, 16, 2).unwrap();
        let err = sender.send(&dvals(2000), &mut Broken).unwrap_err();
        assert!(matches!(err, EngineError::Io(_)));
    }

    #[test]
    fn slow_sink_sees_overlap() {
        // With a sink that does real per-byte work, at least two buffers
        // must have been in flight simultaneously at some point.
        struct Slow(u64);
        impl Write for Slow {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                let mut h = self.0;
                for _ in 0..4 {
                    for &x in b {
                        h = h.wrapping_mul(0x100000001b3) ^ x as u64;
                    }
                }
                self.0 = h;
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let op = doubles_op();
        let config =
            EngineConfig::paper_default().with_wire_format(crate::config::WireFormat::SoapXml);
        let mut sender = PipelinedSender::new(config, &op, 128, 4).unwrap();
        sender.set_buffer_target(8 * 1024);
        let mut sink = Slow(1);
        let report = sender.send(&dvals(50_000), &mut sink).unwrap();
        assert!(
            report.max_in_flight >= 2,
            "pipeline never overlapped: {}",
            report.max_in_flight
        );
        assert!(sink.0 != 1);
    }

    #[test]
    fn auto_constructor_works() {
        let op = doubles_op();
        let mut sender = PipelinedSender::auto(EngineConfig::paper_default(), &op).unwrap();
        let mut sink = Collect::default();
        sender.send(&dvals(1000), &mut sink).unwrap();
        assert!(!sink.0.is_empty());
    }
}
