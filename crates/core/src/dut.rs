//! The Data Update Tracking (DUT) table.
//!
//! §3.1 of the paper, verbatim: each saved message has its own DUT table,
//! "each of whose entries corresponds to a data element in the message, and
//! contains the following fields:
//!
//! * a pointer to a data structure that contains information about the
//!   data item's type, including the maximum size of its serialized form
//! * a dirty bit to indicate whether it has been changed since the last
//!   time the data was written into the serialized message
//! * a pointer to its current location in the serialized message
//! * its serialized length — the number of characters in the message
//!   necessary for storing the serialized form of the most-recently-written
//!   value
//! * its field width — the number of characters in the message template
//!   currently allocated to this data item (note that the field width must
//!   always match or exceed the serialized length)"
//!
//! [`DutEntry`] carries exactly those fields ([`bsoap_convert::ScalarKind`]
//! *is* the type-info pointer — it knows the maximum serialized width),
//! plus the current scalar value, which the template owns (see
//! [`crate::value`] for why), and the length of the closing-tag run that
//! rides immediately after the value inside the field region.

use crate::value::Scalar;
use bsoap_chunks::Loc;
use bsoap_convert::ScalarKind;

/// One tracked leaf of the serialized message.
///
/// Field region layout inside the chunk, starting at `loc`:
///
/// ```text
/// [ value: ser_len bytes ][ suffix: suffix_len bytes ][ pad: width − ser_len spaces ]
/// ```
///
/// The suffix is the closing tag (e.g. `</item>`). Writing a shorter value
/// moves it left and pads after it — "we simply rewrite the tag immediately
/// to the right of the new value, and pad the space between the end tag of
/// this field and the start tag of the next with whitespace" (§3.2).
#[derive(Clone, Debug)]
pub struct DutEntry {
    /// Scalar kind — the type-info "pointer" (max serialized width etc.).
    pub kind: ScalarKind,
    /// Changed since last written into the serialized message?
    pub dirty: bool,
    /// Location of the value's first byte.
    pub loc: Loc,
    /// Serialized length of the most recently written value.
    pub ser_len: u32,
    /// Characters currently allocated to this value (≥ `ser_len`).
    pub width: u32,
    /// Closing-tag bytes immediately following the value.
    pub suffix_len: u32,
    /// The current in-memory value.
    pub value: Scalar,
}

impl DutEntry {
    /// Unused padding currently available inside this field.
    pub fn pad(&self) -> u32 {
        self.width - self.ser_len
    }

    /// Total bytes of the field region (value + suffix + pad).
    pub fn region_len(&self) -> u32 {
        self.width + self.suffix_len
    }

    /// Offset one past the end of the field region within its chunk.
    pub fn region_end(&self) -> u32 {
        self.loc.offset + self.region_len()
    }
}

/// The per-template DUT table: entries in document (byte) order.
#[derive(Clone, Debug, Default)]
pub struct DutTable {
    entries: Vec<DutEntry>,
    dirty_count: usize,
}

impl DutTable {
    /// Empty table with capacity for `n` leaves.
    pub fn with_capacity(n: usize) -> Self {
        DutTable {
            entries: Vec::with_capacity(n),
            dirty_count: 0,
        }
    }

    /// Number of tracked leaves.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no leaves are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of leaves currently marked dirty.
    ///
    /// "If none of the dirty bits are set, the message has not changed and
    /// can be resent as is" (§3.1) — the content-match test is
    /// `dirty_count() == 0`.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Borrow an entry.
    pub fn entry(&self, idx: usize) -> &DutEntry {
        &self.entries[idx]
    }

    /// Borrow an entry mutably **without** dirty accounting — for the
    /// template's internal location fix-ups only.
    pub(crate) fn entry_mut_raw(&mut self, idx: usize) -> &mut DutEntry {
        &mut self.entries[idx]
    }

    /// All entries, in document order.
    pub fn entries(&self) -> &[DutEntry] {
        &self.entries
    }

    /// Mutable view for fix-up sweeps (no dirty accounting).
    pub(crate) fn entries_mut_raw(&mut self) -> &mut [DutEntry] {
        &mut self.entries
    }

    /// Append an entry during template build (clean).
    pub fn push(&mut self, entry: DutEntry) {
        debug_assert!(!entry.dirty);
        debug_assert!(entry.width >= entry.ser_len);
        self.entries.push(entry);
    }

    /// Update the value of leaf `idx`, marking it dirty only if the new
    /// scalar differs (bitwise for doubles).
    ///
    /// Returns whether the leaf is now dirty.
    pub fn set_value(&mut self, idx: usize, value: Scalar) -> bool {
        let entry = &mut self.entries[idx];
        if entry.value.same_as(&value) {
            return entry.dirty;
        }
        entry.value = value;
        if !entry.dirty {
            entry.dirty = true;
            self.dirty_count += 1;
        }
        true
    }

    /// Force-mark a leaf dirty without changing its value (benchmarks use
    /// this to induce a re-serialization of identical content).
    pub fn mark_dirty(&mut self, idx: usize) {
        let entry = &mut self.entries[idx];
        if !entry.dirty {
            entry.dirty = true;
            self.dirty_count += 1;
        }
    }

    /// Settle the aggregate count after `n` dirty bits were cleared
    /// directly on entries obtained via [`Self::entries_mut_raw`] (the
    /// parallel flush workers do this on their disjoint slices).
    pub(crate) fn note_bits_cleared(&mut self, n: usize) {
        debug_assert!(n <= self.dirty_count);
        self.dirty_count -= n;
    }

    /// Clear one dirty bit after the value has been written to the buffer.
    pub(crate) fn clear_dirty(&mut self, idx: usize) {
        let entry = &mut self.entries[idx];
        if entry.dirty {
            entry.dirty = false;
            self.dirty_count -= 1;
        }
    }

    /// Splice new entries in at `at` (array growth) — entries must already
    /// carry correct locations.
    pub(crate) fn splice_in(&mut self, at: usize, new_entries: Vec<DutEntry>) {
        self.entries.splice(at..at, new_entries);
    }

    /// Remove entries `range` (array contraction), fixing dirty accounting.
    pub(crate) fn remove_range(&mut self, range: std::ops::Range<usize>) {
        let removed_dirty = self.entries[range.clone()]
            .iter()
            .filter(|e| e.dirty)
            .count();
        self.dirty_count -= removed_dirty;
        self.entries.drain(range);
    }

    /// Verify ordering/overlap/width invariants (test support; O(n)).
    ///
    /// Panics on violation. Invariants:
    /// * `width ≥ ser_len` for every entry,
    /// * entries are in strictly increasing `(chunk, offset)` order,
    /// * regions do not overlap,
    /// * `dirty_count` equals the number of set dirty bits.
    pub fn assert_invariants(&self) {
        let mut dirty = 0;
        let mut prev: Option<&DutEntry> = None;
        for (i, e) in self.entries.iter().enumerate() {
            assert!(
                e.width >= e.ser_len,
                "entry {i}: width {} < ser_len {}",
                e.width,
                e.ser_len
            );
            if e.dirty {
                dirty += 1;
            }
            if let Some(p) = prev {
                assert!(
                    p.loc.chunk < e.loc.chunk
                        || (p.loc.chunk == e.loc.chunk && p.region_end() <= e.loc.offset),
                    "entry {i} overlaps or precedes entry {}: {:?} then {:?}",
                    i - 1,
                    p.loc,
                    e.loc
                );
            }
            prev = Some(e);
        }
        assert_eq!(dirty, self.dirty_count, "dirty_count accounting drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(offset: u32, ser_len: u32, width: u32) -> DutEntry {
        DutEntry {
            kind: ScalarKind::Int,
            dirty: false,
            loc: Loc { chunk: 0, offset },
            ser_len,
            width,
            suffix_len: 7,
            value: Scalar::Int(1),
        }
    }

    #[test]
    fn region_geometry() {
        let e = entry(10, 3, 11);
        assert_eq!(e.pad(), 8);
        assert_eq!(e.region_len(), 18);
        assert_eq!(e.region_end(), 28);
    }

    #[test]
    fn dirty_accounting() {
        let mut t = DutTable::with_capacity(2);
        t.push(entry(0, 1, 1));
        t.push(entry(20, 1, 1));
        assert_eq!(t.dirty_count(), 0);

        assert!(t.set_value(0, Scalar::Int(2)));
        assert_eq!(t.dirty_count(), 1);
        // Setting the same value again keeps it dirty but doesn't double-count.
        assert!(t.set_value(0, Scalar::Int(2)));
        assert_eq!(t.dirty_count(), 1);
        // Writing the original value back: entry stays dirty (we don't undo).
        t.set_value(1, Scalar::Int(1)); // same as stored → no-op
        assert_eq!(t.dirty_count(), 1);

        t.clear_dirty(0);
        assert_eq!(t.dirty_count(), 0);
        t.assert_invariants();
    }

    #[test]
    fn same_value_does_not_dirty() {
        let mut t = DutTable::with_capacity(1);
        t.push(entry(0, 1, 1));
        assert!(!t.set_value(0, Scalar::Int(1)));
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn mark_dirty_is_idempotent() {
        let mut t = DutTable::with_capacity(1);
        t.push(entry(0, 1, 1));
        t.mark_dirty(0);
        t.mark_dirty(0);
        assert_eq!(t.dirty_count(), 1);
    }

    #[test]
    fn remove_range_fixes_dirty_count() {
        let mut t = DutTable::with_capacity(3);
        t.push(entry(0, 1, 1));
        t.push(entry(20, 1, 1));
        t.push(entry(40, 1, 1));
        t.mark_dirty(1);
        t.remove_range(1..2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dirty_count(), 0);
        t.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn invariant_catches_overlap() {
        let mut t = DutTable::with_capacity(2);
        t.push(entry(0, 3, 11)); // region end 18
        t.push(entry(10, 1, 1)); // starts inside previous region
        t.assert_invariants();
    }
}
