//! # bsoap-wsdl — service descriptions for the bSOAP stack
//!
//! "WSDL provides a precise description of a Web Service interface and of
//! the communication protocols it supports" (paper §1). This crate reads
//! and writes the **WSDL 1.1 rpc/encoded subset** that 2004-era SOAP
//! toolkits (gSOAP, XSOAP, Axis) exchanged, mapping it onto the engine's
//! [`OpDesc`](bsoap_core::OpDesc)/[`TypeDesc`](bsoap_core::TypeDesc)
//! schema model:
//!
//! * `xsd:int | long | double | boolean | string` → scalar leaves,
//! * `complexType` with a `sequence` of elements → structs,
//! * the classic SOAP-encoded array pattern (`complexType` restricting
//!   `SOAP-ENC:Array` with a `wsdl:arrayType="T[]"` attribute) → arrays,
//! * `message`/`portType`/`binding`/`service` → operations, SOAPAction
//!   values and the endpoint address.
//!
//! [`parse_wsdl`] and [`write_wsdl`] round-trip: for any
//! [`ServiceDesc`], `parse(write(svc)) == svc` (property-tested).
//!
//! ```
//! use bsoap_core::{OpDesc, TypeDesc};
//! use bsoap_convert::ScalarKind;
//! use bsoap_wsdl::{parse_wsdl, write_wsdl, ServiceDesc};
//!
//! let svc = ServiceDesc {
//!     name: "Solver".into(),
//!     namespace: "urn:solver".into(),
//!     endpoint: "http://localhost:8000/solver".into(),
//!     operations: vec![OpDesc::single(
//!         "updateSolution", "urn:solver", "x",
//!         TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
//!     )],
//! };
//! let xml = write_wsdl(&svc);
//! assert_eq!(parse_wsdl(xml.as_bytes()).unwrap(), svc);
//! ```

pub mod model;
pub mod parse;
pub mod write;

pub use model::{ServiceDesc, WsdlError};
pub use parse::parse_wsdl;
pub use write::write_wsdl;
