//! WSDL 1.1 generation (rpc/encoded style).
//!
//! Produces exactly the subset [`crate::parse`] reads, in the layout
//! 2004-era toolkits emitted: `types` (XSD complex types for every struct
//! and array used), `message` per operation, one `portType`, one
//! rpc/encoded `binding`, and a `service` with the SOAP address.

use crate::model::{array_item_token, scalar_qname, type_ref, ServiceDesc};
use bsoap_core::TypeDesc;
use bsoap_xml::escape_attr_into;
use std::collections::BTreeMap;

/// Render `svc` as a WSDL 1.1 document.
pub fn write_wsdl(svc: &ServiceDesc) -> String {
    let mut w = Writer {
        out: String::new(),
        scratch: Vec::new(),
    };
    w.raw("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    w.raw(
        "<wsdl:definitions xmlns:wsdl=\"http://schemas.xmlsoap.org/wsdl/\" \
           xmlns:soap=\"http://schemas.xmlsoap.org/wsdl/soap/\" \
           xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" \
           xmlns:SOAP-ENC=\"http://schemas.xmlsoap.org/soap/encoding/\" \
           xmlns:tns=\"",
    );
    w.attr_text(&svc.namespace);
    w.raw("\" targetNamespace=\"");
    w.attr_text(&svc.namespace);
    w.raw("\" name=\"");
    w.attr_text(&svc.name);
    w.raw("\">\n");

    write_types(&mut w, svc);
    write_messages(&mut w, svc);
    write_port_type(&mut w, svc);
    write_binding(&mut w, svc);
    write_service(&mut w, svc);

    w.raw("</wsdl:definitions>\n");
    w.out
}

struct Writer {
    out: String,
    scratch: Vec<u8>,
}

impl Writer {
    fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn attr_text(&mut self, s: &str) {
        self.scratch.clear();
        escape_attr_into(&mut self.scratch, s);
        self.out
            .push_str(std::str::from_utf8(&self.scratch).expect("escaped ASCII-safe"));
    }
}

/// Collect every named type used by the service, deduplicated, in a
/// deterministic order.
fn collect_types(svc: &ServiceDesc) -> BTreeMap<String, TypeDesc> {
    let mut out = BTreeMap::new();
    fn visit(desc: &TypeDesc, out: &mut BTreeMap<String, TypeDesc>) {
        match desc {
            TypeDesc::Scalar(_) => {}
            TypeDesc::Struct { name, fields } => {
                out.entry(name.clone()).or_insert_with(|| desc.clone());
                for (_, f) in fields {
                    visit(f, out);
                }
            }
            TypeDesc::Array { item } => {
                out.entry(format!("ArrayOf{}", array_item_token(item)))
                    .or_insert_with(|| desc.clone());
                visit(item, out);
            }
        }
    }
    for op in &svc.operations {
        for p in &op.params {
            visit(&p.desc, &mut out);
        }
    }
    out
}

fn write_types(w: &mut Writer, svc: &ServiceDesc) {
    let types = collect_types(svc);
    if types.is_empty() {
        return;
    }
    w.raw("  <wsdl:types>\n    <xsd:schema targetNamespace=\"");
    w.attr_text(&svc.namespace);
    w.raw("\">\n");
    for (name, desc) in &types {
        match desc {
            TypeDesc::Struct { fields, .. } => {
                w.raw("      <xsd:complexType name=\"");
                w.attr_text(name);
                w.raw("\">\n        <xsd:sequence>\n");
                for (fname, fdesc) in fields {
                    w.raw("          <xsd:element name=\"");
                    w.attr_text(fname);
                    w.raw("\" type=\"");
                    w.attr_text(&type_ref(fdesc));
                    w.raw("\"/>\n");
                }
                w.raw("        </xsd:sequence>\n      </xsd:complexType>\n");
            }
            TypeDesc::Array { item } => {
                // The classic rpc/encoded SOAP array declaration.
                w.raw("      <xsd:complexType name=\"");
                w.attr_text(name);
                w.raw(
                    "\">\n        <xsd:complexContent>\n          \
                       <xsd:restriction base=\"SOAP-ENC:Array\">\n            \
                       <xsd:attribute ref=\"SOAP-ENC:arrayType\" wsdl:arrayType=\"",
                );
                let item_ref = match item.as_ref() {
                    TypeDesc::Scalar(k) => scalar_qname(*k).to_owned(),
                    other => type_ref(other),
                };
                w.attr_text(&format!("{item_ref}[]"));
                w.raw(
                    "\"/>\n          </xsd:restriction>\n        \
                       </xsd:complexContent>\n      </xsd:complexType>\n",
                );
            }
            TypeDesc::Scalar(_) => unreachable!("scalars are not named types"),
        }
    }
    w.raw("    </xsd:schema>\n  </wsdl:types>\n");
}

fn write_messages(w: &mut Writer, svc: &ServiceDesc) {
    for op in &svc.operations {
        w.raw("  <wsdl:message name=\"");
        w.attr_text(&format!("{}Request", op.name));
        w.raw("\">\n");
        for p in &op.params {
            w.raw("    <wsdl:part name=\"");
            w.attr_text(&p.name);
            w.raw("\" type=\"");
            w.attr_text(&type_ref(&p.desc));
            w.raw("\"/>\n");
        }
        w.raw("  </wsdl:message>\n");
    }
}

fn write_port_type(w: &mut Writer, svc: &ServiceDesc) {
    w.raw("  <wsdl:portType name=\"");
    w.attr_text(&format!("{}PortType", svc.name));
    w.raw("\">\n");
    for op in &svc.operations {
        w.raw("    <wsdl:operation name=\"");
        w.attr_text(&op.name);
        w.raw("\">\n      <wsdl:input message=\"");
        w.attr_text(&format!("tns:{}Request", op.name));
        w.raw("\"/>\n    </wsdl:operation>\n");
    }
    w.raw("  </wsdl:portType>\n");
}

fn write_binding(w: &mut Writer, svc: &ServiceDesc) {
    w.raw("  <wsdl:binding name=\"");
    w.attr_text(&format!("{}Binding", svc.name));
    w.raw("\" type=\"");
    w.attr_text(&format!("tns:{}PortType", svc.name));
    w.raw(
        "\">\n    <soap:binding style=\"rpc\" \
           transport=\"http://schemas.xmlsoap.org/soap/http\"/>\n",
    );
    for op in &svc.operations {
        w.raw("    <wsdl:operation name=\"");
        w.attr_text(&op.name);
        w.raw("\">\n      <soap:operation soapAction=\"");
        w.attr_text(&svc.soap_action(&op.name));
        w.raw(
            "\"/>\n      <wsdl:input>\n        <soap:body use=\"encoded\" \
               encodingStyle=\"http://schemas.xmlsoap.org/soap/encoding/\" namespace=\"",
        );
        w.attr_text(&svc.namespace);
        w.raw("\"/>\n      </wsdl:input>\n    </wsdl:operation>\n");
    }
    w.raw("  </wsdl:binding>\n");
}

fn write_service(w: &mut Writer, svc: &ServiceDesc) {
    w.raw("  <wsdl:service name=\"");
    w.attr_text(&svc.name);
    w.raw("\">\n    <wsdl:port name=\"");
    w.attr_text(&format!("{}Port", svc.name));
    w.raw("\" binding=\"");
    w.attr_text(&format!("tns:{}Binding", svc.name));
    w.raw("\">\n      <soap:address location=\"");
    w.attr_text(&svc.endpoint);
    w.raw("\"/>\n    </wsdl:port>\n  </wsdl:service>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_convert::ScalarKind;
    use bsoap_core::OpDesc;

    fn sample() -> ServiceDesc {
        ServiceDesc {
            name: "Mesh".into(),
            namespace: "urn:mesh".into(),
            endpoint: "http://localhost:9000/mesh".into(),
            operations: vec![
                OpDesc::single(
                    "exchange",
                    "urn:mesh",
                    "interface",
                    TypeDesc::array_of(TypeDesc::mio()),
                ),
                OpDesc::single(
                    "ping",
                    "urn:mesh",
                    "token",
                    TypeDesc::Scalar(ScalarKind::Int),
                ),
            ],
        }
    }

    #[test]
    fn emits_all_sections() {
        let xml = write_wsdl(&sample());
        for needle in [
            "<wsdl:definitions",
            "<wsdl:types>",
            "complexType name=\"mio\"",
            "complexType name=\"ArrayOfMio\"",
            "wsdl:arrayType=\"tns:mio[]\"",
            "<wsdl:message name=\"exchangeRequest\"",
            "<wsdl:portType name=\"MeshPortType\"",
            "soapAction=\"urn:mesh#exchange\"",
            "<soap:address location=\"http://localhost:9000/mesh\"",
        ] {
            assert!(xml.contains(needle), "missing {needle} in\n{xml}");
        }
    }

    #[test]
    fn types_are_deduplicated() {
        let mut svc = sample();
        svc.operations.push(OpDesc::single(
            "exchange2",
            "urn:mesh",
            "boundary",
            TypeDesc::array_of(TypeDesc::mio()),
        ));
        let xml = write_wsdl(&svc);
        assert_eq!(xml.matches("complexType name=\"ArrayOfMio\"").count(), 1);
        assert_eq!(xml.matches("complexType name=\"mio\"").count(), 1);
    }

    #[test]
    fn output_is_well_formed() {
        let xml = write_wsdl(&sample());
        let mut p = bsoap_xml::PullParser::new(xml.as_bytes());
        loop {
            if p.next_event().expect("well-formed") == bsoap_xml::Event::Eof {
                break;
            }
        }
    }

    #[test]
    fn attr_escaping_in_names() {
        let mut svc = sample();
        svc.namespace = "urn:a\"<&b".into();
        let xml = write_wsdl(&svc);
        assert!(xml.contains("urn:a&quot;&lt;&amp;b"));
    }
}
