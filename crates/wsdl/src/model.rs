//! The service model WSDL documents map onto.

use bsoap_convert::ScalarKind;
use bsoap_core::{OpDesc, TypeDesc};
use std::fmt;

/// A described service: what a WSDL `definitions` document names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceDesc {
    /// Service name (`<service name=…>`, also used for the port type).
    pub name: String,
    /// Target namespace; becomes each operation's `ns1` binding.
    pub namespace: String,
    /// SOAP endpoint address (`<soap:address location=…>`).
    pub endpoint: String,
    /// Operations in declaration order.
    pub operations: Vec<OpDesc>,
}

impl ServiceDesc {
    /// Look up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OpDesc> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// The conventional SOAPAction for an operation of this service.
    pub fn soap_action(&self, op: &str) -> String {
        format!("{}#{}", self.namespace, op)
    }
}

/// WSDL reading/validation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WsdlError {
    /// XML-level failure.
    Xml(String),
    /// Document structure outside the supported subset.
    Unsupported(String),
    /// Reference to an undefined type or message.
    Undefined(String),
    /// Document is missing a required section.
    Missing(&'static str),
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(e) => write!(f, "XML error: {e}"),
            WsdlError::Unsupported(w) => write!(f, "unsupported WSDL construct: {w}"),
            WsdlError::Undefined(n) => write!(f, "undefined reference: {n}"),
            WsdlError::Missing(s) => write!(f, "missing WSDL section: {s}"),
        }
    }
}

impl std::error::Error for WsdlError {}

/// XSD qname for a scalar kind.
pub(crate) fn scalar_qname(kind: ScalarKind) -> &'static str {
    match kind {
        ScalarKind::Int => "xsd:int",
        ScalarKind::Long => "xsd:long",
        ScalarKind::Double => "xsd:double",
        ScalarKind::Bool => "xsd:boolean",
        ScalarKind::Str => "xsd:string",
    }
}

/// Scalar kind for an XSD qname.
pub(crate) fn qname_scalar(qname: &str) -> Option<ScalarKind> {
    Some(match qname {
        "xsd:int" => ScalarKind::Int,
        "xsd:long" => ScalarKind::Long,
        "xsd:double" => ScalarKind::Double,
        "xsd:boolean" => ScalarKind::Bool,
        "xsd:string" => ScalarKind::Str,
        _ => return None,
    })
}

/// The WSDL type name a `TypeDesc` is declared under.
///
/// Scalars use their XSD names; structs use `tns:<name>`; arrays use
/// `tns:ArrayOf<item>` (the rpc/encoded convention).
pub(crate) fn type_ref(desc: &TypeDesc) -> String {
    match desc {
        TypeDesc::Scalar(k) => scalar_qname(*k).to_owned(),
        TypeDesc::Struct { name, .. } => format!("tns:{name}"),
        TypeDesc::Array { item } => format!("tns:ArrayOf{}", array_item_token(item)),
    }
}

/// CamelCase token naming an array's element type.
pub(crate) fn array_item_token(item: &TypeDesc) -> String {
    match item {
        TypeDesc::Scalar(ScalarKind::Int) => "Int".to_owned(),
        TypeDesc::Scalar(ScalarKind::Long) => "Long".to_owned(),
        TypeDesc::Scalar(ScalarKind::Double) => "Double".to_owned(),
        TypeDesc::Scalar(ScalarKind::Bool) => "Boolean".to_owned(),
        TypeDesc::Scalar(ScalarKind::Str) => "String".to_owned(),
        TypeDesc::Struct { name, .. } => {
            let mut c = name.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        }
        TypeDesc::Array { .. } => "Array".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_qnames_round_trip() {
        for k in [
            ScalarKind::Int,
            ScalarKind::Long,
            ScalarKind::Double,
            ScalarKind::Bool,
            ScalarKind::Str,
        ] {
            assert_eq!(qname_scalar(scalar_qname(k)), Some(k));
        }
        assert_eq!(qname_scalar("xsd:decimal"), None);
    }

    #[test]
    fn type_refs() {
        assert_eq!(
            type_ref(&TypeDesc::Scalar(ScalarKind::Double)),
            "xsd:double"
        );
        assert_eq!(type_ref(&TypeDesc::mio()), "tns:mio");
        assert_eq!(
            type_ref(&TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double))),
            "tns:ArrayOfDouble"
        );
        assert_eq!(
            type_ref(&TypeDesc::array_of(TypeDesc::mio())),
            "tns:ArrayOfMio"
        );
    }

    #[test]
    fn soap_action_convention() {
        let svc = ServiceDesc {
            name: "S".into(),
            namespace: "urn:x".into(),
            endpoint: "http://h/p".into(),
            operations: vec![],
        };
        assert_eq!(svc.soap_action("f"), "urn:x#f");
        assert!(svc.operation("f").is_none());
    }
}
