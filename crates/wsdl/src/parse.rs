//! WSDL 1.1 reading (rpc/encoded subset).
//!
//! WSDL documents are small (they describe interfaces, not data), so the
//! reader first loads the document into a lightweight element tree, then
//! interprets the sections:
//!
//! * `types/schema/complexType` — struct (`sequence` of `element`s) or
//!   SOAP-encoded array (`complexContent/restriction base="SOAP-ENC:Array"`
//!   with a `wsdl:arrayType` attribute),
//! * `message` — named part lists,
//! * `portType/operation/input` — the operation list and order,
//! * `service/port/address` — the endpoint location.
//!
//! Names are matched by *local* name so any prefix convention is
//! accepted (`wsdl:message`, `message`, `w:message`, …).

use crate::model::{qname_scalar, ServiceDesc, WsdlError};
use bsoap_core::{OpDesc, ParamDesc, TypeDesc};
use bsoap_xml::{Event, PullParser};
use std::collections::HashMap;

/// Parse a WSDL document into a [`ServiceDesc`].
pub fn parse_wsdl(bytes: &[u8]) -> Result<ServiceDesc, WsdlError> {
    let root = read_tree(bytes)?;
    if root.local != "definitions" {
        return Err(WsdlError::Unsupported(format!(
            "root element is <{}>, expected <definitions>",
            root.local
        )));
    }
    let namespace = root
        .attr("targetNamespace")
        .ok_or(WsdlError::Missing("definitions/@targetNamespace"))?
        .to_owned();
    let name = root.attr("name").unwrap_or("Service").to_owned();

    // --- raw type declarations ---
    let mut raw_types: HashMap<String, RawType> = HashMap::new();
    for types in root.children_named("types") {
        for schema in types.children_named("schema") {
            for ct in schema.children_named("complexType") {
                let (tname, raw) = read_complex_type(ct)?;
                raw_types.insert(tname, raw);
            }
        }
    }

    // --- messages ---
    let mut messages: HashMap<String, Vec<(String, String)>> = HashMap::new();
    for msg in root.children_named("message") {
        let mname = msg
            .attr("name")
            .ok_or(WsdlError::Missing("message/@name"))?
            .to_owned();
        let mut parts = Vec::new();
        for part in msg.children_named("part") {
            let pname = part.attr("name").ok_or(WsdlError::Missing("part/@name"))?;
            let ptype = part.attr("type").ok_or(WsdlError::Missing("part/@type"))?;
            parts.push((pname.to_owned(), ptype.to_owned()));
        }
        messages.insert(mname, parts);
    }

    // --- portType: operation order and input messages ---
    let port_type = root
        .children_named("portType")
        .next()
        .ok_or(WsdlError::Missing("portType"))?;
    let mut operations = Vec::new();
    for op in port_type.children_named("operation") {
        let oname = op
            .attr("name")
            .ok_or(WsdlError::Missing("operation/@name"))?;
        let input = op
            .children_named("input")
            .next()
            .ok_or(WsdlError::Missing("operation/input"))?;
        let msg_ref = input
            .attr("message")
            .ok_or(WsdlError::Missing("input/@message"))?;
        let msg_local = local_of(msg_ref);
        let parts = messages
            .get(msg_local)
            .ok_or_else(|| WsdlError::Undefined(format!("message {msg_ref}")))?;
        let mut params = Vec::with_capacity(parts.len());
        for (pname, ptype) in parts {
            params.push(ParamDesc {
                name: pname.clone(),
                desc: resolve(ptype, &raw_types, &mut Vec::new())?,
            });
        }
        operations.push(OpDesc::new(oname, &namespace, params));
    }

    // --- service endpoint ---
    let endpoint = root
        .children_named("service")
        .next()
        .and_then(|svc| svc.children_named("port").next())
        .and_then(|port| port.children_named("address").next())
        .and_then(|addr| addr.attr("location"))
        .ok_or(WsdlError::Missing("service/port/address/@location"))?
        .to_owned();

    Ok(ServiceDesc {
        name,
        namespace,
        endpoint,
        operations,
    })
}

// ---------------------------------------------------------------------
// Element tree
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Elem {
    local: String,
    attrs: Vec<(String, String)>,
    children: Vec<Elem>,
}

impl Elem {
    /// Attribute value by local name.
    fn attr(&self, local: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| local_of(n) == local)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with a given local name.
    fn children_named<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Elem> + 'a {
        self.children.iter().filter(move |c| c.local == local)
    }
}

fn local_of(qname: &str) -> &str {
    qname.rsplit(':').next().unwrap_or(qname)
}

fn read_tree(bytes: &[u8]) -> Result<Elem, WsdlError> {
    let mut p = PullParser::new(bytes);
    let mut stack: Vec<Elem> = Vec::new();
    loop {
        let event = p.next_event().map_err(|e| WsdlError::Xml(e.to_string()))?;
        match event {
            Event::Decl { .. } | Event::Comment { .. } => {}
            Event::Text { range } => {
                let t = &bytes[range];
                if !t.iter().all(|b| b.is_ascii_whitespace()) {
                    return Err(WsdlError::Unsupported(
                        "character data inside WSDL structure".to_owned(),
                    ));
                }
            }
            Event::Start { name, attrs, .. } => {
                let local =
                    local_of(std::str::from_utf8(&bytes[name]).map_err(utf8_err)?).to_owned();
                let attrs = attrs
                    .into_iter()
                    .map(|a| {
                        let n = std::str::from_utf8(&bytes[a.name]).map_err(utf8_err)?;
                        let v_raw = bsoap_xml::unescape(&bytes[a.value])
                            .map_err(|e| WsdlError::Xml(format!("{e:?}")))?;
                        let v = std::str::from_utf8(&v_raw).map_err(utf8_err)?.to_owned();
                        Ok((n.to_owned(), v))
                    })
                    .collect::<Result<Vec<_>, WsdlError>>()?;
                stack.push(Elem {
                    local,
                    attrs,
                    children: Vec::new(),
                });
            }
            Event::End { .. } => {
                let done = stack.pop().expect("parser guarantees balance");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => {
                        // Root closed: confirm nothing but whitespace follows.
                        loop {
                            match p.next_event().map_err(|e| WsdlError::Xml(e.to_string()))? {
                                Event::Eof => return Ok(done),
                                Event::Text { range }
                                    if bytes[range.clone()]
                                        .iter()
                                        .all(|b| b.is_ascii_whitespace()) => {}
                                Event::Comment { .. } => {}
                                other => {
                                    return Err(WsdlError::Unsupported(format!(
                                        "trailing content after root: {other:?}"
                                    )))
                                }
                            }
                        }
                    }
                }
            }
            Event::Eof => return Err(WsdlError::Missing("root element")),
        }
    }
}

fn utf8_err(_: std::str::Utf8Error) -> WsdlError {
    WsdlError::Xml("non-UTF-8 content".to_owned())
}

// ---------------------------------------------------------------------
// Type interpretation
// ---------------------------------------------------------------------

#[derive(Debug)]
enum RawType {
    Struct { fields: Vec<(String, String)> },
    Array { item_ref: String },
}

fn read_complex_type(ct: &Elem) -> Result<(String, RawType), WsdlError> {
    let name = ct
        .attr("name")
        .ok_or(WsdlError::Missing("complexType/@name"))?
        .to_owned();
    // Array pattern: complexContent/restriction base="SOAP-ENC:Array".
    if let Some(content) = ct.children_named("complexContent").next() {
        let restriction = content
            .children_named("restriction")
            .next()
            .ok_or(WsdlError::Missing("complexContent/restriction"))?;
        let base = restriction.attr("base").unwrap_or("");
        if local_of(base) != "Array" {
            return Err(WsdlError::Unsupported(format!(
                "complexContent restriction base {base:?} (only SOAP-ENC:Array)"
            )));
        }
        let attr_decl = restriction
            .children_named("attribute")
            .next()
            .ok_or(WsdlError::Missing("restriction/attribute (arrayType)"))?;
        let array_type = attr_decl
            .attr("arrayType")
            .ok_or(WsdlError::Missing("attribute/@wsdl:arrayType"))?;
        let item_ref = array_type
            .strip_suffix("[]")
            .ok_or_else(|| WsdlError::Unsupported(format!("arrayType {array_type:?}")))?;
        return Ok((
            name,
            RawType::Array {
                item_ref: item_ref.to_owned(),
            },
        ));
    }
    // Struct pattern: sequence of elements.
    if let Some(seq) = ct.children_named("sequence").next() {
        let mut fields = Vec::new();
        for e in seq.children_named("element") {
            let fname = e.attr("name").ok_or(WsdlError::Missing("element/@name"))?;
            let ftype = e.attr("type").ok_or(WsdlError::Missing("element/@type"))?;
            fields.push((fname.to_owned(), ftype.to_owned()));
        }
        return Ok((name, RawType::Struct { fields }));
    }
    Err(WsdlError::Unsupported(format!(
        "complexType {name} is neither a sequence struct nor a SOAP-ENC array"
    )))
}

/// Resolve a type reference (`xsd:double`, `tns:mio`, `tns:ArrayOfMio`)
/// to a [`TypeDesc`], guarding against reference cycles.
fn resolve(
    type_ref: &str,
    raw: &HashMap<String, RawType>,
    in_progress: &mut Vec<String>,
) -> Result<TypeDesc, WsdlError> {
    if let Some(kind) = qname_scalar(type_ref) {
        return Ok(TypeDesc::Scalar(kind));
    }
    // Also accept scalar references spelled with any prefix.
    if let Some(kind) = qname_scalar(&format!("xsd:{}", local_of(type_ref))) {
        return Ok(TypeDesc::Scalar(kind));
    }
    let local = local_of(type_ref).to_owned();
    if in_progress.contains(&local) {
        return Err(WsdlError::Unsupported(format!("recursive type {local}")));
    }
    let decl = raw
        .get(&local)
        .ok_or_else(|| WsdlError::Undefined(format!("type {type_ref}")))?;
    in_progress.push(local.clone());
    let result = match decl {
        RawType::Struct { fields } => {
            let mut resolved = Vec::with_capacity(fields.len());
            for (fname, ftype) in fields {
                resolved.push((fname.clone(), resolve(ftype, raw, in_progress)?));
            }
            Ok(TypeDesc::Struct {
                name: local.clone(),
                fields: resolved,
            })
        }
        RawType::Array { item_ref } => Ok(TypeDesc::array_of(resolve(item_ref, raw, in_progress)?)),
    };
    in_progress.pop();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_wsdl;
    use bsoap_convert::ScalarKind;

    fn sample() -> ServiceDesc {
        ServiceDesc {
            name: "Mesh".into(),
            namespace: "urn:mesh".into(),
            endpoint: "http://localhost:9000/mesh".into(),
            operations: vec![
                OpDesc::single(
                    "exchange",
                    "urn:mesh",
                    "interface",
                    TypeDesc::array_of(TypeDesc::mio()),
                ),
                OpDesc::new(
                    "register",
                    "urn:mesh",
                    vec![
                        ParamDesc {
                            name: "id".into(),
                            desc: TypeDesc::Scalar(ScalarKind::Int),
                        },
                        ParamDesc {
                            name: "label".into(),
                            desc: TypeDesc::Scalar(ScalarKind::Str),
                        },
                    ],
                ),
            ],
        }
    }

    #[test]
    fn round_trip() {
        let svc = sample();
        let xml = write_wsdl(&svc);
        let parsed = parse_wsdl(xml.as_bytes()).unwrap();
        assert_eq!(parsed, svc);
    }

    #[test]
    fn accepts_foreign_prefixes() {
        // Same document with different prefix conventions.
        let xml = write_wsdl(&sample())
            .replace("wsdl:", "w:")
            .replace("xsd:complexType", "s:complexType")
            .replace("xsd:sequence", "s:sequence")
            .replace("xsd:element", "s:element")
            .replace("xsd:schema", "s:schema")
            .replace("xsd:attribute", "s:attribute")
            .replace("xsd:restriction", "s:restriction")
            .replace("xsd:complexContent", "s:complexContent");
        let parsed = parse_wsdl(xml.as_bytes()).unwrap();
        assert_eq!(parsed.operations.len(), 2);
    }

    #[test]
    fn missing_sections_error() {
        assert!(matches!(
            parse_wsdl(b"<definitions/>"),
            Err(WsdlError::Missing(_))
        ));
        let no_porttype = br#"<definitions targetNamespace="urn:x"></definitions>"#;
        assert!(matches!(
            parse_wsdl(no_porttype),
            Err(WsdlError::Missing("portType"))
        ));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            parse_wsdl(b"<html></html>"),
            Err(WsdlError::Unsupported(_))
        ));
    }

    #[test]
    fn undefined_message_reference() {
        let xml = br#"<definitions targetNamespace="urn:x">
            <portType name="P">
              <operation name="f"><input message="tns:ghost"/></operation>
            </portType>
        </definitions>"#;
        assert!(matches!(parse_wsdl(xml), Err(WsdlError::Undefined(_))));
    }

    #[test]
    fn undefined_type_reference() {
        let xml = br#"<definitions targetNamespace="urn:x">
            <message name="fRequest"><part name="v" type="tns:ghost"/></message>
            <portType name="P">
              <operation name="f"><input message="tns:fRequest"/></operation>
            </portType>
            <service name="S"><port name="p" binding="tns:B">
              <address location="http://h/p"/>
            </port></service>
        </definitions>"#;
        assert!(matches!(parse_wsdl(xml), Err(WsdlError::Undefined(_))));
    }

    #[test]
    fn recursive_type_rejected() {
        let xml = br#"<definitions targetNamespace="urn:x">
            <types><schema>
              <complexType name="node">
                <sequence><element name="next" type="tns:node"/></sequence>
              </complexType>
            </schema></types>
            <message name="fRequest"><part name="v" type="tns:node"/></message>
            <portType name="P">
              <operation name="f"><input message="tns:fRequest"/></operation>
            </portType>
            <service name="S"><port name="p" binding="tns:B">
              <address location="http://h/p"/>
            </port></service>
        </definitions>"#;
        assert!(matches!(parse_wsdl(xml), Err(WsdlError::Unsupported(_))));
    }

    #[test]
    fn malformed_xml_reported() {
        assert!(matches!(
            parse_wsdl(b"<definitions"),
            Err(WsdlError::Xml(_))
        ));
        assert!(matches!(
            parse_wsdl(b""),
            Err(WsdlError::Missing(_) | WsdlError::Xml(_))
        ));
    }

    #[test]
    fn parsed_ops_drive_the_engine() {
        // The WSDL-derived OpDesc must be usable for template building.
        use bsoap_core::{EngineConfig, MessageTemplate, Value};
        let svc = parse_wsdl(write_wsdl(&sample()).as_bytes()).unwrap();
        let op = svc.operation("exchange").unwrap();
        let args = vec![Value::Array(vec![bsoap_core::value::mio(1, 2, 3.5)])];
        let tpl = MessageTemplate::build(EngineConfig::paper_default(), op, &args).unwrap();
        assert!(tpl.message_len() > 0);
    }
}
