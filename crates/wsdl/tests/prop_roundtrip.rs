//! Property test: `parse_wsdl(write_wsdl(svc)) == svc` for arbitrary
//! services in the supported subset.

use bsoap_convert::ScalarKind;
use bsoap_core::{OpDesc, ParamDesc, TypeDesc};
use bsoap_wsdl::{parse_wsdl, write_wsdl, ServiceDesc};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,12}"
}

fn scalar_kind() -> impl Strategy<Value = ScalarKind> {
    prop_oneof![
        Just(ScalarKind::Int),
        Just(ScalarKind::Long),
        Just(ScalarKind::Double),
        Just(ScalarKind::Bool),
        Just(ScalarKind::Str),
    ]
}

/// Struct of scalars with unique field names (the engine's supported
/// nesting; deeper structs work too but named-type collisions between
/// random structs make equality comparison ambiguous, so keep one level).
fn struct_desc(tag: usize) -> impl Strategy<Value = TypeDesc> {
    prop::collection::vec((ident(), scalar_kind()), 1..5).prop_map(move |fields| {
        let mut seen = std::collections::HashSet::new();
        let fields = fields
            .into_iter()
            .enumerate()
            .map(|(i, (mut n, k))| {
                if !seen.insert(n.clone()) {
                    n = format!("{n}{i}");
                    seen.insert(n.clone());
                }
                (n, TypeDesc::Scalar(k))
            })
            .collect();
        TypeDesc::Struct {
            name: format!("t{tag}"),
            fields,
        }
    })
}

fn param_desc(tag: usize) -> impl Strategy<Value = TypeDesc> {
    prop_oneof![
        scalar_kind().prop_map(TypeDesc::Scalar),
        struct_desc(tag),
        scalar_kind().prop_map(|k| TypeDesc::array_of(TypeDesc::Scalar(k))),
        struct_desc(tag).prop_map(TypeDesc::array_of),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wsdl_round_trips(
        svc_name in ident(),
        ns_tail in ident(),
        op_names in prop::collection::hash_set(ident(), 1..4),
        param_counts in prop::collection::vec(1usize..4, 3),
    ) {
        let namespace = format!("urn:{ns_tail}");
        let mut operations = Vec::new();
        for (oi, name) in op_names.iter().enumerate() {
            let n_params = param_counts[oi % param_counts.len()];
            let mut params = Vec::new();
            for pi in 0..n_params {
                // Deterministic type choice per (op, param) via a tagged
                // strategy sample (kept simple: rotate through shapes).
                let tag = oi * 10 + pi;
                let desc = match tag % 4 {
                    0 => TypeDesc::Scalar(ScalarKind::Double),
                    1 => TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
                    2 => TypeDesc::Struct {
                        name: format!("t{tag}"),
                        fields: vec![
                            ("a".to_owned(), TypeDesc::Scalar(ScalarKind::Int)),
                            ("b".to_owned(), TypeDesc::Scalar(ScalarKind::Str)),
                        ],
                    },
                    _ => TypeDesc::array_of(TypeDesc::Struct {
                        name: format!("t{tag}"),
                        fields: vec![("v".to_owned(), TypeDesc::Scalar(ScalarKind::Double))],
                    }),
                };
                params.push(ParamDesc { name: format!("p{pi}"), desc });
            }
            operations.push(OpDesc::new(name, &namespace, params));
        }
        let svc = ServiceDesc {
            name: svc_name,
            namespace,
            endpoint: "http://localhost:1/svc".to_owned(),
            operations,
        };
        let xml = write_wsdl(&svc);
        let parsed = parse_wsdl(xml.as_bytes()).unwrap();
        prop_assert_eq!(parsed, svc);
    }

    #[test]
    fn random_param_shapes_round_trip(desc in param_desc(0), pname in ident()) {
        let svc = ServiceDesc {
            name: "S".to_owned(),
            namespace: "urn:x".to_owned(),
            endpoint: "http://h/p".to_owned(),
            operations: vec![OpDesc::new(
                "f",
                "urn:x",
                vec![ParamDesc { name: pname, desc }],
            )],
        };
        let parsed = parse_wsdl(write_wsdl(&svc).as_bytes()).unwrap();
        prop_assert_eq!(parsed, svc);
    }
}
